// Deployment control plane — the generalized counterpart of the prototype's
// "150 lines of Python to handle the switch control plane" (§6).
//
// Responsibilities:
//  - own the deployment's DartConfig and enforce that every switch attaches
//    with the *identical* config (a mismatched master seed or slot count
//    silently breaks the stateless key→address mapping — the deadliest
//    misconfiguration this system can have, so it is checked by fingerprint);
//  - maintain the versioned collector directory and push table updates to
//    attached switches (collector registration / decommissioning);
//  - quantify the cost of resizing: with stateless modulo placement, adding
//    a collector remaps most keys (old data becomes unqueryable until it
//    ages out), which estimate_remap_fraction() measures — the operational
//    reason collector pools are sized up-front.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/collector.hpp"
#include "switchsim/dart_switch.hpp"

namespace dart::core {

// Stable fingerprint of every mapping-relevant DartConfig field.
[[nodiscard]] std::uint64_t config_fingerprint(const DartConfig& config) noexcept;

struct ControllerStats {
  std::uint32_t directory_version = 0;
  std::uint64_t table_entries_pushed = 0;
  std::uint32_t switches_attached = 0;
  std::uint32_t config_rejections = 0;
};

class DeploymentController {
 public:
  explicit DeploymentController(const DartConfig& config) : config_(config) {}

  [[nodiscard]] const DartConfig& config() const noexcept { return config_; }

  // --- collectors ----------------------------------------------------------

  // Adds a collector's directory row; bumps the directory version.
  void register_collector(const RemoteStoreInfo& info);

  // Removes a collector; bumps the version. Keys owned by it become
  // unqueryable (and re-hash onto the remaining pool for new writes).
  Status decommission_collector(std::uint32_t collector_id);

  [[nodiscard]] const std::vector<RemoteStoreInfo>& directory() const noexcept {
    return directory_;
  }

  // --- switches -------------------------------------------------------------

  // Attaches a switch: rejects config mismatches, then pushes the current
  // directory into its lookup table.
  Status attach_switch(switchsim::DartSwitchPipeline& pipeline);

  // Re-pushes the directory to every attached switch whose table version is
  // stale. Returns the number of switches updated.
  std::uint32_t push_updates();

  [[nodiscard]] const ControllerStats& stats() const noexcept { return stats_; }

  // --- resize analysis -------------------------------------------------------

  // Fraction of sampled keys whose owning collector changes when the pool
  // grows/shrinks from `before` to `after` collectors (stateless modulo
  // placement; §3's design keeps no placement state to migrate).
  [[nodiscard]] double estimate_remap_fraction(std::uint32_t before,
                                               std::uint32_t after,
                                               std::uint32_t samples = 4096) const;

 private:
  struct AttachedSwitch {
    switchsim::DartSwitchPipeline* pipeline;
    std::uint32_t table_version;
  };

  void push_directory(switchsim::DartSwitchPipeline& pipeline);

  DartConfig config_;
  std::vector<RemoteStoreInfo> directory_;
  std::vector<AttachedSwitch> switches_;
  ControllerStats stats_;
};

}  // namespace dart::core
