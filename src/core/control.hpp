// Deployment control plane — the generalized counterpart of the prototype's
// "150 lines of Python to handle the switch control plane" (§6).
//
// Responsibilities:
//  - own the deployment's DartConfig and enforce that every switch attaches
//    with the *identical* config (a mismatched master seed or slot count
//    silently breaks the stateless key→address mapping — the deadliest
//    misconfiguration this system can have, so it is checked by fingerprint);
//  - maintain the versioned collector directory and push table updates to
//    attached switches (collector registration / decommissioning);
//  - quantify the cost of resizing: with stateless modulo placement, adding
//    a collector remaps most keys (old data becomes unqueryable until it
//    ages out), which estimate_remap_fraction() measures — the operational
//    reason collector pools are sized up-front.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/collector.hpp"
#include "switchsim/dart_switch.hpp"

namespace dart::core {

// Stable fingerprint of every mapping-relevant DartConfig field.
[[nodiscard]] std::uint64_t config_fingerprint(const DartConfig& config) noexcept;

struct ControllerStats {
  std::uint32_t directory_version = 0;
  std::uint64_t table_entries_pushed = 0;
  std::uint32_t switches_attached = 0;
  std::uint32_t config_rejections = 0;
};

class DeploymentController {
 public:
  explicit DeploymentController(const DartConfig& config) : config_(config) {}

  [[nodiscard]] const DartConfig& config() const noexcept { return config_; }

  // --- collectors ----------------------------------------------------------

  // Adds a collector's directory row; bumps the directory version.
  void register_collector(const RemoteStoreInfo& info);

  // Removes a collector; bumps the version. Keys owned by it become
  // unqueryable (and re-hash onto the remaining pool for new writes).
  Status decommission_collector(std::uint32_t collector_id);

  [[nodiscard]] const std::vector<RemoteStoreInfo>& directory() const noexcept {
    return directory_;
  }

  // --- switches -------------------------------------------------------------

  // Attaches a switch: rejects config mismatches, then pushes the current
  // directory into its lookup table.
  Status attach_switch(switchsim::DartSwitchPipeline& pipeline);

  // Re-pushes the directory to every attached switch whose table version is
  // stale. Returns the number of switches updated.
  std::uint32_t push_updates();

  [[nodiscard]] const ControllerStats& stats() const noexcept { return stats_; }

  // --- resize analysis -------------------------------------------------------

  // Fraction of sampled keys whose owning collector changes when the pool
  // grows/shrinks from `before` to `after` collectors (stateless modulo
  // placement; §3's design keeps no placement state to migrate).
  [[nodiscard]] double estimate_remap_fraction(std::uint32_t before,
                                               std::uint32_t after,
                                               std::uint32_t samples = 4096) const;

 private:
  struct AttachedSwitch {
    switchsim::DartSwitchPipeline* pipeline;
    std::uint32_t table_version;
  };

  void push_directory(switchsim::DartSwitchPipeline& pipeline);

  DartConfig config_;
  std::vector<RemoteStoreInfo> directory_;
  std::vector<AttachedSwitch> switches_;
  ControllerStats stats_;
};

// --- collector liveness ------------------------------------------------------
//
// Failure detection for the collector pool, driven by control-plane
// heartbeats (the management network the §6 Python control plane runs over).
// The table is pure bookkeeping — it never touches the network itself; the
// fabric feeds it heartbeat() / probe_due() signals and reacts to the
// transitions tick() reports (see telemetry/wire_fabric and docs/FAULTS.md).

enum class CollectorHealth : std::uint8_t {
  kAlive,    // heartbeats arriving on cadence
  kSuspect,  // missed at least one interval, not yet timed out
  kDead,     // silent past timeout_ns; traffic must be re-targeted
};

struct LivenessConfig {
  std::uint64_t heartbeat_interval_ns = 1'000'000;  // expected cadence
  std::uint64_t timeout_ns = 5'000'000;             // silence → kDead
  // Exponential-backoff re-probe of a dead collector: first probe after
  // `initial`, then ×`factor` per silent probe, capped at `max`.
  std::uint64_t probe_backoff_initial_ns = 2'000'000;
  double probe_backoff_factor = 2.0;
  std::uint64_t probe_backoff_max_ns = 32'000'000;
};

struct LivenessStats {
  std::uint64_t heartbeats = 0;
  std::uint64_t deaths = 0;      // kAlive/kSuspect → kDead transitions
  std::uint64_t recoveries = 0;  // kDead → kAlive transitions
  std::uint64_t probes = 0;      // backoff probes issued while dead
};

class CollectorLivenessTable {
 public:
  struct Transition {
    std::uint32_t collector_id;
    CollectorHealth to;
  };

  CollectorLivenessTable(std::uint32_t n_collectors,
                         const LivenessConfig& config,
                         std::uint64_t now_ns = 0);

  // A heartbeat (or successful probe response) from collector `id`.
  void heartbeat(std::uint32_t id, std::uint64_t now_ns);

  // Advances every collector's state machine to `now_ns` and returns the
  // transitions that fired, in collector-id order (deterministic).
  std::vector<Transition> tick(std::uint64_t now_ns);

  // True when a dead collector's next backoff probe is due; issuing the
  // probe advances the deadline by the (growing) backoff. A probe that gets
  // answered shows up as a heartbeat, which tick() turns into a recovery.
  [[nodiscard]] bool probe_due(std::uint32_t id, std::uint64_t now_ns);

  [[nodiscard]] CollectorHealth health(std::uint32_t id) const noexcept {
    return rows_[id].state;
  }
  // Deterministic backup selection: the first alive collector after `from`
  // in ring order, or nullopt if every other collector is down.
  [[nodiscard]] std::optional<std::uint32_t> next_alive(
      std::uint32_t from) const noexcept;

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(rows_.size());
  }
  [[nodiscard]] const LivenessStats& stats() const noexcept { return stats_; }

 private:
  struct Row {
    CollectorHealth state = CollectorHealth::kAlive;
    std::uint64_t last_seen_ns = 0;
    std::uint64_t next_probe_ns = 0;
    std::uint64_t backoff_ns = 0;
  };

  LivenessConfig config_;
  std::vector<Row> rows_;
  LivenessStats stats_;
};

}  // namespace dart::core
