// CollectorCluster — the logically centralized, physically distributed
// telemetry storage (§3).
//
// The cluster owns n collectors. Key ownership is stateless: every switch
// and every query client hashes the key to a collector id with the shared
// HashFamily, then resolves the id to RDMA essentials via the directory —
// the same two steps the paper's query flow (Fig. 2, §3.2) describes.
// All N copies of a key live on its one owning collector, so a query is a
// purely local N-slot read there.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/collector.hpp"
#include "core/config.hpp"
#include "core/report_crafter.hpp"

namespace dart::core {

class CollectorCluster {
 public:
  // Builds `n_collectors` collectors, each with its own `config`-sized store.
  // Collector i gets ip 10.0.100.i and a derived MAC.
  CollectorCluster(const DartConfig& config, std::uint32_t n_collectors);

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(collectors_.size());
  }
  [[nodiscard]] Collector& collector(std::uint32_t id) noexcept {
    return *collectors_[id];
  }
  [[nodiscard]] const Collector& collector(std::uint32_t id) const noexcept {
    return *collectors_[id];
  }

  // The switch-side lookup table (§3.1): one RemoteStoreInfo per collector.
  [[nodiscard]] const std::vector<RemoteStoreInfo>& directory() const noexcept {
    return directory_;
  }

  // Stateless key→collector mapping shared by writers and queriers.
  [[nodiscard]] std::uint32_t owner_of(std::span<const std::byte> key) const noexcept {
    return crafter_.collector_of(key, size());
  }

  // Simulation write path: writes all N slots at the owning collector.
  void write(std::span<const std::byte> key, std::span<const std::byte> value);

  // Operator query (§3.2): hash → collector → N slots → checksum filter →
  // return policy.
  [[nodiscard]] QueryResult query(std::span<const std::byte> key,
                                  ReturnPolicy policy = ReturnPolicy::kPlurality) const;

  [[nodiscard]] const ReportCrafter& crafter() const noexcept { return crafter_; }

 private:
  std::vector<std::unique_ptr<Collector>> collectors_;
  std::vector<RemoteStoreInfo> directory_;
  ReportCrafter crafter_;
};

}  // namespace dart::core
