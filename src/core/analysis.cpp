#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>

namespace dart::core {

namespace {

[[nodiscard]] double pow_u(double base, unsigned e) noexcept {
  double r = 1.0;
  while (e != 0) {
    if (e & 1u) r *= base;
    base *= base;
    e >>= 1;
  }
  return r;
}

[[nodiscard]] double binom(unsigned n, unsigned k) noexcept {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double r = 1.0;
  for (unsigned i = 1; i <= k; ++i) {
    r = r * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return r;
}

// 2^{-b} as a double; exact for b ≤ 32.
[[nodiscard]] double q_of(unsigned checksum_bits) noexcept {
  return std::ldexp(1.0, -static_cast<int>(checksum_bits));
}

}  // namespace

double p_slot_overwritten(double alpha, unsigned n) noexcept {
  return 1.0 - std::exp(-alpha * static_cast<double>(n));
}

double p_all_overwritten(double alpha, unsigned n) noexcept {
  return pow_u(p_slot_overwritten(alpha, n), n);
}

double p_survives(double alpha, unsigned n) noexcept {
  return 1.0 - p_all_overwritten(alpha, n);
}

double p_empty_no_match(double alpha, unsigned n,
                        unsigned checksum_bits) noexcept {
  const double q = q_of(checksum_bits);
  return p_all_overwritten(alpha, n) * pow_u(1.0 - q, n);
}

namespace {

// The shared summation of §4's ambiguity bounds:
//   Σ_{j=1}^{N-1} C(N,j) p^j (1-p)^{N-j} (1 − (1−2^{-b})^j)
// where p = 1 − e^{−αN} and (1-p) = e^{−αN}. Each term: exactly j of the
// original slots overwritten, at least one of them matching the checksum.
[[nodiscard]] double ambiguity_sum(double alpha, unsigned n,
                                   unsigned checksum_bits) noexcept {
  const double p = p_slot_overwritten(alpha, n);
  const double e = std::exp(-alpha * static_cast<double>(n));  // 1 - p
  const double q = q_of(checksum_bits);
  double sum = 0.0;
  for (unsigned j = 1; j + 1 <= n; ++j) {  // j = 1 .. N-1
    sum += binom(n, j) * pow_u(p, j) * pow_u(e, n - j) *
           (1.0 - pow_u(1.0 - q, j));
  }
  return sum;
}

}  // namespace

double p_ambiguous_lower(double alpha, unsigned n,
                         unsigned checksum_bits) noexcept {
  return ambiguity_sum(alpha, n, checksum_bits);
}

double p_ambiguous_upper(double alpha, unsigned n,
                         unsigned checksum_bits) noexcept {
  const double q = q_of(checksum_bits);
  // Extra term: all originals overwritten and ≥2 overwriters share the
  // checksum: (1−e^{−αN})^N (1 − (1−q)^N − N q (1−q)^{N−1}).
  const double all = p_all_overwritten(alpha, n);
  const double two_plus = 1.0 - pow_u(1.0 - q, n) -
                          static_cast<double>(n) * q * pow_u(1.0 - q, n - 1);
  return ambiguity_sum(alpha, n, checksum_bits) + all * std::max(0.0, two_plus);
}

double p_return_error_lower(double alpha, unsigned n,
                            unsigned checksum_bits) noexcept {
  const double q = q_of(checksum_bits);
  return p_all_overwritten(alpha, n) * static_cast<double>(n) * q *
         pow_u(1.0 - q, n - 1);
}

double p_return_error_upper(double alpha, unsigned n,
                            unsigned checksum_bits) noexcept {
  const double q = q_of(checksum_bits);
  return p_all_overwritten(alpha, n) * (1.0 - pow_u(1.0 - q, n));
}

unsigned optimal_n(double alpha, unsigned max_n) noexcept {
  // Ties (e.g. every N survives w.p. 1 at α = 0) break toward the larger N:
  // equal queryability with more copies also buys report-loss robustness.
  unsigned best = 1;
  double best_p = p_survives(alpha, 1);
  for (unsigned n = 2; n <= max_n; ++n) {
    const double p = p_survives(alpha, n);
    if (p >= best_p) {
      best_p = p;
      best = n;
    }
  }
  return best;
}

double crossover_alpha(unsigned n_a, unsigned n_b, double lo,
                       double hi) noexcept {
  auto diff = [&](double a) { return p_survives(a, n_a) - p_survives(a, n_b); };
  double flo = diff(lo);
  double fhi = diff(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) return -1.0;  // not bracketed
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = diff(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double average_success_over_ages(double total_keys, double n_slots,
                                 unsigned n) noexcept {
  if (total_keys <= 0.0) return 1.0;
  // Simpson integration of p_survives(age/M, N) for age in [0, K].
  constexpr int kSteps = 2000;  // even
  const double h = total_keys / kSteps;
  double sum = p_survives(0.0, n) + p_survives(total_keys / n_slots, n);
  for (int i = 1; i < kSteps; ++i) {
    const double age = h * i;
    sum += p_survives(age / n_slots, n) * ((i & 1) ? 4.0 : 2.0);
  }
  return sum * h / 3.0 / total_keys;
}

double oldest_success(double total_keys, double n_slots, unsigned n) noexcept {
  return p_survives(total_keys / n_slots, n);
}

}  // namespace dart::core
