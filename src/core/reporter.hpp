// DartReporter — the writer-side reference implementation (§3.1).
//
// Encapsulates *when and where* a key's slots get written:
//  - WriteMode::kAllSlots: every report fills all N addresses (the SmartNIC
//    multi-write primitive of §7, and the natural mode for simulations);
//  - WriteMode::kStochastic: each report writes one uniformly random slot
//    n ∈ [0,N), exactly like the Tofino prototype, which picks n with the
//    native RNG and relies on event re-reports to populate the other slots
//    (§6). `reports_per_key` controls how many reports each key emits.
//
// The reporter writes through a local DartStore; the packetized equivalent
// (crafting actual RoCEv2 frames) lives in switchsim::DartSwitch and
// core::ReportCrafter and produces byte-identical slot contents.
#pragma once

#include <cstdint>
#include <span>

#include "common/random.hpp"
#include "core/store.hpp"

namespace dart::core {

struct ReporterStats {
  std::uint64_t keys_reported = 0;
  std::uint64_t reports_sent = 0;   // one per written slot in either mode
};

class DartReporter {
 public:
  DartReporter(DartStore& store, std::uint64_t rng_seed)
      : store_(&store), rng_(rng_seed) {}

  // Reports (key, value) once according to the store's WriteMode.
  // In stochastic mode, `reports` packets are emitted, each hitting one
  // random slot (duplicates possible, as on the wire).
  void report(std::span<const std::byte> key, std::span<const std::byte> value,
              std::uint32_t reports = 1);

  [[nodiscard]] const ReporterStats& stats() const noexcept { return stats_; }

 private:
  DartStore* store_;
  Xoshiro256 rng_;
  ReporterStats stats_;
};

}  // namespace dart::core
