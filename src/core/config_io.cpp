#include "core/config_io.hpp"

#include <cinttypes>
#include <cstdio>

namespace dart::core {

namespace {

[[nodiscard]] std::string hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v);
  return buf;
}

}  // namespace

KvConfig to_kv(const DartConfig& config) {
  KvConfig kv;
  kv.set("n_slots", std::to_string(config.n_slots));
  kv.set("n_addresses", std::to_string(config.n_addresses));
  kv.set("checksum_bits", std::to_string(config.checksum_bits));
  kv.set("value_bytes", std::to_string(config.value_bytes));
  kv.set("master_seed", hex_u64(config.master_seed));
  kv.set("write_mode",
         config.write_mode == WriteMode::kAllSlots ? "all_slots" : "stochastic");
  return kv;
}

Result<DartConfig> dart_config_from_kv(const KvConfig& kv) {
  DartConfig config;
  auto take_u64 = [&](const char* key, auto& field) -> Status {
    if (!kv.has(key)) return {};
    const auto v = kv.get_u64(key);
    if (!v) {
      return Error{"config_value", std::string("unparsable integer for ") + key};
    }
    field = static_cast<std::decay_t<decltype(field)>>(*v);
    return {};
  };
  if (auto s = take_u64("n_slots", config.n_slots); !s.ok()) return s.error();
  if (auto s = take_u64("n_addresses", config.n_addresses); !s.ok()) {
    return s.error();
  }
  if (auto s = take_u64("checksum_bits", config.checksum_bits); !s.ok()) {
    return s.error();
  }
  if (auto s = take_u64("value_bytes", config.value_bytes); !s.ok()) {
    return s.error();
  }
  if (auto s = take_u64("master_seed", config.master_seed); !s.ok()) {
    return s.error();
  }
  if (const auto mode = kv.get("write_mode")) {
    if (*mode == "all_slots") {
      config.write_mode = WriteMode::kAllSlots;
    } else if (*mode == "stochastic") {
      config.write_mode = WriteMode::kStochastic;
    } else {
      return Error{"config_value", "write_mode must be all_slots|stochastic"};
    }
  }
  if (!config.valid()) {
    return Error{"config_invalid",
                 "configuration fails DartConfig::valid() constraints"};
  }
  return config;
}

Status save_dart_config(const DartConfig& config, const std::string& path) {
  return to_kv(config).save(path);
}

Result<DartConfig> load_dart_config(const std::string& path) {
  auto kv = KvConfig::load(path);
  if (!kv.ok()) return kv.error();
  return dart_config_from_kv(kv.value());
}

}  // namespace dart::core
