#include "core/collector_ring.hpp"

#include <algorithm>
#include <cassert>

namespace dart::core {

namespace {

[[nodiscard]] constexpr bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

[[nodiscard]] constexpr std::uint64_t next_prime(std::uint64_t n) noexcept {
  while (!is_prime(n)) ++n;
  return n;
}

// (a * b) % m for a, b < m < 2^32 — the product fits in 64 bits.
[[nodiscard]] constexpr std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                              std::uint64_t m) noexcept {
  return (a * b) % m;
}

// a^e mod m (m prime, < 2^32). Used for the modular inverse a^(m-2).
[[nodiscard]] constexpr std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e,
                                              std::uint64_t m) noexcept {
  std::uint64_t result = 1 % m;
  a %= m;
  while (e > 0) {
    if (e & 1) result = mul_mod(result, a, m);
    a = mul_mod(a, a, m);
    e >>= 1;
  }
  return result;
}

// Domain-separated derivation of the per-member permutation parameters.
struct MemberSalt {
  std::uint32_t member;
  std::uint32_t which;  // 0 = offset, 1 = skip
  std::uint64_t tag = 0xC4A7'21D6'0FF5'E711ull;
};

}  // namespace

CollectorRing::CollectorRing(const CollectorRingConfig& config)
    : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.height_per_member == 0) config_.height_per_member = 1;
  height_ = static_cast<std::uint32_t>(next_prime(
      static_cast<std::uint64_t>(config_.capacity) * config_.height_per_member));

  const std::uint32_t n = config_.capacity;
  offset_.resize(n);
  skip_.resize(n);
  inv_skip_.resize(n);
  for (std::uint32_t m = 0; m < n; ++m) {
    offset_[m] = static_cast<std::uint32_t>(
        xxhash64_of(MemberSalt{m, 0}, config_.seed) % height_);
    skip_[m] = static_cast<std::uint32_t>(
        xxhash64_of(MemberSalt{m, 1}, config_.seed) % (height_ - 1) + 1);
    inv_skip_[m] = static_cast<std::uint32_t>(
        pow_mod(skip_[m], static_cast<std::uint64_t>(height_) - 2, height_));
  }

  // Maglev turn-taking fill over the FULL capacity universe: members claim
  // buckets round-robin along their permutations, so every member ends up
  // with floor(H/n) or ceil(H/n) rank-0 buckets — exact ±1 balance.
  rank0_.assign(height_, kNoOwner);
  std::vector<std::uint32_t> next(n, 0);
  std::uint32_t filled = 0;
  while (filled < height_) {
    for (std::uint32_t m = 0; m < n && filled < height_; ++m) {
      std::uint64_t c = (offset_[m] +
                         static_cast<std::uint64_t>(next[m]) * skip_[m]) %
                        height_;
      while (rank0_[c] != kNoOwner) {
        ++next[m];
        c = (c + skip_[m]) % height_;
      }
      rank0_[c] = m;
      ++next[m];
      ++filled;
    }
  }

  std::vector<std::uint8_t> live(n, 1);
  rebuild_from_live(std::move(live));
}

std::uint32_t CollectorRing::position_of(std::uint32_t m,
                                         std::uint32_t b) const noexcept {
  // Invert perm_m(i) = (offset + i * skip) mod H:
  //   i = (b - offset) * skip^-1 mod H.
  const std::uint64_t delta =
      (static_cast<std::uint64_t>(b) + height_ - offset_[m]) % height_;
  return static_cast<std::uint32_t>(mul_mod(delta, inv_skip_[m], height_));
}

void CollectorRing::publish(std::unique_ptr<const Table> table) {
  const Table* raw = table.get();
  {
    const std::lock_guard<std::mutex> lock(history_mutex_);
    history_.push_back(std::move(table));
  }
  table_.store(raw, std::memory_order_release);
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
}

void CollectorRing::rebuild_from_live(std::vector<std::uint8_t> live) {
  auto table = std::make_unique<Table>();
  table->owner.assign(height_, kNoOwner);

  std::vector<std::uint32_t> members;
  for (std::uint32_t m = 0; m < config_.capacity; ++m) {
    if (live[m]) members.push_back(m);
  }
  table->member_count = members.size();

  if (!members.empty()) {
    for (std::uint32_t b = 0; b < height_; ++b) {
      const std::uint32_t r0 = rank0_[b];
      if (live[r0]) {
        table->owner[b] = r0;
        continue;
      }
      // Fall through to the live member whose permutation reaches this
      // bucket earliest. The priority order (rank-0 first, then position,
      // then member id) is a fixed function of (seed, capacity, bucket), so
      // the owner changes only when a higher-priority member's liveness
      // flips — which is exactly the minimal-movement property.
      std::uint32_t best = kNoOwner;
      std::uint32_t best_pos = 0;
      for (const std::uint32_t m : members) {
        const std::uint32_t pos = position_of(m, b);
        if (best == kNoOwner || pos < best_pos ||
            (pos == best_pos && m < best)) {
          best = m;
          best_pos = pos;
        }
      }
      table->owner[b] = best;
    }
  }

  table->live = std::move(live);
  publish(std::move(table));
}

void CollectorRing::rebuild(std::span<const std::uint32_t> members) {
  std::vector<std::uint8_t> live(config_.capacity, 0);
  for (const std::uint32_t m : members) {
    if (m < config_.capacity) live[m] = 1;
  }
  rebuild_from_live(std::move(live));
}

void CollectorRing::remove_member(std::uint32_t m) {
  if (m >= config_.capacity) return;
  std::vector<std::uint8_t> live = snapshot()->live;
  if (!live[m]) return;
  live[m] = 0;
  rebuild_from_live(std::move(live));
}

void CollectorRing::add_member(std::uint32_t m) {
  if (m >= config_.capacity) return;
  std::vector<std::uint8_t> live = snapshot()->live;
  if (live[m]) return;
  live[m] = 1;
  rebuild_from_live(std::move(live));
}

void CollectorRing::lookup_batch(const std::uint64_t* hashes,
                                 std::size_t count,
                                 std::uint32_t* out) const noexcept {
  const auto table = snapshot();
  const std::size_t h = table->owner.size();
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = table->owner[hashes[i] % h];
  }
}

std::vector<std::uint32_t> CollectorRing::members() const {
  const auto table = snapshot();
  std::vector<std::uint32_t> out;
  out.reserve(table->member_count);
  for (std::uint32_t m = 0; m < config_.capacity; ++m) {
    if (table->live[m]) out.push_back(m);
  }
  return out;
}

std::vector<std::uint32_t> CollectorRing::bucket_counts() const {
  const auto table = snapshot();
  std::vector<std::uint32_t> counts(config_.capacity, 0);
  for (const std::uint32_t m : table->owner) {
    if (m != kNoOwner) ++counts[m];
  }
  return counts;
}

// ---------------------------------------------------------------------------
// CollectorSelector
// ---------------------------------------------------------------------------

CollectorSelector::CollectorSelector(const DartConfig& config,
                                     std::uint32_t n_collectors)
    : policy_(config.selection),
      hashes_(config.n_addresses, config.master_seed),
      ring_(CollectorRingConfig{.capacity = std::max<std::uint32_t>(1, n_collectors),
                                .height_per_member = config.ring_height_per_member,
                                .seed = config.master_seed}) {
  std::vector<std::uint32_t> full(ring_.capacity());
  for (std::uint32_t m = 0; m < ring_.capacity(); ++m) full[m] = m;
  publish_mod_members(std::move(full));
}

void CollectorSelector::publish_mod_members(
    std::vector<std::uint32_t> members) {
  auto snapshot = std::make_unique<const std::vector<std::uint32_t>>(
      std::move(members));
  const std::vector<std::uint32_t>* raw = snapshot.get();
  {
    const std::lock_guard<std::mutex> lock(mod_history_mutex_);
    mod_history_.push_back(std::move(snapshot));
  }
  mod_members_.store(raw, std::memory_order_release);
}

void CollectorSelector::set_members(std::span<const std::uint32_t> members) {
  ring_.rebuild(members);
  publish_mod_members(ring_.members());
}

void CollectorSelector::remove_member(std::uint32_t m) {
  ring_.remove_member(m);
  publish_mod_members(ring_.members());
}

void CollectorSelector::add_member(std::uint32_t m) {
  ring_.add_member(m);
  publish_mod_members(ring_.members());
}

bool CollectorSelector::is_member(std::uint32_t m) const {
  return ring_.is_member(m);
}

std::size_t CollectorSelector::member_count() const {
  return ring_.member_count();
}

std::vector<std::uint32_t> CollectorSelector::members() const {
  return ring_.members();
}

std::uint32_t CollectorSelector::modulo_owner(std::uint64_t hash) const {
  const auto members = mod_members_.load(std::memory_order_acquire);
  if (members->empty()) return CollectorRing::kNoOwner;
  return (*members)[hash % members->size()];
}

std::uint32_t CollectorSelector::owner_of_hash(
    std::uint64_t collector_hash) const {
  if (policy_ == CollectorSelection::kRing) return ring_.lookup(collector_hash);
  return modulo_owner(collector_hash);
}

std::uint32_t CollectorSelector::owner_of(
    std::span<const std::byte> key) const {
  return owner_of_hash(hashes_.collector_hash(key));
}

void CollectorSelector::owners_of(const std::byte* keys, std::size_t key_len,
                                  std::size_t stride, std::size_t count,
                                  std::uint32_t* out) const {
  constexpr std::size_t kChunk = 256;
  std::uint64_t hashes[kChunk];
  for (std::size_t done = 0; done < count; done += kChunk) {
    const std::size_t m = std::min<std::size_t>(count - done, kChunk);
    hashes_.collector_hashes(keys + done * stride, key_len, stride, m, hashes);
    if (policy_ == CollectorSelection::kRing) {
      ring_.lookup_batch(hashes, m, out + done);
    } else {
      for (std::size_t i = 0; i < m; ++i) out[done + i] = modulo_owner(hashes[i]);
    }
  }
}

std::uint32_t CollectorSelector::home_owner_of(
    std::span<const std::byte> key) const {
  const std::uint64_t hash = hashes_.collector_hash(key);
  if (policy_ == CollectorSelection::kRing) return ring_.home_lookup(hash);
  return static_cast<std::uint32_t>(hash % ring_.capacity());
}

}  // namespace dart::core
