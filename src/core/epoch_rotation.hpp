// Live epoch rotation — the §5.2.1 mechanism end to end.
//
// The epoch archive (core/epoch.hpp) answers historical queries, but sealing
// must not pause reporters. RotatingCollector therefore double-buffers at the
// RDMA layer: TWO memory regions (each its own DartStore, vaddr range and
// rkey) are registered on one RNIC. Switches write to whichever region the
// directory currently advertises; an epoch flip is
//
//   1. controller publishes the standby region's directory row (new rkey),
//   2. switches drain onto the new region — reports in flight to the OLD
//      rkey still land, because the old MR stays registered (grace period),
//   3. the old region is sealed to the archive file and cleared, becoming
//      the next standby.
//
// No reporter ever blocks; the only data at risk is what §4 already prices
// in (a report racing the seal lands in the next epoch's file instead).
//
// Threading: the ingest pipeline's feeder threads refresh their directory
// rows (active_info) while the controller thread flips epochs. A flip
// publishes {active region, epoch} under a seqlock (SeqCount): readers retry
// if a flip was in flight, so no thread ever observes a torn rotation — e.g.
// the new region paired with the old epoch number. All per-region fields
// (rkey, base_vaddr, memory) are immutable after construction, which is what
// makes the seqlock's racy read section safe; only the two atomics flip.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/seqlock.hpp"
#include "core/collector.hpp"
#include "core/epoch.hpp"
#include "core/query.hpp"
#include "core/store.hpp"
#include "rdma/rnic.hpp"

namespace dart::core {

class RotatingCollector {
 public:
  // Two equally-sized stores; region 0 starts active.
  RotatingCollector(const DartConfig& config, std::uint32_t collector_id,
                    const CollectorEndpoint& endpoint);

  RotatingCollector(const RotatingCollector&) = delete;
  RotatingCollector& operator=(const RotatingCollector&) = delete;

  [[nodiscard]] rdma::SimulatedRnic& rnic() noexcept { return rnic_; }

  // Directory row for the ACTIVE region — what the controller distributes.
  // Safe to call from any thread concurrently with flip() (seqlock retry).
  [[nodiscard]] RemoteStoreInfo active_info() const noexcept;
  // Row for the standby region (what the next flip will publish).
  [[nodiscard]] RemoteStoreInfo standby_info() const noexcept;

  // Consistent {epoch, active region} snapshot — the pair a directory push
  // carries. Never torn across a concurrent flip().
  [[nodiscard]] std::pair<std::uint64_t, std::uint32_t> epoch_snapshot()
      const noexcept;

  [[nodiscard]] std::uint64_t current_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint32_t active_region() const noexcept {
    return active_.load(std::memory_order_acquire);
  }
  // Rotation generation counter (even = stable, odd = flip in flight).
  [[nodiscard]] std::uint64_t rotation_generation() const noexcept {
    return seq_.generation();
  }

  // Live query against the active region.
  [[nodiscard]] QueryResult query(std::span<const std::byte> key,
                                  ReturnPolicy policy = ReturnPolicy::kPlurality) const;

  // Query against the standby region (reports still draining there during
  // the grace period after a flip).
  [[nodiscard]] QueryResult query_standby(std::span<const std::byte> key,
                                          ReturnPolicy policy = ReturnPolicy::kPlurality) const;

  // Epoch flip, step 1+2: activate the standby region. The previous region
  // keeps accepting in-flight writes until seal_previous(). Must be called
  // from one controller thread at a time (seqlock writers are exclusive);
  // readers on other threads are never blocked.
  void flip();

  // Epoch flip, step 3: seal the now-standby (previous) region to `path`
  // and clear it. Returns archived entry count.
  [[nodiscard]] Result<std::uint64_t> seal_previous(const std::string& path);

  [[nodiscard]] const DartConfig& config() const noexcept { return config_; }

  // Direct store access for quiescent inspection (the analogue of
  // Collector::store()). Only meaningful while no writer is executing —
  // differential tests read it after IngestPipeline::finish().
  [[nodiscard]] const DartStore& active_store() const noexcept {
    return *regions_[active_region()].store;
  }

 private:
  struct Region {
    std::vector<std::byte> memory;
    std::unique_ptr<DartStore> store;
    std::uint32_t rkey = 0;
    std::uint64_t base_vaddr = 0;
  };

  [[nodiscard]] RemoteStoreInfo info_for(const Region& region) const noexcept;

  DartConfig config_;
  std::uint32_t collector_id_;
  CollectorEndpoint endpoint_;
  rdma::SimulatedRnic rnic_;
  Region regions_[2];
  // Guarded by seq_: the pair must be observed consistently. Individually
  // atomic so the seqlock's racy read section is data-race-free under TSan.
  SeqCount seq_;
  std::atomic<std::uint32_t> active_{0};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace dart::core
