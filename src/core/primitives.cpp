#include "core/primitives.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/hash.hpp"

namespace dart::core {

namespace {

// Salt keeps the group hash independent of the counter hash when both use
// the deployment master seed.
constexpr std::uint64_t kPostcardGroupSalt = 0x9057'CA2D'0000'0001ull;

std::uint64_t load_le64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

std::uint64_t CounterArrayConfig::index_of(
    std::span<const std::byte> key) const noexcept {
  return xxhash64(key, seed) % n_counters;
}

std::uint64_t PostcardConfig::group_of(
    std::span<const std::byte> flow_key) const noexcept {
  return xxhash64(flow_key, seed ^ kPostcardGroupSalt) % n_groups;
}

std::uint32_t PostcardConfig::checksum_of(
    std::span<const std::byte> flow_key) const noexcept {
  // Same construction as HashFamily::checksum_of, so a postcard slot carries
  // the same kind of identity evidence as a DartStore slot.
  return crc32(flow_key) & checksum_mask(checksum_bits);
}

DtaPrimitivesConfig default_primitives(std::uint64_t master_seed) {
  DtaPrimitivesConfig cfg;
  cfg.counters.seed = master_seed;
  cfg.postcards.seed = master_seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// AppendRing
// ---------------------------------------------------------------------------

AppendRing::AppendRing(const AppendRingConfig& config)
    : config_(config),
      backing_(static_cast<std::size_t>(config.memory_bytes())) {
  assert(config_.valid());
}

AppendRing::AppendRing(const AppendRingConfig& config,
                       std::span<std::byte> memory)
    : config_(config), backing_(memory) {
  assert(config_.valid());
  assert(memory.size() == config.memory_bytes());
}

void AppendRing::encode_entry(std::uint64_t seq,
                              std::span<const std::byte> value,
                              std::vector<std::byte>& out) {
  // Entries are little-endian in memory, like the atomics word: the
  // collector reads its own DRAM natively.
  for (std::uint32_t i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((seq >> (8 * i)) & 0xFF));
  }
  out.insert(out.end(), value.begin(), value.end());
}

void AppendRing::write_entry(std::uint64_t seq,
                             std::span<const std::byte> value) {
  assert(seq != 0);
  assert(value.size() == config_.value_bytes);
  std::byte* entry = backing_.memory().data() +
                     config_.slot_of(seq) * config_.entry_bytes();
  std::memcpy(entry, &seq, 8);
  std::memcpy(entry + 8, value.data(), value.size());
}

std::uint64_t AppendRing::entry_seq(std::uint64_t slot) const noexcept {
  assert(slot < config_.n_entries);
  return load_le64(backing_.memory().data() + slot * config_.entry_bytes());
}

AppendRing::DrainResult AppendRing::drain(std::size_t max_entries) {
  // Collect the unread live set. Any slot's embedded seq below the cursor is
  // already-drained residue; the rest are unread, possibly with holes where
  // the writer lapped us or the network dropped a report.
  std::vector<std::uint64_t> unread;
  for (std::uint64_t slot = 0; slot < config_.n_entries; ++slot) {
    const std::uint64_t seq = entry_seq(slot);
    if (seq >= next_seq_) unread.push_back(seq);
  }
  std::sort(unread.begin(), unread.end());

  DrainResult out;
  for (const std::uint64_t seq : unread) {
    if (out.entries.size() >= max_entries) break;
    out.missed += seq - next_seq_;  // holes crossed to reach this entry
    next_seq_ = seq + 1;
    const std::byte* entry =
        backing_.memory().data() + config_.slot_of(seq) * config_.entry_bytes();
    Entry e;
    e.seq = seq;
    e.value.assign(entry + 8, entry + config_.entry_bytes());
    out.entries.push_back(std::move(e));
  }
  missed_ += out.missed;
  out.next_seq = next_seq_;
  return out;
}

// ---------------------------------------------------------------------------
// CounterCellArray
// ---------------------------------------------------------------------------

CounterCellArray::CounterCellArray(const CounterArrayConfig& config)
    : config_(config),
      backing_(static_cast<std::size_t>(config.memory_bytes())) {
  assert(config_.valid());
}

CounterCellArray::CounterCellArray(const CounterArrayConfig& config,
                                   std::span<std::byte> memory)
    : config_(config), backing_(memory) {
  assert(config_.valid());
  assert(memory.size() == config.memory_bytes());
}

std::uint64_t CounterCellArray::fetch_add(std::span<const std::byte> key,
                                          std::uint64_t delta) {
  std::byte* cell = backing_.memory().data() + config_.index_of(key) * 8;
  const std::uint64_t prior = load_le64(cell);
  const std::uint64_t next = prior + delta;
  std::memcpy(cell, &next, 8);
  return prior;
}

std::uint64_t CounterCellArray::read(
    std::span<const std::byte> key) const noexcept {
  return read_cell(config_.index_of(key));
}

std::uint64_t CounterCellArray::read_cell(std::uint64_t index) const noexcept {
  assert(index < config_.n_counters);
  return load_le64(backing_.memory().data() + index * 8);
}

// ---------------------------------------------------------------------------
// PostcardStore
// ---------------------------------------------------------------------------

PostcardStore::PostcardStore(const PostcardConfig& config)
    : config_(config),
      backing_(static_cast<std::size_t>(config.memory_bytes())) {
  assert(config_.valid());
}

PostcardStore::PostcardStore(const PostcardConfig& config,
                             std::span<std::byte> memory)
    : config_(config), backing_(memory) {
  assert(config_.valid());
  assert(memory.size() == config.memory_bytes());
}

void PostcardStore::encode_hop_payload(const PostcardConfig& config,
                                       std::span<const std::byte> flow_key,
                                       std::span<const std::byte> value,
                                       std::vector<std::byte>& out) {
  assert(value.size() == config.value_bytes);
  const std::uint32_t csum = config.checksum_of(flow_key);
  for (std::uint32_t i = 0; i < config.checksum_bytes(); ++i) {
    out.push_back(static_cast<std::byte>((csum >> (8 * i)) & 0xFF));
  }
  out.insert(out.end(), value.begin(), value.end());
}

void PostcardStore::write_hop(std::span<const std::byte> flow_key,
                              std::uint32_t hop,
                              std::span<const std::byte> value) {
  assert(hop < config_.max_hops);
  assert(value.size() == config_.value_bytes);
  std::vector<std::byte> payload;
  payload.reserve(config_.slot_bytes());
  encode_hop_payload(config_, flow_key, value, payload);
  const std::uint64_t index =
      config_.slot_index(config_.group_of(flow_key), hop);
  std::memcpy(backing_.memory().data() + index * config_.slot_bytes(),
              payload.data(), payload.size());
}

PostcardStore::GroupView PostcardStore::read_group(
    std::span<const std::byte> flow_key) const {
  GroupView view;
  view.group = config_.group_of(flow_key);
  const std::uint32_t want = config_.checksum_of(flow_key);
  view.hops.reserve(config_.max_hops);
  for (std::uint32_t hop = 0; hop < config_.max_hops; ++hop) {
    const std::byte* slot =
        backing_.memory().data() +
        config_.slot_index(view.group, hop) * config_.slot_bytes();
    std::uint32_t got = 0;
    for (std::uint32_t i = 0; i < config_.checksum_bytes(); ++i) {
      got |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(slot[i]))
             << (8 * i);
    }
    got &= checksum_mask(config_.checksum_bits);
    if (got == want && want != 0) view.valid_mask |= 1u << hop;
    view.hops.emplace_back(slot + config_.checksum_bytes(),
                           slot + config_.slot_bytes());
  }
  return view;
}

}  // namespace dart::core
