#include "core/epoch.hpp"

#include <cstring>
#include <fstream>

#include "common/hash.hpp"

namespace dart::core {

namespace {

constexpr char kMagic[8] = {'D', 'A', 'R', 'T', 'A', 'R', 'C', 'H'};

template <typename T>
void put(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
[[nodiscard]] bool get(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(in);
}

[[nodiscard]] bool slot_occupied(std::span<const std::byte> slot) {
  for (const auto b : slot) {
    if (b != std::byte{0}) return true;
  }
  return false;
}

}  // namespace

Result<std::uint64_t> write_epoch_archive(const std::string& path,
                                          std::uint64_t epoch,
                                          const DartStore& store) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Error{"archive_open", "cannot open archive file for writing: " + path};
  }
  const auto& cfg = store.config();

  out.write(kMagic, sizeof(kMagic));
  put(out, kArchiveVersion);
  put(out, epoch);
  put(out, cfg.checksum_bits);
  put(out, cfg.value_bytes);
  const auto count_pos = out.tellp();
  put(out, std::uint64_t{0});  // patched below

  Crc32 crc;
  std::uint64_t entries = 0;
  for (std::uint64_t idx = 0; idx < cfg.n_slots; ++idx) {
    const auto raw =
        store.memory().subspan(store.slot_offset(idx), cfg.slot_bytes());
    if (!slot_occupied(raw)) continue;
    const SlotView slot = store.read_slot(idx);

    std::vector<std::byte> entry(8 + 4 + slot.value.size());
    std::memcpy(entry.data(), &idx, 8);
    std::memcpy(entry.data() + 8, &slot.checksum, 4);
    std::memcpy(entry.data() + 12, slot.value.data(), slot.value.size());
    out.write(reinterpret_cast<const char*>(entry.data()),
              static_cast<std::streamsize>(entry.size()));
    crc.update(entry);
    ++entries;
  }
  put(out, crc.value());

  out.seekp(count_pos);
  put(out, entries);
  out.flush();
  if (!out) {
    return Error{"archive_write", "short write to archive file: " + path};
  }
  return entries;
}

Result<EpochArchiveReader> EpochArchiveReader::open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{"archive_open", "cannot open archive file: " + path};
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Error{"archive_magic", "not a DART archive: " + path};
  }
  std::uint32_t version;
  EpochArchiveReader reader;
  std::uint64_t entries;
  if (!get(in, version) || version != kArchiveVersion) {
    return Error{"archive_version", "unsupported archive version"};
  }
  if (!get(in, reader.epoch_) || !get(in, reader.checksum_bits_) ||
      !get(in, reader.value_bytes_) || !get(in, entries)) {
    return Error{"archive_header", "truncated archive header"};
  }
  if (reader.value_bytes_ == 0 || reader.value_bytes_ > 4096) {
    return Error{"archive_header", "implausible value width"};
  }

  Crc32 crc;
  const std::size_t entry_size = 8 + 4 + reader.value_bytes_;
  std::vector<std::byte> buf(entry_size);
  reader.entries_vec_.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(entry_size));
    if (!in) {
      return Error{"archive_truncated", "archive ends mid-entry"};
    }
    crc.update(buf);
    ArchiveEntry entry;
    std::memcpy(&entry.slot_index, buf.data(), 8);
    std::memcpy(&entry.checksum, buf.data() + 8, 4);
    entry.value.assign(buf.begin() + 12, buf.end());
    reader.index_[entry.checksum].push_back(reader.entries_vec_.size());
    reader.entries_vec_.push_back(std::move(entry));
  }
  std::uint32_t carried;
  if (!get(in, carried) || carried != crc.value()) {
    return Error{"archive_crc", "archive checksum mismatch"};
  }
  reader.entries_ = entries;
  return reader;
}

std::vector<std::vector<std::byte>> EpochArchiveReader::lookup_key(
    std::span<const std::byte> key) const {
  const std::uint32_t want = crc32(key) & checksum_mask(checksum_bits_);
  const auto it = index_.find(want);
  if (it == index_.end()) return {};
  std::vector<std::vector<std::byte>> out;
  out.reserve(it->second.size());
  for (const auto idx : it->second) out.push_back(entries_vec_[idx].value);
  return out;
}

std::optional<std::vector<std::byte>> EpochArchiveReader::query(
    std::span<const std::byte> key) const {
  const auto hits = lookup_key(key);
  if (hits.empty()) return std::nullopt;
  // Conservative: commit only when every surviving copy agrees.
  for (std::size_t i = 1; i < hits.size(); ++i) {
    if (hits[i] != hits[0]) return std::nullopt;
  }
  return hits[0];
}

Result<std::uint64_t> EpochedStore::seal_to_file(const std::string& path) {
  auto written = write_epoch_archive(path, epoch_, live_);
  if (!written.ok()) return written;
  live_.clear();
  ++epoch_;
  return written;
}

}  // namespace dart::core
