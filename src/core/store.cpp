#include "core/store.hpp"

#include <cassert>
#include <cstring>

namespace dart::core {

DartStore::DartStore(const DartConfig& config)
    : config_(config),
      hashes_(config.n_addresses, config.master_seed),
      backing_(static_cast<std::size_t>(config.memory_bytes())) {
  assert(config_.valid());
}

DartStore::DartStore(const DartConfig& config, std::span<std::byte> memory)
    : config_(config),
      hashes_(config.n_addresses, config.master_seed),
      backing_(memory) {
  assert(config_.valid());
  assert(memory.size() == config.memory_bytes());
}

void DartStore::encode_slot_payload(std::span<const std::byte> key,
                                    std::span<const std::byte> value,
                                    std::vector<std::byte>& out) const {
  assert(value.size() == config_.value_bytes);
  const std::uint32_t csum = key_checksum(key);
  for (std::uint32_t i = 0; i < config_.checksum_bytes(); ++i) {
    out.push_back(static_cast<std::byte>((csum >> (8 * i)) & 0xFF));
  }
  out.insert(out.end(), value.begin(), value.end());
}

void DartStore::write(std::span<const std::byte> key,
                      std::span<const std::byte> value) {
  const std::uint32_t csum = key_checksum(key);
  for (std::uint32_t n = 0; n < config_.n_addresses; ++n) {
    write_raw(slot_index(key, n), csum, value);
  }
}

void DartStore::write_one(std::span<const std::byte> key,
                          std::span<const std::byte> value, std::uint32_t n) {
  write_raw(slot_index(key, n), key_checksum(key), value);
}

void DartStore::write_raw(std::uint64_t index, std::uint32_t checksum,
                          std::span<const std::byte> value) {
  assert(value.size() == config_.value_bytes);
  std::byte* slot = backing_.memory().data() + slot_offset(index);
  for (std::uint32_t i = 0; i < config_.checksum_bytes(); ++i) {
    slot[i] = static_cast<std::byte>((checksum >> (8 * i)) & 0xFF);
  }
  std::memcpy(slot + config_.checksum_bytes(), value.data(), value.size());
  writes_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SlotView> DartStore::read_slots(
    std::span<const std::byte> key) const {
  std::vector<SlotView> out;
  out.reserve(config_.n_addresses);
  for (std::uint32_t n = 0; n < config_.n_addresses; ++n) {
    out.push_back(read_slot(slot_index(key, n)));
  }
  return out;
}

SlotView DartStore::read_slot(std::uint64_t index) const {
  assert(index < config_.n_slots);
  const std::byte* slot = backing_.memory().data() + slot_offset(index);
  SlotView v;
  v.checksum = 0;
  for (std::uint32_t i = 0; i < config_.checksum_bytes(); ++i) {
    v.checksum |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(slot[i]))
                  << (8 * i);
  }
  v.checksum &= checksum_mask(config_.checksum_bits);
  v.value = std::span<const std::byte>(slot + config_.checksum_bytes(),
                                       config_.value_bytes);
  return v;
}

void DartStore::clear() {
  backing_.clear();
  writes_.store(0, std::memory_order_relaxed);
}

}  // namespace dart::core
