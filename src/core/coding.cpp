#include "core/coding.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

#include "common/hash.hpp"
#include "common/random.hpp"

namespace dart::core {

std::uint32_t SlotCodec::stored_checksum(std::uint32_t base_checksum,
                                         std::uint32_t n) const noexcept {
  if (!codec_.per_location_checksums) {
    return base_checksum & checksum_mask(dart_.checksum_bits);
  }
  SplitMix64 sm(codec_.codec_seed + n);
  const auto mix = static_cast<std::uint32_t>(sm.next());
  return (base_checksum ^ mix) & checksum_mask(dart_.checksum_bits);
}

void SlotCodec::transform_value(std::span<const std::byte> key,
                                std::uint32_t n,
                                std::span<std::byte> value) const noexcept {
  if (!codec_.mask_values) return;
  // Keystream: SplitMix64 seeded by (key hash, location, codec seed).
  SplitMix64 sm(xxhash64(key, codec_.codec_seed) + 0x9E37u * n);
  std::size_t i = 0;
  while (i < value.size()) {
    const std::uint64_t word = sm.next();
    for (int b = 0; b < 8 && i < value.size(); ++b, ++i) {
      value[i] ^= static_cast<std::byte>((word >> (8 * b)) & 0xFF);
    }
  }
}

void CodedStore::write(std::span<const std::byte> key,
                       std::span<const std::byte> value) {
  const std::uint32_t n_addresses = store_.config().n_addresses;
  std::array<std::uint64_t, 16> addrs;
  if (n_addresses <= addrs.size()) {
    // All N coded addresses in one batched hash pass.
    store_.slot_indices(key, std::span(addrs.data(), n_addresses));
    for (std::uint32_t n = 0; n < n_addresses; ++n) {
      write_at(key, value, n, addrs[n]);
    }
  } else {
    for (std::uint32_t n = 0; n < n_addresses; ++n) {
      write_one(key, value, n);
    }
  }
}

void CodedStore::write_one(std::span<const std::byte> key,
                           std::span<const std::byte> value, std::uint32_t n) {
  write_at(key, value, n, store_.slot_index(key, n));
}

void CodedStore::write_at(std::span<const std::byte> key,
                          std::span<const std::byte> value, std::uint32_t n,
                          std::uint64_t idx) {
  assert(value.size() == store_.config().value_bytes);
  // Encode: mask the value, derive the per-location checksum, write raw.
  std::vector<std::byte> coded(value.begin(), value.end());
  codec_.transform_value(key, n, coded);
  const std::uint32_t base = store_.key_checksum(key);
  const std::uint32_t stored = codec_.stored_checksum(base, n);

  std::byte* slot = store_.memory().data() + store_.slot_offset(idx);
  const auto csum_bytes = store_.config().checksum_bytes();
  for (std::uint32_t i = 0; i < csum_bytes; ++i) {
    slot[i] = static_cast<std::byte>((stored >> (8 * i)) & 0xFF);
  }
  std::memcpy(slot + csum_bytes, coded.data(), coded.size());
}

QueryResult CodedStore::query(std::span<const std::byte> key,
                              ReturnPolicy policy) const {
  const std::uint32_t base = store_.key_checksum(key);

  struct Candidate {
    std::vector<std::byte> value;  // decoded plaintext
    std::uint32_t count = 0;
  };
  std::vector<Candidate> candidates;

  std::array<std::uint64_t, 16> addrs;
  const std::uint32_t n_addresses = store_.config().n_addresses;
  const bool batched = n_addresses <= addrs.size();
  if (batched) {
    store_.slot_indices(key, std::span(addrs.data(), n_addresses));
  }

  QueryResult result;
  for (std::uint32_t n = 0; n < n_addresses; ++n) {
    const SlotView slot = store_.read_slot(
        batched ? addrs[n] : store_.slot_index(key, n));
    if (slot.checksum != codec_.stored_checksum(base, n)) continue;
    ++result.checksum_matches;
    std::vector<std::byte> plain(slot.value.begin(), slot.value.end());
    codec_.transform_value(key, n, plain);  // unmask with OUR pad
    bool merged = false;
    for (auto& c : candidates) {
      if (c.value == plain) {
        ++c.count;
        merged = true;
        break;
      }
    }
    if (!merged) candidates.push_back(Candidate{std::move(plain), 1});
  }
  result.distinct_values = static_cast<std::uint32_t>(candidates.size());
  if (candidates.empty()) return result;

  const auto commit = [&](const std::vector<std::byte>& value) {
    result.outcome = QueryOutcome::kFound;
    result.value = value;
  };
  const auto best = std::max_element(
      candidates.begin(), candidates.end(),
      [](const Candidate& a, const Candidate& b) { return a.count < b.count; });
  const auto ties = std::count_if(
      candidates.begin(), candidates.end(),
      [&](const Candidate& c) { return c.count == best->count; });

  switch (policy) {
    case ReturnPolicy::kFirstMatch:
      commit(candidates.front().value);
      break;
    case ReturnPolicy::kSingleDistinct:
      if (candidates.size() == 1) commit(candidates.front().value);
      break;
    case ReturnPolicy::kPlurality:
      if (ties == 1) commit(best->value);
      break;
    case ReturnPolicy::kConsensusTwo:
      if (best->count >= 2 && ties == 1) commit(best->value);
      break;
  }
  return result;
}

}  // namespace dart::core
