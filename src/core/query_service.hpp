// Collector-side query service and operator-side client (§3.2) as fabric
// simulator nodes.
//
// QueryServiceNode fronts one Collector: it terminates UDP/4800, resolves
// each request against the collector's DartStore with the requested return
// policy, and replies to the requester's IP. This — not report ingest — is
// where the collector CPU does its work.
//
// OperatorClient implements the four steps of Fig. 2's query flow: hash key
// → collector id → directory lookup → request/response. It tracks pending
// request ids and exposes completed answers; queries to distinct collectors
// can be in flight simultaneously.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/collector.hpp"
#include "core/query_protocol.hpp"
#include "core/report_crafter.hpp"
#include "net/netsim.hpp"

namespace dart::core {

// Resolves an IPv4 address to the simulator node that owns it (the fabric's
// ARP/routing stand-in for the management network).
using IpResolver = std::function<std::optional<net::NodeId>(net::Ipv4Addr)>;

class QueryServiceNode final : public net::Node {
 public:
  QueryServiceNode(Collector& collector, net::Ipv4Addr service_ip,
                   IpResolver resolver)
      : collector_(&collector), ip_(service_ip), resolver_(std::move(resolver)) {}

  void receive(net::Packet packet, std::uint64_t now_ns) override;

  [[nodiscard]] net::Ipv4Addr ip() const noexcept { return ip_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_;
  }
  [[nodiscard]] std::uint64_t malformed_requests() const noexcept {
    return malformed_;
  }

 private:
  Collector* collector_;
  net::Ipv4Addr ip_;
  IpResolver resolver_;
  std::uint64_t served_ = 0;
  std::uint64_t malformed_ = 0;
};

class OperatorClient final : public net::Node {
 public:
  // `crafter` supplies the deployment hash family for collector selection;
  // `service_ips[i]` is the query-service address of collector i.
  OperatorClient(const ReportCrafter& crafter, net::Ipv4Addr my_ip,
                 std::vector<net::Ipv4Addr> service_ips, IpResolver resolver)
      : crafter_(&crafter), ip_(my_ip), service_ips_(std::move(service_ips)),
        resolver_(std::move(resolver)) {}

  void receive(net::Packet packet, std::uint64_t now_ns) override;

  // Sends a query; returns the request id to correlate with take_response().
  std::uint64_t query(std::span<const std::byte> key,
                      ReturnPolicy policy = ReturnPolicy::kPlurality);

  // Response for a completed request, if it has arrived (removes it).
  [[nodiscard]] std::optional<QueryResponse> take_response(std::uint64_t request_id);

  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::uint64_t responses_received() const noexcept {
    return received_;
  }

 private:
  const ReportCrafter* crafter_;
  net::Ipv4Addr ip_;
  std::vector<net::Ipv4Addr> service_ips_;
  IpResolver resolver_;
  std::unordered_map<std::uint64_t, QueryResponse> responses_;
  std::uint64_t next_id_ = 1;
  std::size_t pending_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace dart::core
