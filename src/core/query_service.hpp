// Collector-side query service and operator-side client (§3.2) as fabric
// simulator nodes.
//
// QueryServiceNode fronts one Collector: it terminates UDP/4800, resolves
// each request against the collector's DartStore with the requested return
// policy, and replies to the requester's IP. This — not report ingest — is
// where the collector CPU does its work. Well-formed frames that simply are
// not addressed to this node (wrong dst IP or port) count as `not_for_me`,
// distinct from `malformed` protocol errors, so routing noise never trips a
// protocol-error alert.
//
// OperatorClient implements the four steps of Fig. 2's query flow: hash key
// → collector id → directory lookup → request/response. It tracks the set
// of outstanding request ids: a response is accepted only if it is addressed
// to this client AND matches an in-flight id, so duplicated or replayed
// responses (UDP can deliver both) neither corrupt `pending()` nor
// overwrite an already-recorded answer. Queries to distinct collectors can
// be in flight simultaneously, and with enable_timeouts() armed a lost
// response no longer parks its id forever: the deadline fires, the request
// is resent under a FRESH wire id (the stale id stays acceptable — whichever
// copy answers first retires the request exactly once), and after
// `max_retries` resends the request is failed with a timeout mark instead of
// leaking into pending().
//
// Both nodes export their counters through obs::MetricRegistry via
// bind_metrics(); the service additionally records a sampled query-resolve
// latency histogram (the paper's "collector CPU cost" observable).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/collector.hpp"
#include "core/collector_ring.hpp"
#include "core/query_protocol.hpp"
#include "core/report_crafter.hpp"
#include "net/netsim.hpp"
#include "obs/metric.hpp"

namespace dart::core {

// Resolves an IPv4 address to the simulator node that owns it (the fabric's
// ARP/routing stand-in for the management network).
using IpResolver = std::function<std::optional<net::NodeId>(net::Ipv4Addr)>;

class QueryServiceNode final : public net::Node {
 public:
  QueryServiceNode(Collector& collector, net::Ipv4Addr service_ip,
                   IpResolver resolver)
      : collector_(&collector), ip_(service_ip), resolver_(std::move(resolver)) {}

  void receive(net::Packet packet, std::uint64_t now_ns) override;

  // Registers this service's counters under `<prefix>_query_*` and creates
  // the sampled resolve-latency histogram `<prefix>_query_resolve_ns`.
  // Call once per registry; the registry must outlive this node's use.
  void bind_metrics(obs::MetricRegistry& registry, const std::string& prefix);

  // --- degradation control plane (docs/FAULTS.md) --------------------------

  // Ownership hash for takeover marking: with these set, a served key whose
  // hashed owner is under takeover gets the degraded flag.
  void set_deployment(const ReportCrafter* crafter,
                      std::uint32_t n_collectors) noexcept {
    crafter_for_owner_ = crafter;
    n_collectors_ = n_collectors;
  }

  // Ring deployments: degradation is keyed by a key's HOME owner (the
  // full-membership mapping) — after a failover rebuild the live owner of a
  // moved key is a survivor, but the data lost with the death belongs to
  // whatever the bring-up ring assigned. Takes precedence over
  // set_deployment's modulo mapping when set; not owned.
  void set_selector(const CollectorSelector* selector) noexcept {
    selector_ = selector;
  }

  // A dead collector's service answers nothing (count: dropped_offline).
  void set_online(bool online) noexcept { online_ = online; }
  [[nodiscard]] bool online() const noexcept { return online_; }

  // Staleness counters saturate here instead of wrapping: a collector that
  // stays dead across >65535 rotations must keep reading "maximally stale",
  // not wrap back to "fresh".
  static constexpr std::uint16_t kStaleEpochsSaturated = 0xFFFF;

  // This service is answering for dead collector `owner_id`; answers for
  // that owner's keys carry the degraded flag plus the epochs of data that
  // were lost with the owner (in-flight reports are lost by design).
  // Re-declaring an already-marked owner accumulates (saturating): each call
  // reports additional lost epochs, not a replacement estimate.
  void begin_takeover(std::uint32_t owner_id, std::uint16_t stale_epochs) {
    auto [it, inserted] = takeovers_.try_emplace(owner_id, stale_epochs);
    if (!inserted) it->second = sat_add16(it->second, stale_epochs);
  }
  void end_takeover(std::uint32_t owner_id) { takeovers_.erase(owner_id); }

  // An epoch rotation happened while the marks above are standing: every
  // owner still under takeover (and any local degradation) is now one more
  // epoch stale. Saturates at kStaleEpochsSaturated.
  void note_rotation() noexcept {
    for (auto& [owner, stale] : takeovers_) stale = sat_add16(stale, 1);
    if (self_stale_epochs_ != 0) {
      self_stale_epochs_ = sat_add16(self_stale_epochs_, 1);
    }
  }

  // Current staleness recorded for a takeover, if one is standing.
  [[nodiscard]] std::optional<std::uint16_t> takeover_stale_epochs(
      std::uint32_t owner_id) const {
    const auto it = takeovers_.find(owner_id);
    if (it == takeovers_.end()) return std::nullopt;
    return it->second;
  }

  // Local degradation: this collector's own store lost reports (QP error /
  // RNIC stall window); every answer is flagged until cleared.
  void set_self_degraded(std::uint16_t stale_epochs) noexcept {
    self_stale_epochs_ = stale_epochs;
  }
  void clear_self_degraded() noexcept { self_stale_epochs_ = 0; }

  [[nodiscard]] net::Ipv4Addr ip() const noexcept { return ip_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_;
  }
  // Protocol errors: unparsable frames or bad DQ payloads addressed to us.
  [[nodiscard]] std::uint64_t malformed_requests() const noexcept {
    return malformed_;
  }
  // Well-formed frames for some other node (wrong dst IP or UDP port).
  [[nodiscard]] std::uint64_t not_for_me() const noexcept {
    return not_for_me_;
  }
  // Served responses that carried the degraded flag.
  [[nodiscard]] std::uint64_t degraded_served() const noexcept {
    return degraded_;
  }
  // Requests eaten while offline (the collector is dead).
  [[nodiscard]] std::uint64_t dropped_offline() const noexcept {
    return dropped_offline_;
  }
  // DTA primitive requests served (subset of requests_served()).
  [[nodiscard]] std::uint64_t primitives_served() const noexcept {
    return primitives_served_;
  }
  // Primitive requests answered with kResponsePrimitiveUnavailable because
  // the collector has no primitive regions enabled.
  [[nodiscard]] std::uint64_t primitives_unavailable() const noexcept {
    return primitives_unavailable_;
  }
  // Sketch requests served (subset of requests_served()).
  [[nodiscard]] std::uint64_t sketch_served() const noexcept {
    return sketch_served_;
  }
  // Sketch requests answered with kResponseSketchUnavailable because the
  // collector's storage backend is not a sketch.
  [[nodiscard]] std::uint64_t sketch_unavailable() const noexcept {
    return sketch_unavailable_;
  }

 private:
  static constexpr std::uint16_t sat_add16(std::uint16_t a,
                                           std::uint16_t b) noexcept {
    const std::uint32_t sum = static_cast<std::uint32_t>(a) + b;
    return sum > kStaleEpochsSaturated
               ? kStaleEpochsSaturated
               : static_cast<std::uint16_t>(sum);
  }

  // Degraded/staleness marking shared by the KV path and the keyed primitive
  // ops: flags/stale for a response about `key` (empty key ⇒ only local
  // degradation applies, the drain-ring case).
  void apply_degradation(std::span<const std::byte> key, std::uint8_t& flags,
                         std::uint16_t& stale) const;

  // Serves one parsed primitive request; returns the encoded response.
  [[nodiscard]] std::vector<std::byte> serve_primitive(
      const PrimitiveRequest& request);

  // Serves one parsed sketch request; returns the encoded response. Estimate
  // answers also feed the collector's heavy-hitter tracker — tracker
  // maintenance lives entirely on this (query) path so ingest stays
  // zero-CPU.
  [[nodiscard]] std::vector<std::byte> serve_sketch(
      const SketchRequest& request);

  Collector* collector_;
  net::Ipv4Addr ip_;
  IpResolver resolver_;
  const ReportCrafter* crafter_for_owner_ = nullptr;
  std::uint32_t n_collectors_ = 0;
  const CollectorSelector* selector_ = nullptr;
  std::unordered_map<std::uint32_t, std::uint16_t> takeovers_;
  std::uint16_t self_stale_epochs_ = 0;
  bool online_ = true;
  std::uint64_t served_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t not_for_me_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t dropped_offline_ = 0;
  std::uint64_t primitives_served_ = 0;
  std::uint64_t primitives_unavailable_ = 0;
  std::uint64_t sketch_served_ = 0;
  std::uint64_t sketch_unavailable_ = 0;
  obs::Histogram* resolve_hist_ = nullptr;  // owned by the bound registry
  std::uint32_t resolve_sample_every_ = 8;
  std::uint64_t resolve_samples_ = 0;
};

class OperatorClient final : public net::Node {
 public:
  // `crafter` supplies the deployment hash family for collector selection;
  // `service_ips[i]` is the query-service address of collector i.
  OperatorClient(const ReportCrafter& crafter, net::Ipv4Addr my_ip,
                 std::vector<net::Ipv4Addr> service_ips, IpResolver resolver)
      : crafter_(&crafter), ip_(my_ip), service_ips_(std::move(service_ips)),
        resolver_(std::move(resolver)) {}

  void receive(net::Packet packet, std::uint64_t now_ns) override;

  // Sends a query; returns the request id to correlate with take_response().
  std::uint64_t query(std::span<const std::byte> key,
                      ReturnPolicy policy = ReturnPolicy::kPlurality);

  // Response for a completed request, if it has arrived (removes it).
  [[nodiscard]] std::optional<QueryResponse> take_response(std::uint64_t request_id);

  // --- DTA primitive queries (query_protocol.hpp, primitive v1) ------------
  //
  // Same transport and outstanding-id discipline as query(); answers arrive
  // via take_primitive_response(). Returns 0 if the request could not be
  // sent (unknown collector / unresolvable service IP).

  // Drains collector `collector_id`'s Append ring (rings are per-collector,
  // so drain targets an explicit collector, not a hashed key).
  // `max_entries` 0 = no cap.
  std::uint64_t drain_ring(std::uint32_t collector_id,
                           std::uint64_t max_entries = 0);

  // Reads the Key-Increment cell owning `key` (hash-routed like query(),
  // honoring retargets).
  std::uint64_t read_counter(std::span<const std::byte> key);

  // Reads `flow_key`'s postcard slot group (hash-routed like query()).
  std::uint64_t read_postcard_group(std::span<const std::byte> flow_key);

  [[nodiscard]] std::optional<PrimitiveResponse> take_primitive_response(
      std::uint64_t request_id);

  // --- sketch backend queries (query_protocol.hpp, sketch v1) --------------
  //
  // Same transport and outstanding-id discipline as query(); answers arrive
  // via take_sketch_response(). Returns 0 if the request could not be sent.

  // Count-min estimate for `key` (hash-routed like query(), honoring
  // retargets).
  std::uint64_t sketch_estimate(std::span<const std::byte> key);

  // Top-k heavy hitters tracked by collector `collector_id` (trackers are
  // per-collector, so top-k targets an explicit collector, not a hashed
  // key). `k` >= 1.
  std::uint64_t sketch_topk(std::uint32_t collector_id, std::uint16_t k);

  [[nodiscard]] std::optional<SketchResponse> take_sketch_response(
      std::uint64_t request_id);

  // --- standing queries (query_protocol.hpp, gateway v1) --------------------
  //
  // Registration rides the same outstanding-id discipline (the ack retires
  // the request); notifications are unsolicited pushes, recorded as they
  // arrive and drained with take_notifications(). `gateway_ip` addresses the
  // QueryGateway (src/query/gateway.hpp) — plain services ignore these
  // frames. Returns 0 if the request could not be sent.

  std::uint64_t subscribe_key_change(net::Ipv4Addr gateway_ip,
                                     std::span<const std::byte> key);
  std::uint64_t subscribe_counter_threshold(net::Ipv4Addr gateway_ip,
                                            std::span<const std::byte> key,
                                            std::uint64_t threshold);
  std::uint64_t subscribe_topk_delta(net::Ipv4Addr gateway_ip,
                                     std::uint32_t collector_id,
                                     std::uint16_t k);
  std::uint64_t unsubscribe(net::Ipv4Addr gateway_ip,
                            std::uint64_t subscription_id);

  [[nodiscard]] std::optional<SubscribeAck> take_subscribe_ack(
      std::uint64_t request_id);
  // Drains every notification received so far (arrival order).
  [[nodiscard]] std::vector<StandingNotification> take_notifications();
  [[nodiscard]] std::uint64_t notifications_received() const noexcept {
    return notifications_received_;
  }

  // --- request deadlines (off by default) -----------------------------------
  //
  // Arms a per-request deadline: if no response arrived within `timeout_ns`
  // of the send, the request is re-sent under a fresh wire id (up to
  // `max_retries` times), then failed. A failed request leaves pending(),
  // counts in timeouts(), and answers timed_out(id) == true; a duplicated
  // late response — for the original id or any retry — retires the request
  // at most once, with extras counted unexpected. Requires the client to be
  // attached to a simulator (deadlines are sim-scheduled events).
  void enable_timeouts(std::uint64_t timeout_ns, std::uint32_t max_retries) {
    timeout_ns_ = timeout_ns;
    max_retries_ = max_retries;
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] bool timed_out(std::uint64_t request_id) const {
    return timed_out_ids_.contains(request_id);
  }

  // Registers this client's counters under `<prefix>_operator_*`.
  void bind_metrics(obs::MetricRegistry& registry, const std::string& prefix);

  // --- failover control plane (docs/FAULTS.md) -----------------------------

  // The operator's epoch counter, stamped into every request and echoed by
  // the service so staleness is computable per response.
  void set_epoch(std::uint32_t epoch) noexcept { epoch_ = epoch; }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

  // Redirects queries for keys owned by dead collector `owner_id` to the
  // backup's query service (the directory update the controller pushes when
  // liveness declares a death). clear_retarget undoes it on recovery.
  void retarget(std::uint32_t owner_id, std::uint32_t backup_id) {
    retargets_[owner_id] = backup_id;
  }
  void clear_retarget(std::uint32_t owner_id) { retargets_.erase(owner_id); }

  // Ring deployments: route keys through the live consistent-hash selector
  // instead of crafter->collector_of (queries then follow the reports to the
  // survivors the ring picked — no retarget map needed). Not owned; must
  // outlive this client.
  void set_selector(const CollectorSelector* selector) noexcept {
    selector_ = selector;
  }

  [[nodiscard]] net::Ipv4Addr ip() const noexcept { return ip_; }
  // Requests sent and not yet answered (first matching response retires one).
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_req_.size();
  }
  [[nodiscard]] std::uint64_t queries_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t responses_received() const noexcept {
    return received_;
  }
  // Responses addressed to some other client (dst IP mismatch) — delivered
  // here by a misrouted underlay, never recorded as ours.
  [[nodiscard]] std::uint64_t stray_responses() const noexcept {
    return stray_;
  }
  // Well-addressed responses with no outstanding request id: duplicates,
  // replays, or answers to requests we never sent.
  [[nodiscard]] std::uint64_t unexpected_responses() const noexcept {
    return unexpected_;
  }
  // Accepted responses that carried the degraded flag — the operator-visible
  // signal that an answer came from a backup or a lossy store.
  [[nodiscard]] std::uint64_t degraded_responses() const noexcept {
    return degraded_;
  }

 private:
  // One logical request in flight. The caller holds the ORIGINAL wire id
  // (what query() returned); retries alias additional wire ids onto the same
  // record so any copy's response can retire it — exactly once.
  struct PendingRequest {
    net::Ipv4Addr destination{};       // service (or gateway) address
    std::vector<std::byte> payload;    // latest encoding; wire id at [4, 12)
    std::uint64_t newest_wire_id = 0;  // only the newest send may retry
    std::uint32_t retries_left = 0;
    std::vector<std::uint64_t> wire_ids;  // original + every retry
  };

  // Sends an encoded request to collector `collector_id`'s service; returns
  // false if the id is unknown or its service IP does not resolve.
  bool send_to_collector(std::uint32_t collector_id,
                         std::vector<std::byte> payload);
  [[nodiscard]] bool send_to_ip(net::Ipv4Addr ip,
                                std::span<const std::byte> payload);
  // Retarget-aware service selection for a hashed key.
  [[nodiscard]] std::uint32_t route_of(std::span<const std::byte> key) const;
  // Books a freshly-sent request as outstanding and arms its deadline.
  void track(std::uint64_t wire_id, net::Ipv4Addr destination,
             std::vector<std::byte> payload);
  // First response for any wire id of a logical request retires it; returns
  // the logical id, or nullopt for duplicates/replays/unknown ids.
  [[nodiscard]] std::optional<std::uint64_t> retire(std::uint64_t wire_id);
  void arm_deadline(std::uint64_t logical_id, std::uint64_t wire_id);
  void on_deadline(std::uint64_t logical_id, std::uint64_t wire_id);

  const ReportCrafter* crafter_;
  const CollectorSelector* selector_ = nullptr;
  net::Ipv4Addr ip_;
  std::vector<net::Ipv4Addr> service_ips_;
  IpResolver resolver_;
  std::unordered_map<std::uint64_t, QueryResponse> responses_;
  std::unordered_map<std::uint64_t, PrimitiveResponse> primitive_responses_;
  std::unordered_map<std::uint64_t, SketchResponse> sketch_responses_;
  std::unordered_map<std::uint64_t, SubscribeAck> subscribe_acks_;
  std::vector<StandingNotification> notifications_;
  // Logical id (the original wire id) → in-flight record, plus the alias map
  // every arriving response resolves through.
  std::unordered_map<std::uint64_t, PendingRequest> pending_req_;
  std::unordered_map<std::uint64_t, std::uint64_t> wire_to_logical_;
  std::unordered_set<std::uint64_t> timed_out_ids_;
  std::unordered_map<std::uint32_t, std::uint32_t> retargets_;
  std::uint32_t epoch_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t stray_ = 0;
  std::uint64_t unexpected_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t notifications_received_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeout_ns_ = 0;  // 0 = deadlines disarmed
  std::uint32_t max_retries_ = 0;
};

}  // namespace dart::core
