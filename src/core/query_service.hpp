// Collector-side query service and operator-side client (§3.2) as fabric
// simulator nodes.
//
// QueryServiceNode fronts one Collector: it terminates UDP/4800, resolves
// each request against the collector's DartStore with the requested return
// policy, and replies to the requester's IP. This — not report ingest — is
// where the collector CPU does its work. Well-formed frames that simply are
// not addressed to this node (wrong dst IP or port) count as `not_for_me`,
// distinct from `malformed` protocol errors, so routing noise never trips a
// protocol-error alert.
//
// OperatorClient implements the four steps of Fig. 2's query flow: hash key
// → collector id → directory lookup → request/response. It tracks the set
// of outstanding request ids: a response is accepted only if it is addressed
// to this client AND matches an in-flight id, so duplicated or replayed
// responses (UDP can deliver both) neither corrupt `pending()` nor
// overwrite an already-recorded answer. Queries to distinct collectors can
// be in flight simultaneously.
//
// Both nodes export their counters through obs::MetricRegistry via
// bind_metrics(); the service additionally records a sampled query-resolve
// latency histogram (the paper's "collector CPU cost" observable).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/collector.hpp"
#include "core/query_protocol.hpp"
#include "core/report_crafter.hpp"
#include "net/netsim.hpp"
#include "obs/metric.hpp"

namespace dart::core {

// Resolves an IPv4 address to the simulator node that owns it (the fabric's
// ARP/routing stand-in for the management network).
using IpResolver = std::function<std::optional<net::NodeId>(net::Ipv4Addr)>;

class QueryServiceNode final : public net::Node {
 public:
  QueryServiceNode(Collector& collector, net::Ipv4Addr service_ip,
                   IpResolver resolver)
      : collector_(&collector), ip_(service_ip), resolver_(std::move(resolver)) {}

  void receive(net::Packet packet, std::uint64_t now_ns) override;

  // Registers this service's counters under `<prefix>_query_*` and creates
  // the sampled resolve-latency histogram `<prefix>_query_resolve_ns`.
  // Call once per registry; the registry must outlive this node's use.
  void bind_metrics(obs::MetricRegistry& registry, const std::string& prefix);

  [[nodiscard]] net::Ipv4Addr ip() const noexcept { return ip_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_;
  }
  // Protocol errors: unparsable frames or bad DQ payloads addressed to us.
  [[nodiscard]] std::uint64_t malformed_requests() const noexcept {
    return malformed_;
  }
  // Well-formed frames for some other node (wrong dst IP or UDP port).
  [[nodiscard]] std::uint64_t not_for_me() const noexcept {
    return not_for_me_;
  }

 private:
  Collector* collector_;
  net::Ipv4Addr ip_;
  IpResolver resolver_;
  std::uint64_t served_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t not_for_me_ = 0;
  obs::Histogram* resolve_hist_ = nullptr;  // owned by the bound registry
  std::uint32_t resolve_sample_every_ = 8;
  std::uint64_t resolve_samples_ = 0;
};

class OperatorClient final : public net::Node {
 public:
  // `crafter` supplies the deployment hash family for collector selection;
  // `service_ips[i]` is the query-service address of collector i.
  OperatorClient(const ReportCrafter& crafter, net::Ipv4Addr my_ip,
                 std::vector<net::Ipv4Addr> service_ips, IpResolver resolver)
      : crafter_(&crafter), ip_(my_ip), service_ips_(std::move(service_ips)),
        resolver_(std::move(resolver)) {}

  void receive(net::Packet packet, std::uint64_t now_ns) override;

  // Sends a query; returns the request id to correlate with take_response().
  std::uint64_t query(std::span<const std::byte> key,
                      ReturnPolicy policy = ReturnPolicy::kPlurality);

  // Response for a completed request, if it has arrived (removes it).
  [[nodiscard]] std::optional<QueryResponse> take_response(std::uint64_t request_id);

  // Registers this client's counters under `<prefix>_operator_*`.
  void bind_metrics(obs::MetricRegistry& registry, const std::string& prefix);

  [[nodiscard]] net::Ipv4Addr ip() const noexcept { return ip_; }
  // Requests sent and not yet answered (first matching response retires one).
  [[nodiscard]] std::size_t pending() const noexcept {
    return outstanding_.size();
  }
  [[nodiscard]] std::uint64_t queries_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t responses_received() const noexcept {
    return received_;
  }
  // Responses addressed to some other client (dst IP mismatch) — delivered
  // here by a misrouted underlay, never recorded as ours.
  [[nodiscard]] std::uint64_t stray_responses() const noexcept {
    return stray_;
  }
  // Well-addressed responses with no outstanding request id: duplicates,
  // replays, or answers to requests we never sent.
  [[nodiscard]] std::uint64_t unexpected_responses() const noexcept {
    return unexpected_;
  }

 private:
  const ReportCrafter* crafter_;
  net::Ipv4Addr ip_;
  std::vector<net::Ipv4Addr> service_ips_;
  IpResolver resolver_;
  std::unordered_map<std::uint64_t, QueryResponse> responses_;
  std::unordered_set<std::uint64_t> outstanding_;
  std::uint64_t next_id_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t stray_ = 0;
  std::uint64_t unexpected_ = 0;
};

}  // namespace dart::core
