#include "core/ingest_pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/random.hpp"
#include "core/store.hpp"

namespace dart::core {

namespace {

CollectorEndpoint pipeline_endpoint() {
  return {{2, 0, 0, 0, 0, 0x50}, net::Ipv4Addr::from_octets(10, 0, 200, 1)};
}

ReporterEndpoint switch_endpoint(std::uint32_t feeder, std::uint32_t sw) {
  ReporterEndpoint ep;
  ep.mac = {0x02, 0xFE, 0x00, 0x00, static_cast<std::uint8_t>(feeder),
            static_cast<std::uint8_t>(sw)};
  ep.ip = net::Ipv4Addr::from_octets(10, 1, static_cast<std::uint8_t>(feeder),
                                     static_cast<std::uint8_t>(sw + 1));
  ep.udp_src_port = static_cast<std::uint16_t>(0xC000 + feeder * 256 + sw);
  return ep;
}

}  // namespace

std::array<std::byte, 8> IngestPipeline::make_key(std::uint32_t feeder,
                                                  std::uint64_t k) noexcept {
  // Feeder id in the top bits keeps feeder keyspaces disjoint.
  const std::uint64_t id = (static_cast<std::uint64_t>(feeder) << 40) | k;
  std::array<std::byte, 8> key;
  std::memcpy(key.data(), &id, 8);
  return key;
}

void IngestPipeline::make_value(std::span<const std::byte> key,
                                std::uint32_t value_bytes,
                                std::vector<std::byte>& out) {
  std::uint64_t id = 0;
  std::memcpy(&id, key.data(), std::min<std::size_t>(key.size(), 8));
  SplitMix64 sm(id ^ 0x5AFE'C0DE'D00D'F00Dull);
  out.clear();
  out.reserve(value_bytes);
  std::uint64_t word = 0;
  for (std::uint32_t i = 0; i < value_bytes; ++i) {
    if (i % 8 == 0) word = sm.next();
    out.push_back(static_cast<std::byte>(word & 0xFF));
    word >>= 8;
  }
}

IngestPipeline::IngestPipeline(const IngestPipelineConfig& config)
    : config_(config),
      collector_(config.dart, /*collector_id=*/0, pipeline_endpoint()),
      crafter_(config.dart) {
  assert(config_.valid());
  collector_.rnic().set_validate_icrc(config_.validate_icrc);
  const std::size_t n_rings =
      static_cast<std::size_t>(config_.n_feeders) * config_.n_shards;
  rings_.reserve(n_rings);
  for (std::size_t i = 0; i < n_rings; ++i) {
    rings_.push_back(std::make_unique<Ring>(config_.ring_capacity));
  }
  feeder_tallies_.resize(config_.n_feeders);
  worker_tallies_.resize(config_.n_shards);
}

IngestPipeline::~IngestPipeline() {
  if (running_) (void)finish();
}

void IngestPipeline::start() {
  assert(!running_);
  running_ = true;
  feeders_done_.store(0, std::memory_order_relaxed);
  started_at_ = std::chrono::steady_clock::now();
  threads_.reserve(config_.n_feeders + config_.n_shards);
  // Workers first so rings drain from the moment feeders wake.
  for (std::uint32_t s = 0; s < config_.n_shards; ++s) {
    threads_.emplace_back([this, s] { worker_main(s); });
  }
  for (std::uint32_t f = 0; f < config_.n_feeders; ++f) {
    threads_.emplace_back([this, f] { feeder_main(f); });
  }
}

IngestPipelineStats IngestPipeline::finish() {
  assert(running_);
  for (auto& t : threads_) t.join();
  threads_.clear();
  running_ = false;
  const auto elapsed = std::chrono::steady_clock::now() - started_at_;

  IngestPipelineStats stats;
  stats.seconds = std::chrono::duration<double>(elapsed).count();
  for (const auto& t : feeder_tallies_) {
    stats.reports_generated += t.reports;
    stats.frames_crafted += t.crafted;
    stats.frames_dropped += t.dropped;
    stats.ring_full_spins += t.full_spins;
  }
  stats.per_shard_applied.reserve(worker_tallies_.size());
  for (const auto& t : worker_tallies_) {
    stats.frames_applied += t.applied;
    stats.frames_rejected += t.rejected;
    stats.per_shard_applied.push_back(t.applied);
  }
  return stats;
}

IngestPipelineStats IngestPipeline::run() {
  start();
  return finish();
}

void IngestPipeline::feeder_main(std::uint32_t feeder_id) {
  FeederTally& tally = feeder_tallies_[feeder_id];
  auto rng = Xoshiro256::stream(config_.seed, feeder_id);
  const std::unique_ptr<net::LossModel> loss =
      config_.loss_model ? config_.loss_model->clone() : nullptr;

  std::vector<ReporterEndpoint> switches;
  std::vector<std::uint32_t> psns(config_.switches_per_feeder, 0);
  switches.reserve(config_.switches_per_feeder);
  for (std::uint32_t sw = 0; sw < config_.switches_per_feeder; ++sw) {
    switches.push_back(switch_endpoint(feeder_id, sw));
  }

  const std::uint64_t unique_keys = config_.unique_keys_per_feeder != 0
                                        ? config_.unique_keys_per_feeder
                                        : config_.reports_per_feeder;
  const bool stochastic = config_.dart.write_mode == WriteMode::kStochastic;
  const std::uint64_t n_slots = config_.dart.n_slots;

  RemoteStoreInfo dst = collector_.active_info();
  std::vector<std::byte> value;

  // Frame templates per switch, rebuilt only when a directory refresh shows
  // a different destination (epoch flips move base_vaddr). All per-report
  // crafting then runs through craft_*_into with zero allocations.
  std::vector<FrameTemplate> write_tpls(config_.switches_per_feeder);
  std::vector<FrameTemplate> cas_tpls;
  if (config_.second_copy_cas) cas_tpls.resize(config_.switches_per_feeder);
  auto rebuild_templates = [&] {
    for (std::uint32_t sw = 0; sw < config_.switches_per_feeder; ++sw) {
      write_tpls[sw] = crafter_.make_write_template(dst, switches[sw]);
      if (config_.second_copy_cas) {
        cas_tpls[sw] = crafter_.make_atomic_template(
            dst, switches[sw], rdma::Opcode::kRcCompareSwap);
      }
    }
  };
  rebuild_templates();

  // Per-shard staging of up to batch_size frames, published with a single
  // try_push_n. flush() spins (with yield) on backpressure — reports are
  // never silently lost to a full ring, which would skew the loss
  // accounting tests rely on.
  const std::size_t batch = config_.batch_size;
  std::vector<std::vector<FrameSlot>> staged(config_.n_shards);
  for (auto& s : staged) s.resize(batch);
  std::vector<std::size_t> staged_n(config_.n_shards, 0);
  auto flush = [&](std::uint32_t shard) {
    Ring& r = ring(feeder_id, shard);
    std::span<FrameSlot> pending(staged[shard].data(), staged_n[shard]);
    while (!pending.empty()) {
      const std::size_t pushed = r.try_push_n(pending);
      pending = pending.subspan(pushed);
      if (pushed == 0) {
        ++tally.full_spins;
        std::this_thread::yield();
      }
    }
    staged_n[shard] = 0;
  };

  for (std::uint64_t i = 0; i < config_.reports_per_feeder; ++i) {
    if (i % config_.directory_refresh == 0) {
      // Seqlock-protected directory refresh: never observes a torn flip.
      const RemoteStoreInfo fresh = collector_.active_info();
      if (fresh.base_vaddr != dst.base_vaddr || fresh.rkey != dst.rkey ||
          fresh.qpn != dst.qpn || fresh.n_slots != dst.n_slots ||
          fresh.slot_bytes != dst.slot_bytes) {
        dst = fresh;
        rebuild_templates();
      }
    }
    const auto key = make_key(feeder_id, i % unique_keys);
    make_value(key, config_.dart.value_bytes, value);
    const std::uint32_t sw =
        static_cast<std::uint32_t>(i % config_.switches_per_feeder);
    ++tally.reports;

    const std::uint32_t first_copy =
        stochastic ? static_cast<std::uint32_t>(
                         rng.below(config_.dart.n_addresses))
                   : 0;
    const std::uint32_t copies = stochastic ? 1 : config_.dart.n_addresses;
    for (std::uint32_t c = 0; c < copies; ++c) {
      const std::uint32_t n = stochastic ? first_copy : c;
      ++tally.crafted;
      if (loss && loss->drop(rng)) {
        ++tally.dropped;
        continue;
      }
      const std::uint64_t slot =
          crafter_.hashes().address_of(key, n, dst.n_slots);
      const std::uint32_t shard = static_cast<std::uint32_t>(
          shard_of_slot(slot, n_slots, config_.n_shards));
      FrameSlot& item = staged[shard][staged_n[shard]];
      std::size_t len;
      if (config_.second_copy_cas && n == 1) {
        // §7 insert-if-empty: CAS the slot's 64-bit word from 0 to the
        // packed [checksum ‖ value] payload (config guarantees
        // slot_bytes == 8, so the CAS covers the whole slot).
        std::array<std::byte, 8> payload{};
        const std::uint32_t checksum =
            crafter_.hashes().checksum_of(key, config_.dart.checksum_bits);
        std::size_t off = 0;
        for (std::uint32_t b = 0; b < config_.dart.checksum_bytes(); ++b) {
          payload[off++] = static_cast<std::byte>((checksum >> (8 * b)) & 0xFF);
        }
        std::memcpy(payload.data() + off, value.data(), value.size());
        std::uint64_t swap = 0;
        std::memcpy(&swap, payload.data(), 8);
        len = crafter_.craft_compare_swap_into(cas_tpls[sw],
                                               dst.slot_vaddr(slot),
                                               /*compare=*/0, swap,
                                               psns[sw]++, item.bytes);
      } else {
        len = crafter_.craft_write_into(write_tpls[sw], key, value, n,
                                        psns[sw]++, item.bytes);
      }
      assert(len != 0 && len <= kMaxFrameBytes);
      item.len = static_cast<std::uint16_t>(len);
      if (++staged_n[shard] == batch) flush(shard);
    }
  }

  // Publish every partially filled batch before signalling completion —
  // workers key their exit on feeders_done_, so staged frames must be in
  // the rings before the release fetch_add below.
  for (std::uint32_t shard = 0; shard < config_.n_shards; ++shard) {
    if (staged_n[shard] > 0) flush(shard);
  }

  feeders_done_.fetch_add(1, std::memory_order_release);
}

void IngestPipeline::worker_main(std::uint32_t shard_id) {
  WorkerTally& tally = worker_tallies_[shard_id];
  auto& rnic = collector_.rnic();
  const std::size_t batch = config_.batch_size;
  std::vector<FrameSlot> items(batch);
  std::vector<std::span<const std::byte>> views(batch);
  for (;;) {
    // Order matters: observe the done count BEFORE the sweep. If the sweep
    // then finds every ring empty while done was already at n_feeders, no
    // push can arrive afterwards (pushes happen-before the release
    // fetch_add in feeder_main), so exiting is safe.
    const bool done = feeders_done_.load(std::memory_order_acquire) ==
                      config_.n_feeders;
    bool got = false;
    for (std::uint32_t f = 0; f < config_.n_feeders; ++f) {
      Ring& r = ring(f, shard_id);
      std::size_t k;
      while ((k = r.try_pop_n(std::span<FrameSlot>(items.data(), batch))) >
             0) {
        got = true;
        for (std::size_t i = 0; i < k; ++i) {
          views[i] = std::span<const std::byte>(items[i].bytes.data(),
                                                items[i].len);
        }
        const std::size_t applied = rnic.process_frames(
            std::span<const std::span<const std::byte>>(views.data(), k));
        tally.applied += applied;
        tally.rejected += k - applied;
        if (k < batch) break;  // ring drained; move to the next feeder
      }
    }
    if (got) continue;
    if (done) break;
    std::this_thread::yield();
  }
}

}  // namespace dart::core
