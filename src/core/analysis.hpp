// Closed-form analysis from §4 of the paper.
//
// Model: the store has M slots; after key q was last written, K = αM
// *distinct* other keys were written, each stamping its own N slots at
// uniformly random addresses. Using the standard Poisson approximation, the
// probability that one particular slot of q was overwritten is
//     p = 1 − e^{−KN/M} = 1 − e^{−αN}.
//
// From that the paper derives (all reproduced here, with the same bounds):
//   - empty-return probability (no surviving checksum match),
//   - ambiguous-return probability bounds (≥2 distinct matching values),
//   - return-error probability bounds (a wrong value matches the checksum
//     after all originals were overwritten),
//   - and, as used in §5, the query success rate and the best N per load.
//
// These functions drive Figures 3–5's theory overlays and the §5.2 check
// (predicted 38.7% oldest-report queryability at 3GB/100M flows).
#pragma once

#include <cstdint>

namespace dart::core {

// Fraction of a key's slots expected to be overwritten after αM distinct
// later keys: 1 − e^{−αN}.
[[nodiscard]] double p_slot_overwritten(double alpha, unsigned n) noexcept;

// All N slots overwritten: (1 − e^{−αN})^N.
[[nodiscard]] double p_all_overwritten(double alpha, unsigned n) noexcept;

// At least one original slot survives: 1 − (1 − e^{−αN})^N.
// With a large checksum this is the query success probability — the quantity
// Fig. 3 and Fig. 4 plot.
[[nodiscard]] double p_survives(double alpha, unsigned n) noexcept;

// Empty return, case 1 (§4): all N slots overwritten AND no overwriting key
// got the same b-bit checksum:  (1−e^{−αN})^N (1−2^{−b})^N.
[[nodiscard]] double p_empty_no_match(double alpha, unsigned n,
                                      unsigned checksum_bits) noexcept;

// Empty return, case 2 (§4): ≥2 distinct values carry the correct checksum.
// The paper gives a lower and an upper bound (values in overwritten slots
// may coincide); both are reproduced exactly.
[[nodiscard]] double p_ambiguous_lower(double alpha, unsigned n,
                                       unsigned checksum_bits) noexcept;
[[nodiscard]] double p_ambiguous_upper(double alpha, unsigned n,
                                       unsigned checksum_bits) noexcept;

// Return error (§4): all originals overwritten and an overwriting key with
// the same checksum is returned.
//   lower: (1−e^{−αN})^N · N·2^{−b}·(1−2^{−b})^{N−1}
//   upper: (1−e^{−αN})^N · (1−(1−2^{−b})^N)
[[nodiscard]] double p_return_error_lower(double alpha, unsigned n,
                                          unsigned checksum_bits) noexcept;
[[nodiscard]] double p_return_error_upper(double alpha, unsigned n,
                                          unsigned checksum_bits) noexcept;

// Redundancy N ∈ [1, max_n] maximizing p_survives at load α (Fig. 3's
// background shading).
[[nodiscard]] unsigned optimal_n(double alpha, unsigned max_n = 8) noexcept;

// The load factor at which p_survives(α, a) == p_survives(α, b) — the
// crossover points between Fig. 3's shaded regions. Returns the α found by
// bisection in (lo, hi), or a negative value if no crossover is bracketed.
[[nodiscard]] double crossover_alpha(unsigned n_a, unsigned n_b, double lo,
                                     double hi) noexcept;

// Fig. 4 helpers. Keys are written once each in sequence; for the key with
// `age` keys written after it (age ∈ [0, K]), the success probability is
// p_survives(age/M, N). The *average* queryability over all K keys is
//   (1/K) Σ_{age=0}^{K-1} p_survives(age/M, N)
// ≈ (M/(K·N)) · Γ-style integral; we integrate numerically.
[[nodiscard]] double average_success_over_ages(double total_keys,
                                               double n_slots,
                                               unsigned n) noexcept;

// Success probability of the oldest key after `total_keys` writes.
[[nodiscard]] double oldest_success(double total_keys, double n_slots,
                                    unsigned n) noexcept;

}  // namespace dart::core
