#include "core/store_backend.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>

namespace dart::core {

const char* to_string(StoreBackendKind kind) noexcept {
  switch (kind) {
    case StoreBackendKind::kKv: return "kv";
    case StoreBackendKind::kSketch: return "sketch";
  }
  return "?";
}

QueryResult KvBackend::resolve(std::span<const std::byte> key,
                               ReturnPolicy policy) const {
  return QueryEngine(store_).resolve(key, policy);
}

// ---------------------------------------------------------------------------
// SketchBackend
// ---------------------------------------------------------------------------

namespace {

// The cells live in raw MR bytes (the RNIC's FETCH_ADD target), host-endian
// like rdma::SimulatedRnic's atomic execute. Cell offsets are multiples of
// 8 within an allocation-aligned region, so atomic_ref's alignment
// requirement holds; atomicity matters because local feeders may be sharded
// across threads while the region stays a plain MR-registrable byte span.
std::atomic_ref<std::uint64_t> cell_ref(std::span<std::byte> memory,
                                        std::uint64_t index) noexcept {
  return std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(memory.data() + index * 8));
}

std::uint64_t cell_load(std::span<const std::byte> memory,
                        std::uint64_t index) noexcept {
  return std::atomic_ref<std::uint64_t>(
             *reinterpret_cast<std::uint64_t*>(
                 const_cast<std::byte*>(memory.data()) + index * 8))
      .load(std::memory_order_relaxed);
}

}  // namespace

SketchBackend::SketchBackend(const SketchBackendConfig& config)
    : config_(config), backing_(static_cast<std::size_t>(config.memory_bytes())) {
  assert(config.valid());
  row_seeds_.reserve(config_.rows);
  SplitMix64 sm(config_.seed);
  for (std::uint32_t r = 0; r < config_.rows; ++r) {
    row_seeds_.push_back(sm.next());
  }
}

SketchBackend::SketchBackend(const SketchBackendConfig& config,
                             std::span<std::byte> memory)
    : config_(config), backing_(memory) {
  assert(config.valid());
  assert(memory.size() == config.memory_bytes());
  row_seeds_.reserve(config_.rows);
  SplitMix64 sm(config_.seed);
  for (std::uint32_t r = 0; r < config_.rows; ++r) {
    row_seeds_.push_back(sm.next());
  }
}

void SketchBackend::add(std::span<const std::byte> key, std::uint64_t delta) {
  for (std::uint32_t r = 0; r < config_.rows; ++r) {
    cell_ref(backing_.memory(), cell_of(key, r))
        .fetch_add(delta, std::memory_order_relaxed);
  }
}

std::uint64_t SketchBackend::estimate(
    std::span<const std::byte> key) const noexcept {
  std::uint64_t best = UINT64_MAX;
  for (std::uint32_t r = 0; r < config_.rows; ++r) {
    best = std::min(best, cell_load(backing_.memory(), cell_of(key, r)));
  }
  return best == UINT64_MAX ? 0 : best;
}

std::uint64_t SketchBackend::cell_value(std::uint64_t index) const noexcept {
  return cell_load(backing_.memory(), index);
}

QueryResult SketchBackend::resolve(std::span<const std::byte> key,
                                   ReturnPolicy /*policy*/) const {
  // A sketch has no per-key value to vote over; the resolve contract here is
  // the point estimate, serialized 8-byte little-endian (the sim_key width).
  QueryResult result;
  const std::uint64_t est = estimate(key);
  if (est == 0) return result;  // never counted (or column still zero)
  result.outcome = QueryOutcome::kFound;
  result.checksum_matches = config_.rows;  // cells consulted
  result.distinct_values = 1;
  result.value.resize(8);
  for (int i = 0; i < 8; ++i) {
    result.value[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((est >> (8 * i)) & 0xFF);
  }
  return result;
}

void SketchBackend::clear() {
  backing_.clear();
  candidates_.clear();
  offers_ = 0;
  offers_evicted_ = 0;
  offers_rejected_ = 0;
}

void SketchBackend::offer(std::span<const std::byte> key) {
  ++offers_;
  for (const auto& candidate : candidates_) {
    if (candidate.size() == key.size() &&
        std::memcmp(candidate.data(), key.data(), key.size()) == 0) {
      return;  // already tracked; top_k() re-estimates from live cells
    }
  }
  if (candidates_.size() < config_.topk_capacity) {
    candidates_.emplace_back(key.begin(), key.end());
    return;
  }
  // At capacity: evict the weakest candidate only for a strictly stronger
  // newcomer, so a flood of mice cannot churn out an established elephant.
  std::size_t weakest = 0;
  std::uint64_t weakest_est = UINT64_MAX;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const std::uint64_t est = estimate(candidates_[i]);
    if (est < weakest_est) {
      weakest_est = est;
      weakest = i;
    }
  }
  if (estimate(key) > weakest_est) {
    candidates_[weakest].assign(key.begin(), key.end());
    ++offers_evicted_;
  } else {
    ++offers_rejected_;
  }
}

std::vector<HeavyHitter> SketchBackend::top_k(std::size_t k) const {
  std::vector<HeavyHitter> out;
  out.reserve(candidates_.size());
  for (const auto& candidate : candidates_) {
    out.push_back(HeavyHitter{candidate, estimate(candidate)});
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.count != b.count) return a.count > b.count;
              return std::lexicographical_compare(a.key.begin(), a.key.end(),
                                                  b.key.begin(), b.key.end());
            });
  if (out.size() > k) out.resize(k);
  return out;
}

// ---------------------------------------------------------------------------
// factory
// ---------------------------------------------------------------------------

std::unique_ptr<StoreBackend> make_backend(const DartConfig& dart,
                                           const StoreBackendConfig& backend,
                                           std::span<std::byte> memory) {
  assert(backend.valid(dart));
  assert(memory.size() == backend.memory_bytes(dart));
  switch (backend.kind) {
    case StoreBackendKind::kKv:
      return std::make_unique<KvBackend>(dart, memory);
    case StoreBackendKind::kSketch:
      return std::make_unique<SketchBackend>(backend.sketch, memory);
  }
  return nullptr;
}

std::unique_ptr<StoreBackend> make_backend(const DartConfig& dart,
                                           const StoreBackendConfig& backend) {
  assert(backend.valid(dart));
  switch (backend.kind) {
    case StoreBackendKind::kKv:
      return std::make_unique<KvBackend>(dart);
    case StoreBackendKind::kSketch:
      return std::make_unique<SketchBackend>(backend.sketch);
  }
  return nullptr;
}

}  // namespace dart::core
