#include "core/query_service.hpp"

#include <algorithm>
#include <cstring>

#include "common/bytes.hpp"
#include "common/cycles.hpp"

namespace dart::core {

namespace {

net::UdpFrameSpec reply_spec(net::Ipv4Addr from, net::Ipv4Addr to) {
  net::UdpFrameSpec spec;
  spec.src_ip = from;
  spec.dst_ip = to;
  spec.src_port = kDartQueryUdpPort;
  spec.dst_port = kDartQueryUdpPort;
  return spec;
}

}  // namespace

void QueryServiceNode::receive(net::Packet packet, std::uint64_t /*now_ns*/) {
  const auto frame = net::parse_udp_frame(packet.bytes());
  if (!frame) {
    ++malformed_;
    return;
  }
  // Well-formed but addressed elsewhere: routing noise, not a protocol
  // error. Conflating the two would make `malformed` un-alertable.
  if (frame->udp.dst_port != kDartQueryUdpPort || frame->ip.dst != ip_) {
    ++not_for_me_;
    return;
  }
  // A dead collector's service answers nothing: the request stays pending
  // at the operator until liveness detection re-targets it to a backup.
  if (!online_) {
    ++dropped_offline_;
    return;
  }
  // Shared port: the magic selects KV vs DTA-primitive family before either
  // parser commits.
  if (is_primitive_request(frame->payload)) {
    const auto primitive = parse_primitive_request(frame->payload);
    if (!primitive) {
      ++malformed_;
      return;
    }
    auto payload = serve_primitive(*primitive);
    const auto dest = resolver_(frame->ip.src);
    if (!dest) return;
    auto reply = net::build_udp_frame(reply_spec(ip_, frame->ip.src), payload);
    sim_->send(self_, *dest, net::Packet(std::move(reply)));
    return;
  }
  if (is_sketch_request(frame->payload)) {
    const auto sketch = parse_sketch_request(frame->payload);
    if (!sketch) {
      ++malformed_;
      return;
    }
    auto payload = serve_sketch(*sketch);
    const auto dest = resolver_(frame->ip.src);
    if (!dest) return;
    auto reply = net::build_udp_frame(reply_spec(ip_, frame->ip.src), payload);
    sim_->send(self_, *dest, net::Packet(std::move(reply)));
    return;
  }
  const auto request = parse_query_request(frame->payload);
  if (!request) {
    ++malformed_;
    return;
  }

  // The collector CPU's actual work: N slot reads + checksum filter + vote.
  // Sampled latency: time one in every `resolve_sample_every_` resolves.
  const bool sample =
      resolve_hist_ != nullptr && (served_ % resolve_sample_every_) == 0;
  const std::uint64_t t0 = sample ? rdtsc() : 0;
  const auto result = collector_->query(request->key, request->policy);
  if (sample) {
    const double ns =
        static_cast<double>(rdtsc() - t0) / tsc_ghz();
    resolve_hist_->record(ns);
    ++resolve_samples_;
  }
  ++served_;

  auto response = make_response(request->request_id, result);
  // v2: echo the request's epoch so the client can compute staleness even
  // for out-of-order responses.
  response.epoch = request->epoch;
  // Degraded marking: answering for a dead peer's keys, or our own store is
  // known lossy. An explicit flag beats silently returning garbage.
  apply_degradation(request->key, response.flags, response.stale_epochs);
  if (response.degraded()) ++degraded_;

  const auto response_payload = encode_query_response(response);
  const auto dest = resolver_(frame->ip.src);
  if (!dest) return;  // requester unreachable — drop, like real UDP
  auto reply =
      net::build_udp_frame(reply_spec(ip_, frame->ip.src), response_payload);
  sim_->send(self_, *dest, net::Packet(std::move(reply)));
}

void QueryServiceNode::apply_degradation(std::span<const std::byte> key,
                                         std::uint8_t& flags,
                                         std::uint16_t& stale) const {
  std::uint16_t worst = self_stale_epochs_;
  bool degraded = self_stale_epochs_ > 0;
  const bool can_hash_owner =
      selector_ != nullptr ||
      (crafter_for_owner_ != nullptr && n_collectors_ > 0);
  if (!key.empty() && can_hash_owner) {
    // The data lost with a death belongs to the key's HOME owner — under a
    // ring the live owner of a moved key is a healthy survivor, so marking
    // must use the bring-up mapping, not the post-rebuild one.
    const std::uint32_t owner =
        selector_ != nullptr
            ? selector_->home_owner_of(key)
            : crafter_for_owner_->collector_of(key, n_collectors_);
    if (const auto it = takeovers_.find(owner); it != takeovers_.end()) {
      degraded = true;
      worst = std::max(worst, it->second);
    }
  }
  if (degraded) {
    flags |= kResponseDegraded;
    stale = worst;
  }
}

std::vector<std::byte> QueryServiceNode::serve_primitive(
    const PrimitiveRequest& request) {
  PrimitiveResponse response;
  response.op = request.op;
  response.request_id = request.request_id;
  response.epoch = request.epoch;

  if (!collector_->primitives_enabled()) {
    // The op was understood; this collector just has no primitive regions.
    // Answering (rather than dropping) lets the operator distinguish
    // "unavailable" from "dead" without a timeout.
    response.flags |= kResponsePrimitiveUnavailable;
    ++served_;
    ++primitives_served_;
    ++primitives_unavailable_;
    return encode_primitive_response(response);
  }

  // Drain has no key, so only local degradation applies; the keyed ops share
  // the KV path's owner-takeover marking.
  apply_degradation(request.key, response.flags, response.stale_epochs);

  switch (request.op) {
    case PrimitiveOp::kDrainRing: {
      AppendRing& ring = collector_->ring();
      auto drained = ring.drain(request.max_entries == 0
                                    ? SIZE_MAX
                                    : static_cast<std::size_t>(
                                          std::min<std::uint64_t>(
                                              request.max_entries, SIZE_MAX)));
      response.missed = drained.missed;
      response.next_seq = drained.next_seq;
      response.entry_value_bytes =
          static_cast<std::uint16_t>(ring.config().value_bytes);
      response.entries.reserve(drained.entries.size());
      for (auto& entry : drained.entries) {
        response.entries.push_back(
            RingEntryWire{entry.seq, std::move(entry.value)});
      }
      break;
    }
    case PrimitiveOp::kReadCounter: {
      const CounterCellArray& cells = collector_->counters();
      response.cell_index = cells.config().index_of(request.key);
      response.counter_value = cells.read_cell(response.cell_index);
      break;
    }
    case PrimitiveOp::kReadPostcardGroup: {
      const PostcardStore& store = collector_->postcards();
      auto view = store.read_group(request.key);
      response.group_index = view.group;
      response.valid_mask = view.valid_mask;
      response.max_hops = static_cast<std::uint8_t>(store.config().max_hops);
      response.hop_value_bytes =
          static_cast<std::uint16_t>(store.config().value_bytes);
      response.hops = std::move(view.hops);
      break;
    }
  }
  if (response.degraded()) ++degraded_;
  ++served_;
  ++primitives_served_;
  return encode_primitive_response(response);
}

std::vector<std::byte> QueryServiceNode::serve_sketch(
    const SketchRequest& request) {
  SketchResponse response;
  response.op = request.op;
  response.request_id = request.request_id;
  response.epoch = request.epoch;

  if (collector_->backend_kind() != StoreBackendKind::kSketch) {
    // Same shape as the primitive-unavailable answer: the op was understood,
    // this collector just isn't sketch-backed. Answering (rather than
    // dropping) lets the operator tell "wrong backend" from "dead".
    response.flags |= kResponseSketchUnavailable;
    ++served_;
    ++sketch_served_;
    ++sketch_unavailable_;
    return encode_sketch_response(response);
  }

  // Estimate is keyed (owner-takeover marking applies); top-k reads the
  // whole tracker, so only local degradation does.
  apply_degradation(request.key, response.flags, response.stale_epochs);

  SketchBackend& sketch = collector_->sketch();
  switch (request.op) {
    case SketchOp::kEstimate:
      response.estimate = sketch.estimate(request.key);
      // Queried keys are the tracker's candidate stream: the operator's own
      // read traffic maintains the heavy-hitter set, keeping ingest
      // zero-CPU.
      sketch.offer(request.key);
      break;
    case SketchOp::kTopK: {
      const auto hitters = sketch.top_k(request.k);
      response.hitters.reserve(hitters.size());
      for (const HeavyHitter& hh : hitters) {
        response.hitters.push_back(HeavyHitterWire{hh.count, hh.key});
      }
      break;
    }
  }
  if (response.degraded()) ++degraded_;
  ++served_;
  ++sketch_served_;
  return encode_sketch_response(response);
}

void QueryServiceNode::bind_metrics(obs::MetricRegistry& registry,
                                    const std::string& prefix) {
  registry.counter_fn(prefix + "_query_served_total",
                      [this] { return served_; },
                      "query requests resolved and answered");
  registry.counter_fn(prefix + "_query_malformed_total",
                      [this] { return malformed_; },
                      "unparsable frames or bad DQ payloads");
  registry.counter_fn(prefix + "_query_not_for_me_total",
                      [this] { return not_for_me_; },
                      "well-formed frames addressed to another node");
  registry.counter_fn(prefix + "_query_degraded_total",
                      [this] { return degraded_; },
                      "responses served with the degraded flag");
  registry.counter_fn(prefix + "_query_dropped_offline_total",
                      [this] { return dropped_offline_; },
                      "requests eaten while the collector was offline");
  registry.counter_fn(prefix + "_query_primitives_served_total",
                      [this] { return primitives_served_; },
                      "DTA primitive requests answered");
  registry.counter_fn(prefix + "_query_primitives_unavailable_total",
                      [this] { return primitives_unavailable_; },
                      "primitive requests answered 'regions not enabled'");
  registry.counter_fn(prefix + "_query_sketch_served_total",
                      [this] { return sketch_served_; },
                      "sketch requests answered");
  registry.counter_fn(prefix + "_query_sketch_unavailable_total",
                      [this] { return sketch_unavailable_; },
                      "sketch requests answered 'backend not a sketch'");
  // Linear buckets 0..50us cover the N-slot read + vote for every store
  // size the tests use; outliers clamp to the top bucket.
  resolve_hist_ = &registry.histogram(
      prefix + "_query_resolve_ns", 0.0, 50'000.0, 50,
      "sampled DartStore resolve latency (ns)");
}

std::uint32_t OperatorClient::route_of(std::span<const std::byte> key) const {
  // Fig. 2, steps 1-2: hash the key to its collector, look up the address.
  // Ring deployments consult the live consistent-hash membership, which
  // already excludes dead members; modulo deployments reduce over the full
  // service list and patch deaths with the retarget map below.
  std::uint32_t collector =
      selector_ != nullptr
          ? selector_->owner_of(key)
          : crafter_->collector_of(
                key, static_cast<std::uint32_t>(service_ips_.size()));
  // Failover redirect: keys owned by a dead collector resolve to its backup
  // (the directory row liveness re-pointed; see docs/FAULTS.md).
  if (const auto it = retargets_.find(collector); it != retargets_.end()) {
    collector = it->second;
  }
  return collector;
}

bool OperatorClient::send_to_ip(net::Ipv4Addr ip,
                                std::span<const std::byte> payload) {
  const auto dest = resolver_(ip);
  if (!dest) return false;
  auto frame = net::build_udp_frame(reply_spec(ip_, ip), payload);
  sim_->send(self_, *dest, net::Packet(std::move(frame)));
  return true;
}

bool OperatorClient::send_to_collector(std::uint32_t collector_id,
                                       std::vector<std::byte> payload) {
  if (collector_id >= service_ips_.size()) return false;
  return send_to_ip(service_ips_[collector_id], payload);
}

void OperatorClient::track(std::uint64_t wire_id, net::Ipv4Addr destination,
                           std::vector<std::byte> payload) {
  // Outstanding only if actually sent: an unreachable service can never
  // answer, so its id must not inflate pending().
  PendingRequest rec;
  rec.destination = destination;
  rec.payload = std::move(payload);
  rec.newest_wire_id = wire_id;
  rec.retries_left = max_retries_;
  rec.wire_ids.push_back(wire_id);
  wire_to_logical_[wire_id] = wire_id;
  pending_req_.emplace(wire_id, std::move(rec));
  ++sent_;
  arm_deadline(wire_id, wire_id);
}

std::optional<std::uint64_t> OperatorClient::retire(std::uint64_t wire_id) {
  const auto alias = wire_to_logical_.find(wire_id);
  if (alias == wire_to_logical_.end()) return std::nullopt;
  const std::uint64_t logical = alias->second;
  const auto it = pending_req_.find(logical);
  // Every alias of the retired request is forgotten together, so the late
  // twin of a retried request can only ever count as unexpected.
  for (const auto id : it->second.wire_ids) wire_to_logical_.erase(id);
  pending_req_.erase(it);
  ++received_;
  return logical;
}

void OperatorClient::arm_deadline(std::uint64_t logical_id,
                                  std::uint64_t wire_id) {
  if (timeout_ns_ == 0 || sim_ == nullptr) return;
  sim_->schedule(sim_->now_ns() + timeout_ns_, [this, logical_id, wire_id] {
    on_deadline(logical_id, wire_id);
  });
}

void OperatorClient::on_deadline(std::uint64_t logical_id,
                                 std::uint64_t wire_id) {
  const auto it = pending_req_.find(logical_id);
  // Already answered, or a newer retry owns the deadline now.
  if (it == pending_req_.end() || it->second.newest_wire_id != wire_id) return;
  PendingRequest& rec = it->second;
  if (rec.retries_left == 0) {
    // Exhausted: fail the request so a lost response cannot park its id (and
    // pending()) forever.
    for (const auto id : rec.wire_ids) wire_to_logical_.erase(id);
    timed_out_ids_.insert(logical_id);
    pending_req_.erase(it);
    ++timeouts_;
    return;
  }
  --rec.retries_left;
  ++retries_;
  // Resend under a FRESH wire id — a service that already served the lost
  // original must treat the retry as a new request, and the client must not
  // confuse the two answers. Every request family carries its id big-endian
  // at bytes [4, 12), so the stored encoding is patched in place.
  const std::uint64_t fresh = next_id_++;
  const std::uint64_t be = host_to_net64(fresh);
  std::memcpy(rec.payload.data() + 4, &be, sizeof(be));
  rec.newest_wire_id = fresh;
  rec.wire_ids.push_back(fresh);
  wire_to_logical_[fresh] = logical_id;
  (void)send_to_ip(rec.destination, rec.payload);  // best effort; re-armed
  arm_deadline(logical_id, fresh);
}

std::uint64_t OperatorClient::query(std::span<const std::byte> key,
                                    ReturnPolicy policy) {
  QueryRequest request;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.policy = policy;
  request.key.assign(key.begin(), key.end());

  const std::uint32_t collector = route_of(key);
  if (collector < service_ips_.size()) {
    auto payload = encode_query_request(request);
    if (send_to_ip(service_ips_[collector], payload)) {
      track(request.request_id, service_ips_[collector], std::move(payload));
    }
  }
  return request.request_id;
}

std::uint64_t OperatorClient::drain_ring(std::uint32_t collector_id,
                                         std::uint64_t max_entries) {
  PrimitiveRequest request;
  request.op = PrimitiveOp::kDrainRing;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.max_entries = max_entries;
  if (collector_id >= service_ips_.size()) return 0;
  auto payload = encode_primitive_request(request);
  if (!send_to_ip(service_ips_[collector_id], payload)) return 0;
  track(request.request_id, service_ips_[collector_id], std::move(payload));
  return request.request_id;
}

std::uint64_t OperatorClient::read_counter(std::span<const std::byte> key) {
  PrimitiveRequest request;
  request.op = PrimitiveOp::kReadCounter;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.key.assign(key.begin(), key.end());
  const std::uint32_t collector = route_of(key);
  if (collector >= service_ips_.size()) return 0;
  auto payload = encode_primitive_request(request);
  if (!send_to_ip(service_ips_[collector], payload)) return 0;
  track(request.request_id, service_ips_[collector], std::move(payload));
  return request.request_id;
}

std::uint64_t OperatorClient::read_postcard_group(
    std::span<const std::byte> flow_key) {
  PrimitiveRequest request;
  request.op = PrimitiveOp::kReadPostcardGroup;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.key.assign(flow_key.begin(), flow_key.end());
  const std::uint32_t collector = route_of(flow_key);
  if (collector >= service_ips_.size()) return 0;
  auto payload = encode_primitive_request(request);
  if (!send_to_ip(service_ips_[collector], payload)) return 0;
  track(request.request_id, service_ips_[collector], std::move(payload));
  return request.request_id;
}

std::uint64_t OperatorClient::sketch_estimate(std::span<const std::byte> key) {
  SketchRequest request;
  request.op = SketchOp::kEstimate;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.key.assign(key.begin(), key.end());
  const std::uint32_t collector = route_of(key);
  if (collector >= service_ips_.size()) return 0;
  auto payload = encode_sketch_request(request);
  if (!send_to_ip(service_ips_[collector], payload)) return 0;
  track(request.request_id, service_ips_[collector], std::move(payload));
  return request.request_id;
}

std::uint64_t OperatorClient::sketch_topk(std::uint32_t collector_id,
                                          std::uint16_t k) {
  SketchRequest request;
  request.op = SketchOp::kTopK;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.k = k;
  if (collector_id >= service_ips_.size()) return 0;
  auto payload = encode_sketch_request(request);
  if (!send_to_ip(service_ips_[collector_id], payload)) return 0;
  track(request.request_id, service_ips_[collector_id], std::move(payload));
  return request.request_id;
}

std::uint64_t OperatorClient::subscribe_key_change(
    net::Ipv4Addr gateway_ip, std::span<const std::byte> key) {
  SubscribeRequest request;
  request.op = SubscribeOp::kSubscribe;
  request.kind = StandingKind::kKeyChange;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.key.assign(key.begin(), key.end());
  auto payload = encode_subscribe_request(request);
  if (!send_to_ip(gateway_ip, payload)) return 0;
  track(request.request_id, gateway_ip, std::move(payload));
  return request.request_id;
}

std::uint64_t OperatorClient::subscribe_counter_threshold(
    net::Ipv4Addr gateway_ip, std::span<const std::byte> key,
    std::uint64_t threshold) {
  SubscribeRequest request;
  request.op = SubscribeOp::kSubscribe;
  request.kind = StandingKind::kCounterThreshold;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.threshold = threshold;
  request.key.assign(key.begin(), key.end());
  auto payload = encode_subscribe_request(request);
  if (!send_to_ip(gateway_ip, payload)) return 0;
  track(request.request_id, gateway_ip, std::move(payload));
  return request.request_id;
}

std::uint64_t OperatorClient::subscribe_topk_delta(net::Ipv4Addr gateway_ip,
                                                   std::uint32_t collector_id,
                                                   std::uint16_t k) {
  SubscribeRequest request;
  request.op = SubscribeOp::kSubscribe;
  request.kind = StandingKind::kTopKDelta;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.collector = collector_id;
  request.k = k;
  auto payload = encode_subscribe_request(request);
  if (!send_to_ip(gateway_ip, payload)) return 0;
  track(request.request_id, gateway_ip, std::move(payload));
  return request.request_id;
}

std::uint64_t OperatorClient::unsubscribe(net::Ipv4Addr gateway_ip,
                                          std::uint64_t subscription_id) {
  SubscribeRequest request;
  request.op = SubscribeOp::kUnsubscribe;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.subscription_id = subscription_id;
  auto payload = encode_subscribe_request(request);
  if (!send_to_ip(gateway_ip, payload)) return 0;
  track(request.request_id, gateway_ip, std::move(payload));
  return request.request_id;
}

void OperatorClient::receive(net::Packet packet, std::uint64_t /*now_ns*/) {
  const auto frame = net::parse_udp_frame(packet.bytes());
  if (!frame || frame->udp.dst_port != kDartQueryUdpPort) return;
  if (frame->ip.dst != ip_) {
    // Addressed to another client; recording it as ours would hand this
    // operator someone else's answer.
    ++stray_;
    return;
  }
  if (is_primitive_response(frame->payload)) {
    auto response = parse_primitive_response(frame->payload);
    if (!response) return;
    const auto logical = retire(response->request_id);
    if (!logical) {
      ++unexpected_;
      return;
    }
    if (response->degraded()) ++degraded_;
    // Answers are filed under the LOGICAL id — the one the caller holds —
    // even when a retry's fresh wire id carried them home.
    response->request_id = *logical;
    primitive_responses_[*logical] = *std::move(response);
    return;
  }
  if (is_sketch_response(frame->payload)) {
    auto response = parse_sketch_response(frame->payload);
    if (!response) return;
    const auto logical = retire(response->request_id);
    if (!logical) {
      ++unexpected_;
      return;
    }
    if (response->degraded()) ++degraded_;
    response->request_id = *logical;
    sketch_responses_[*logical] = *std::move(response);
    return;
  }
  if (is_subscribe_ack(frame->payload)) {
    auto ack = parse_subscribe_ack(frame->payload);
    if (!ack) return;
    const auto logical = retire(ack->request_id);
    if (!logical) {
      ++unexpected_;
      return;
    }
    ack->request_id = *logical;
    subscribe_acks_[*logical] = *std::move(ack);
    return;
  }
  if (is_notification(frame->payload)) {
    // Unsolicited by design — this is the push half of a standing query, so
    // there is no outstanding id to match. Address checks above still apply.
    auto note = parse_notification(frame->payload);
    if (!note) return;
    ++notifications_received_;
    notifications_.push_back(*std::move(note));
    return;
  }
  auto response = parse_query_response(frame->payload);
  if (!response) return;
  // First matching response retires the request; duplicates and replays (UDP
  // can deliver both) are counted but change neither pending() nor
  // responses_.
  const auto logical = retire(response->request_id);
  if (!logical) {
    ++unexpected_;
    return;
  }
  if (response->degraded()) ++degraded_;
  response->request_id = *logical;
  responses_[*logical] = *std::move(response);
}

std::optional<PrimitiveResponse> OperatorClient::take_primitive_response(
    std::uint64_t request_id) {
  const auto it = primitive_responses_.find(request_id);
  if (it == primitive_responses_.end()) return std::nullopt;
  PrimitiveResponse resp = std::move(it->second);
  primitive_responses_.erase(it);
  return resp;
}

std::optional<SketchResponse> OperatorClient::take_sketch_response(
    std::uint64_t request_id) {
  const auto it = sketch_responses_.find(request_id);
  if (it == sketch_responses_.end()) return std::nullopt;
  SketchResponse resp = std::move(it->second);
  sketch_responses_.erase(it);
  return resp;
}

std::optional<SubscribeAck> OperatorClient::take_subscribe_ack(
    std::uint64_t request_id) {
  const auto it = subscribe_acks_.find(request_id);
  if (it == subscribe_acks_.end()) return std::nullopt;
  SubscribeAck ack = std::move(it->second);
  subscribe_acks_.erase(it);
  return ack;
}

std::vector<StandingNotification> OperatorClient::take_notifications() {
  std::vector<StandingNotification> drained;
  drained.swap(notifications_);
  return drained;
}

std::optional<QueryResponse> OperatorClient::take_response(
    std::uint64_t request_id) {
  const auto it = responses_.find(request_id);
  if (it == responses_.end()) return std::nullopt;
  QueryResponse resp = std::move(it->second);
  responses_.erase(it);
  return resp;
}

void OperatorClient::bind_metrics(obs::MetricRegistry& registry,
                                  const std::string& prefix) {
  registry.counter_fn(prefix + "_operator_queries_sent_total",
                      [this] { return sent_; }, "query requests sent");
  registry.counter_fn(prefix + "_operator_responses_received_total",
                      [this] { return received_; },
                      "first-copy responses accepted");
  registry.counter_fn(prefix + "_operator_responses_stray_total",
                      [this] { return stray_; },
                      "responses addressed to another client");
  registry.counter_fn(prefix + "_operator_responses_unexpected_total",
                      [this] { return unexpected_; },
                      "duplicate/replayed/unknown-id responses");
  registry.counter_fn(prefix + "_operator_responses_degraded_total",
                      [this] { return degraded_; },
                      "accepted responses flagged degraded");
  registry.counter_fn(prefix + "_operator_timeouts_total",
                      [this] { return timeouts_; },
                      "requests failed after exhausting retries");
  registry.counter_fn(prefix + "_operator_retries_total",
                      [this] { return retries_; },
                      "deadline-driven resends under fresh wire ids");
  registry.counter_fn(prefix + "_operator_notifications_total",
                      [this] { return notifications_received_; },
                      "standing-query notifications pushed to this client");
  registry.gauge_fn(prefix + "_operator_pending",
                    [this] { return static_cast<double>(pending()); },
                    "requests in flight");
}

}  // namespace dart::core
