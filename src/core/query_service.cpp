#include "core/query_service.hpp"

#include <algorithm>

#include "common/cycles.hpp"

namespace dart::core {

namespace {

net::UdpFrameSpec reply_spec(net::Ipv4Addr from, net::Ipv4Addr to) {
  net::UdpFrameSpec spec;
  spec.src_ip = from;
  spec.dst_ip = to;
  spec.src_port = kDartQueryUdpPort;
  spec.dst_port = kDartQueryUdpPort;
  return spec;
}

}  // namespace

void QueryServiceNode::receive(net::Packet packet, std::uint64_t /*now_ns*/) {
  const auto frame = net::parse_udp_frame(packet.bytes());
  if (!frame) {
    ++malformed_;
    return;
  }
  // Well-formed but addressed elsewhere: routing noise, not a protocol
  // error. Conflating the two would make `malformed` un-alertable.
  if (frame->udp.dst_port != kDartQueryUdpPort || frame->ip.dst != ip_) {
    ++not_for_me_;
    return;
  }
  // A dead collector's service answers nothing: the request stays pending
  // at the operator until liveness detection re-targets it to a backup.
  if (!online_) {
    ++dropped_offline_;
    return;
  }
  const auto request = parse_query_request(frame->payload);
  if (!request) {
    ++malformed_;
    return;
  }

  // The collector CPU's actual work: N slot reads + checksum filter + vote.
  // Sampled latency: time one in every `resolve_sample_every_` resolves.
  const bool sample =
      resolve_hist_ != nullptr && (served_ % resolve_sample_every_) == 0;
  const std::uint64_t t0 = sample ? rdtsc() : 0;
  const auto result = collector_->query(request->key, request->policy);
  if (sample) {
    const double ns =
        static_cast<double>(rdtsc() - t0) / tsc_ghz();
    resolve_hist_->record(ns);
    ++resolve_samples_;
  }
  ++served_;

  auto response = make_response(request->request_id, result);
  // v2: echo the request's epoch so the client can compute staleness even
  // for out-of-order responses.
  response.epoch = request->epoch;
  // Degraded marking: answering for a dead peer's keys, or our own store is
  // known lossy. An explicit flag beats silently returning garbage.
  std::uint16_t stale = self_stale_epochs_;
  bool degraded = self_stale_epochs_ > 0;
  if (crafter_for_owner_ != nullptr && n_collectors_ > 0) {
    const std::uint32_t owner =
        crafter_for_owner_->collector_of(request->key, n_collectors_);
    if (const auto it = takeovers_.find(owner); it != takeovers_.end()) {
      degraded = true;
      stale = std::max(stale, it->second);
    }
  }
  if (degraded) {
    response.flags |= kResponseDegraded;
    response.stale_epochs = stale;
    ++degraded_;
  }

  const auto response_payload = encode_query_response(response);
  const auto dest = resolver_(frame->ip.src);
  if (!dest) return;  // requester unreachable — drop, like real UDP
  auto reply =
      net::build_udp_frame(reply_spec(ip_, frame->ip.src), response_payload);
  sim_->send(self_, *dest, net::Packet(std::move(reply)));
}

void QueryServiceNode::bind_metrics(obs::MetricRegistry& registry,
                                    const std::string& prefix) {
  registry.counter_fn(prefix + "_query_served_total",
                      [this] { return served_; },
                      "query requests resolved and answered");
  registry.counter_fn(prefix + "_query_malformed_total",
                      [this] { return malformed_; },
                      "unparsable frames or bad DQ payloads");
  registry.counter_fn(prefix + "_query_not_for_me_total",
                      [this] { return not_for_me_; },
                      "well-formed frames addressed to another node");
  registry.counter_fn(prefix + "_query_degraded_total",
                      [this] { return degraded_; },
                      "responses served with the degraded flag");
  registry.counter_fn(prefix + "_query_dropped_offline_total",
                      [this] { return dropped_offline_; },
                      "requests eaten while the collector was offline");
  // Linear buckets 0..50us cover the N-slot read + vote for every store
  // size the tests use; outliers clamp to the top bucket.
  resolve_hist_ = &registry.histogram(
      prefix + "_query_resolve_ns", 0.0, 50'000.0, 50,
      "sampled DartStore resolve latency (ns)");
}

std::uint64_t OperatorClient::query(std::span<const std::byte> key,
                                    ReturnPolicy policy) {
  // Fig. 2, steps 1-2: hash the key to its collector, look up the address.
  std::uint32_t collector = crafter_->collector_of(
      key, static_cast<std::uint32_t>(service_ips_.size()));
  // Failover redirect: keys owned by a dead collector resolve to its backup
  // (the directory row liveness re-pointed; see docs/FAULTS.md).
  if (const auto it = retargets_.find(collector); it != retargets_.end()) {
    collector = it->second;
  }
  const net::Ipv4Addr service_ip = service_ips_[collector];

  QueryRequest request;
  request.request_id = next_id_++;
  request.epoch = epoch_;
  request.policy = policy;
  request.key.assign(key.begin(), key.end());

  const auto dest = resolver_(service_ip);
  if (dest) {
    auto frame = net::build_udp_frame(reply_spec(ip_, service_ip),
                                      encode_query_request(request));
    sim_->send(self_, *dest, net::Packet(std::move(frame)));
    // Outstanding only if actually sent: an unreachable service can never
    // answer, so its id must not inflate pending().
    outstanding_.insert(request.request_id);
    ++sent_;
  }
  return request.request_id;
}

void OperatorClient::receive(net::Packet packet, std::uint64_t /*now_ns*/) {
  const auto frame = net::parse_udp_frame(packet.bytes());
  if (!frame || frame->udp.dst_port != kDartQueryUdpPort) return;
  if (frame->ip.dst != ip_) {
    // Addressed to another client; recording it as ours would hand this
    // operator someone else's answer.
    ++stray_;
    return;
  }
  const auto response = parse_query_response(frame->payload);
  if (!response) return;
  // First matching response retires the id; duplicates and replays (UDP can
  // deliver both) are counted but change neither pending() nor responses_.
  const auto it = outstanding_.find(response->request_id);
  if (it == outstanding_.end()) {
    ++unexpected_;
    return;
  }
  outstanding_.erase(it);
  ++received_;
  if (response->degraded()) ++degraded_;
  responses_[response->request_id] = *response;
}

std::optional<QueryResponse> OperatorClient::take_response(
    std::uint64_t request_id) {
  const auto it = responses_.find(request_id);
  if (it == responses_.end()) return std::nullopt;
  QueryResponse resp = std::move(it->second);
  responses_.erase(it);
  return resp;
}

void OperatorClient::bind_metrics(obs::MetricRegistry& registry,
                                  const std::string& prefix) {
  registry.counter_fn(prefix + "_operator_queries_sent_total",
                      [this] { return sent_; }, "query requests sent");
  registry.counter_fn(prefix + "_operator_responses_received_total",
                      [this] { return received_; },
                      "first-copy responses accepted");
  registry.counter_fn(prefix + "_operator_responses_stray_total",
                      [this] { return stray_; },
                      "responses addressed to another client");
  registry.counter_fn(prefix + "_operator_responses_unexpected_total",
                      [this] { return unexpected_; },
                      "duplicate/replayed/unknown-id responses");
  registry.counter_fn(prefix + "_operator_responses_degraded_total",
                      [this] { return degraded_; },
                      "accepted responses flagged degraded");
  registry.gauge_fn(prefix + "_operator_pending",
                    [this] { return static_cast<double>(pending()); },
                    "requests in flight");
}

}  // namespace dart::core
