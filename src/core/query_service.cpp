#include "core/query_service.hpp"

namespace dart::core {

namespace {

net::UdpFrameSpec reply_spec(net::Ipv4Addr from, net::Ipv4Addr to) {
  net::UdpFrameSpec spec;
  spec.src_ip = from;
  spec.dst_ip = to;
  spec.src_port = kDartQueryUdpPort;
  spec.dst_port = kDartQueryUdpPort;
  return spec;
}

}  // namespace

void QueryServiceNode::receive(net::Packet packet, std::uint64_t /*now_ns*/) {
  const auto frame = net::parse_udp_frame(packet.bytes());
  if (!frame || frame->udp.dst_port != kDartQueryUdpPort ||
      frame->ip.dst != ip_) {
    ++malformed_;
    return;
  }
  const auto request = parse_query_request(frame->payload);
  if (!request) {
    ++malformed_;
    return;
  }

  // The collector CPU's actual work: N slot reads + checksum filter + vote.
  const auto result = collector_->query(request->key, request->policy);
  ++served_;

  const auto response_payload =
      encode_query_response(make_response(request->request_id, result));
  const auto dest = resolver_(frame->ip.src);
  if (!dest) return;  // requester unreachable — drop, like real UDP
  auto reply =
      net::build_udp_frame(reply_spec(ip_, frame->ip.src), response_payload);
  sim_->send(self_, *dest, net::Packet(std::move(reply)));
}

std::uint64_t OperatorClient::query(std::span<const std::byte> key,
                                    ReturnPolicy policy) {
  // Fig. 2, steps 1-2: hash the key to its collector, look up the address.
  const std::uint32_t collector = crafter_->collector_of(
      key, static_cast<std::uint32_t>(service_ips_.size()));
  const net::Ipv4Addr service_ip = service_ips_[collector];

  QueryRequest request;
  request.request_id = next_id_++;
  request.policy = policy;
  request.key.assign(key.begin(), key.end());

  const auto dest = resolver_(service_ip);
  if (dest) {
    auto frame = net::build_udp_frame(reply_spec(ip_, service_ip),
                                      encode_query_request(request));
    sim_->send(self_, *dest, net::Packet(std::move(frame)));
    ++pending_;
  }
  return request.request_id;
}

void OperatorClient::receive(net::Packet packet, std::uint64_t /*now_ns*/) {
  const auto frame = net::parse_udp_frame(packet.bytes());
  if (!frame || frame->udp.dst_port != kDartQueryUdpPort) return;
  const auto response = parse_query_response(frame->payload);
  if (!response) return;
  ++received_;
  if (pending_ > 0) --pending_;
  responses_[response->request_id] = *response;
}

std::optional<QueryResponse> OperatorClient::take_response(
    std::uint64_t request_id) {
  const auto it = responses_.find(request_id);
  if (it == responses_.end()) return std::nullopt;
  QueryResponse resp = std::move(it->second);
  responses_.erase(it);
  return resp;
}

}  // namespace dart::core
