// QueryEngine — key-based queries over a DartStore (§3.2, §4).
//
// A query reads the key's N slots, keeps the ones whose stored checksum
// equals the key's checksum, and applies a *return policy* to the surviving
// values. §4 discusses the policy space; the paper's default suggestion is a
// 32-bit checksum with "plurality vote", and it notes that stricter policies
// (e.g. requiring a value to appear at least twice) can be chosen *per
// query* to trade empty returns against return errors — which is why the
// policy is a parameter of resolve(), not of the store.
//
// Outcomes:
//   kFound — the policy selected a value (it may still be wrong if every
//            surviving slot was overwritten by a checksum-colliding key —
//            the "return error" of §4; only the simulation oracle can tell).
//   kEmpty — no surviving slot, or the policy could not commit to a value
//            (the "empty return" of §4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/store.hpp"

namespace dart::core {

enum class ReturnPolicy : std::uint8_t {
  kFirstMatch,     // first checksum-matching slot wins
  kSingleDistinct, // commit only if exactly one distinct matching value (§4's
                   // introductory example)
  kPlurality,      // most frequent matching value; ties → empty (§4 default)
  kConsensusTwo,   // value must appear in ≥2 slots (§4's per-query option)
};

[[nodiscard]] const char* to_string(ReturnPolicy policy) noexcept;

enum class QueryOutcome : std::uint8_t { kFound, kEmpty };

struct QueryResult {
  QueryOutcome outcome = QueryOutcome::kEmpty;
  std::vector<std::byte> value;     // set iff outcome == kFound
  std::uint32_t checksum_matches = 0;  // slots surviving the checksum filter
  std::uint32_t distinct_values = 0;   // distinct values among survivors
};

class QueryEngine {
 public:
  explicit QueryEngine(const DartStore& store,
                       ReturnPolicy default_policy = ReturnPolicy::kPlurality)
      : store_(&store), default_policy_(default_policy) {}

  [[nodiscard]] QueryResult resolve(std::span<const std::byte> key) const {
    return resolve(key, default_policy_);
  }

  [[nodiscard]] QueryResult resolve(std::span<const std::byte> key,
                                    ReturnPolicy policy) const;

  [[nodiscard]] ReturnPolicy default_policy() const noexcept {
    return default_policy_;
  }

 private:
  const DartStore* store_;
  ReturnPolicy default_policy_;
};

}  // namespace dart::core
