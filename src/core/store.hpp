// DartStore — the collector-memory key-value structure (§3.1).
//
// The store is a flat array of M fixed-size slots:
//
//     slot = [ checksum : ceil(b/8) bytes | value : V bytes ]
//
// A key's N slots are at addresses h_0(key)..h_{N-1}(key); a write stamps
// the key's b-bit checksum and the value, unconditionally overwriting
// whatever was there (collisions are the probabilistic cost §4 analyzes).
//
// The same byte layout serves two producers:
//   - the in-process simulation path (write()/write_one()), used by the
//     Monte-Carlo benches, and
//   - the RDMA path: the store can be constructed over *external* memory (a
//     registered MR) into which the simulated RNIC DMAs switch-crafted
//     report payloads. slot_vaddr() gives switches the remote address of a
//     slot, and encode_slot_payload() is the exact wire payload of a report.
//
// The store itself never trusts a checksum match as proof of identity —
// that interpretation (and its failure modes: empty returns and return
// errors) lives in QueryEngine.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "core/config.hpp"

namespace dart::core {

// ---- slot-range sharding ---------------------------------------------------
//
// The sharded ingest pipeline partitions the M slots into n_shards contiguous
// ranges so each range has exactly one writer thread (no two workers ever
// touch the same slot bytes). The partition is the classic balanced integer
// split: slot i belongs to shard ⌊i·S/M⌋, so ranges differ in size by at most
// one slot. Free functions: switches and feeders need the mapping without a
// DartStore in hand.

[[nodiscard]] constexpr std::uint32_t shard_of_slot(
    std::uint64_t index, std::uint64_t n_slots,
    std::uint32_t n_shards) noexcept {
  return static_cast<std::uint32_t>(index * n_shards / n_slots);
}

// Half-open [first, last) slot range owned by `shard`; the inverse of
// shard_of_slot (every index in the range maps back to `shard`).
[[nodiscard]] constexpr std::pair<std::uint64_t, std::uint64_t>
shard_slot_range(std::uint32_t shard, std::uint64_t n_slots,
                 std::uint32_t n_shards) noexcept {
  const auto lo =
      (static_cast<std::uint64_t>(shard) * n_slots + n_shards - 1) / n_shards;
  const auto hi =
      (static_cast<std::uint64_t>(shard + 1) * n_slots + n_shards - 1) /
      n_shards;
  return {lo, hi};
}

// One decoded slot.
//
// `value` ALIASES store memory — it is a window into the [checksum ‖ value]
// slot bytes, not a copy. Two consequences:
//   - a later write to the same slot (local write path or an RNIC DMA)
//     changes the bytes the view points at;
//   - a view captured while writers are active can expose a *torn* pair:
//     a checksum from one report next to value bytes from another, since a
//     slot write is not atomic with respect to readers.
// See DartStore::read_slots for the read discipline that rules this out.
struct SlotView {
  std::uint32_t checksum = 0;
  std::span<const std::byte> value;
};

// ---- storage backing -------------------------------------------------------
//
// Every collector-side structure (the DartStore and the DTA primitive
// regions: append ring, counter-cell array, postcard slot groups) is a flat
// byte region with the same two provisioning modes:
//   - self-owning: the structure allocates zeroed memory (simulation use);
//   - external: the structure is a *view* over caller-owned memory — in the
//     real system a registered MR the RNIC DMAs into (RDMA use).
// RegionBacking is that seam: one place that owns the mode distinction so
// the structures above it only ever see a span.
class RegionBacking {
 public:
  // Self-owning: allocates `bytes` zeroed bytes.
  explicit RegionBacking(std::size_t bytes)
      : owned_(bytes, std::byte{0}), memory_(owned_) {}

  // External view: `memory` must outlive the backing.
  explicit RegionBacking(std::span<std::byte> memory) : memory_(memory) {}

  [[nodiscard]] std::span<std::byte> memory() noexcept { return memory_; }
  [[nodiscard]] std::span<const std::byte> memory() const noexcept {
    return memory_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return memory_.size(); }
  [[nodiscard]] bool owning() const noexcept { return !owned_.empty(); }

  void clear() noexcept {
    if (!memory_.empty()) std::memset(memory_.data(), 0, memory_.size());
  }

 private:
  std::vector<std::byte> owned_;  // empty when external memory is used
  std::span<std::byte> memory_;
};

class DartStore {
 public:
  // Self-owning store (simulation use): allocates M * slot_bytes zeroed.
  explicit DartStore(const DartConfig& config);

  // External-memory store (RDMA use): `memory` must be exactly
  // config.memory_bytes() long and outlive the store.
  DartStore(const DartConfig& config, std::span<std::byte> memory);

  [[nodiscard]] const DartConfig& config() const noexcept { return config_; }
  [[nodiscard]] const HashFamily& hashes() const noexcept { return hashes_; }

  // ---- address & payload computation (shared with switches) -------------

  // Slot index for copy n of `key`.
  [[nodiscard]] std::uint64_t slot_index(std::span<const std::byte> key,
                                         std::uint32_t n) const noexcept {
    return hashes_.address_of(key, n, config_.n_slots);
  }

  // All N slot indices of `key` in one batched hash pass:
  // out[n] == slot_index(key, n). Requires out.size() >= n_addresses.
  void slot_indices(std::span<const std::byte> key,
                    std::span<std::uint64_t> out) const noexcept {
    hashes_.addresses_of(key, config_.n_slots, out);
  }

  // Byte offset of a slot within the memory block.
  [[nodiscard]] std::uint64_t slot_offset(std::uint64_t index) const noexcept {
    return index * config_.slot_bytes();
  }

  // Shard owning a slot under an n_shards-way range partition (see the free
  // functions above).
  [[nodiscard]] std::uint32_t shard_of(std::uint64_t index,
                                       std::uint32_t n_shards) const noexcept {
    return shard_of_slot(index, config_.n_slots, n_shards);
  }

  // b-bit key checksum as stored in slots.
  [[nodiscard]] std::uint32_t key_checksum(
      std::span<const std::byte> key) const noexcept {
    return hashes_.checksum_of(key, config_.checksum_bits);
  }

  // The exact bytes a report carries for this key+value: checksum ‖ value,
  // checksum little-endian in ceil(b/8) bytes. Appends to `out`.
  void encode_slot_payload(std::span<const std::byte> key,
                           std::span<const std::byte> value,
                           std::vector<std::byte>& out) const;

  // ---- local write path (simulation) -------------------------------------

  // Writes all N copies (WriteMode::kAllSlots semantics).
  void write(std::span<const std::byte> key, std::span<const std::byte> value);

  // Writes only copy `n` (WriteMode::kStochastic semantics: the caller picks
  // n, typically uniformly at random, as the switch RNG does).
  void write_one(std::span<const std::byte> key,
                 std::span<const std::byte> value, std::uint32_t n);

  // ---- read path ----------------------------------------------------------

  // Decodes the N candidate slots for a key, in copy order.
  //
  // The returned views alias store memory; they are invalidated by writes
  // (see SlotView). Query-path read discipline — how the system guarantees
  // no torn [checksum ‖ value] pair is ever *consumed*:
  //
  //   1. Quiesced region. Reads target memory no writer (RNIC or local
  //      apply path) is mutating. This is the epoch scheme's invariant:
  //      RotatingCollector flips switches to the standby region, waits out
  //      a grace window sized to the maximum report time-of-flight, then
  //      seals the old region; query_standby() and sealed-epoch reads only
  //      ever decode quiesced bytes. Torn pairs cannot be observed at all.
  //
  //   2. Live reads under churn. Queries against the *active* region (the
  //      non-rotating deployments) may race reports. A torn pair then looks
  //      like a slot whose checksum does not match the queried key — the
  //      same signature as a hash-colliding foreign key — and the b-bit
  //      checksum filter of QueryEngine::resolve discards it, at the cost
  //      of one lost vote (bounded by the redundancy N). What the filter
  //      can NOT catch is a torn pair whose checksum half matches the
  //      queried key but whose value half is foreign; callers who cannot
  //      tolerate that 2^-b event must use discipline 1.
  //
  //   Rotation metadata itself (which region is active, epoch ids) is
  //   published through epoch_rotation.hpp's SeqCount seqlock; readers
  //   retry around flips instead of locking the data plane.
  //
  // dartcheck's prop_backend suite drives discipline 1 with a live writer
  // thread and asserts no torn pair is ever returned.
  [[nodiscard]] std::vector<SlotView> read_slots(
      std::span<const std::byte> key) const;

  // Decodes one slot by index.
  [[nodiscard]] SlotView read_slot(std::uint64_t index) const;

  // ---- raw memory ---------------------------------------------------------

  [[nodiscard]] std::span<std::byte> memory() noexcept {
    return backing_.memory();
  }
  [[nodiscard]] std::span<const std::byte> memory() const noexcept {
    return backing_.memory();
  }

  [[nodiscard]] std::uint64_t writes_performed() const noexcept {
    return writes_.load(std::memory_order_relaxed);
  }

  void clear();

 private:
  void write_raw(std::uint64_t index, std::uint32_t checksum,
                 std::span<const std::byte> value);

  DartConfig config_;
  HashFamily hashes_;
  RegionBacking backing_;
  // Relaxed: local writers may be sharded across threads (disjoint slot
  // ranges); the write tally must not impose ordering between them.
  std::atomic<std::uint64_t> writes_{0};
};

}  // namespace dart::core
