#include "core/atomics_store.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/random.hpp"

namespace dart::core {

// ---------------------------------------------------------------------------
// CasInsertStore
// ---------------------------------------------------------------------------

CasInsertStore::CasInsertStore(DartStore& store) : store_(&store) {
  assert(store.config().n_addresses == 2);
  assert(store.config().slot_bytes() >= 8);
}

bool CasInsertStore::slot_empty(std::uint64_t slot_index) const noexcept {
  std::uint64_t word;
  std::memcpy(&word,
              store_->memory().data() + store_->slot_offset(slot_index), 8);
  return word == 0;
}

void CasInsertStore::write(std::span<const std::byte> key,
                           std::span<const std::byte> value) {
  store_->write_one(key, value, 0);  // plain RDMA WRITE

  cas_attempts_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t idx = store_->slot_index(key, 1);
  // Compare(word == 0)-and-claim under the slot's stripe lock: the atomic
  // unit a real RDMA CAS gives us. The full-slot payload write rides inside
  // the claim so a reader never sees a torn half-claimed slot.
  auto& lock = claim_locks_[idx % kClaimStripes];
  while (lock.test_and_set(std::memory_order_acquire)) {
  }
  const bool claimed = slot_empty(idx);
  if (claimed) store_->write_one(key, value, 1);
  lock.clear(std::memory_order_release);
  if (claimed) cas_successes_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// FlowCounterArray
// ---------------------------------------------------------------------------

FlowCounterArray::FlowCounterArray(std::uint64_t n_counters, std::uint64_t seed)
    : cells_(n_counters, 0), seed_(seed) {
  // A zero-cell array is a config error, not a 1-cell array: silently
  // clamping to 1 used to alias EVERY key onto one counter, turning a typo
  // into a subtly-wrong aggregate instead of a loud failure.
  assert(n_counters > 0 && "FlowCounterArray requires n_counters >= 1");
}

std::uint64_t FlowCounterArray::index_of(
    std::span<const std::byte> key) const noexcept {
  return xxhash64(key, seed_) % cells_.size();
}

std::uint64_t FlowCounterArray::fetch_add(std::span<const std::byte> key,
                                          std::uint64_t delta) {
  // One atomic RMW, like the RNIC (which serializes atomics against target
  // memory). The previous read/add/store triple lost updates under the
  // sharded ingest pipeline's concurrent feeders. vector<uint64_t> cells
  // are 8-byte aligned, so atomic_ref is valid while cells() stays a plain
  // span an MR registration can cover.
  return std::atomic_ref<std::uint64_t>(cells_[index_of(key)])
      .fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t FlowCounterArray::read(
    std::span<const std::byte> key) const noexcept {
  return std::atomic_ref<std::uint64_t>(
             const_cast<std::uint64_t&>(cells_[index_of(key)]))
      .load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// CountMinSketch
// ---------------------------------------------------------------------------

CountMinSketch::CountMinSketch(std::uint32_t rows, std::uint64_t cols,
                               std::uint64_t seed)
    : rows_(rows),
      cols_(cols),
      cells_(static_cast<std::size_t>(rows_) * cols_, 0) {
  // Same audit as FlowCounterArray: a 0-row or 0-column sketch was silently
  // clamped to 1, degrading every estimate while looking configured.
  assert(rows > 0 && cols > 0 && "CountMinSketch requires rows, cols >= 1");
  SplitMix64 sm(seed);
  row_seeds_.reserve(rows_);
  for (std::uint32_t r = 0; r < rows_; ++r) row_seeds_.push_back(sm.next());
}

void CountMinSketch::add(std::span<const std::byte> key, std::uint64_t delta) {
  // FETCH_ADD semantics for real: per-cell atomic adds (see the
  // FlowCounterArray::fetch_add note), so concurrent feeders sum instead of
  // racing, while cells() remains an MR-registrable plain span.
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const std::uint64_t col = xxhash64(key, row_seeds_[r]) % cols_;
    std::atomic_ref<std::uint64_t>(
        cells_[static_cast<std::size_t>(r) * cols_ + col])
        .fetch_add(delta, std::memory_order_relaxed);
  }
}

std::uint64_t CountMinSketch::estimate(
    std::span<const std::byte> key) const noexcept {
  std::uint64_t best = UINT64_MAX;
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const std::uint64_t col = xxhash64(key, row_seeds_[r]) % cols_;
    best = std::min(
        best, std::atomic_ref<std::uint64_t>(
                  const_cast<std::uint64_t&>(
                      cells_[static_cast<std::size_t>(r) * cols_ + col]))
                  .load(std::memory_order_relaxed));
  }
  return best == UINT64_MAX ? 0 : best;
}

std::vector<std::uint64_t> CountMinSketch::cell_indices(
    std::span<const std::byte> key) const {
  std::vector<std::uint64_t> out;
  out.reserve(rows_);
  for (std::uint32_t r = 0; r < rows_; ++r) {
    const std::uint64_t col = xxhash64(key, row_seeds_[r]) % cols_;
    out.push_back(static_cast<std::uint64_t>(r) * cols_ + col);
  }
  return out;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  // Geometry must match or the cell loop reads out of bounds. An assert
  // vanishes under NDEBUG — release builds used to walk off the end of a
  // smaller `other` — so the check must fail loudly in every build mode.
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument(
        "CountMinSketch::merge: geometry mismatch (" + std::to_string(rows_) +
        "x" + std::to_string(cols_) + " vs " + std::to_string(other.rows_) +
        "x" + std::to_string(other.cols_) + ")");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    std::atomic_ref<std::uint64_t>(cells_[i])
        .fetch_add(std::atomic_ref<std::uint64_t>(
                       const_cast<std::uint64_t&>(other.cells_[i]))
                       .load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
}

}  // namespace dart::core
