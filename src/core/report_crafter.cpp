#include "core/report_crafter.hpp"

#include <cassert>

#include "rdma/multiwrite.hpp"
#include "rdma/roce.hpp"

namespace dart::core {

std::vector<std::byte> ReportCrafter::craft_write(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::span<const std::byte> key, std::span<const std::byte> value,
    std::uint32_t n, std::uint32_t psn) const {
  assert(value.size() == config_.value_bytes);

  // Slot payload: checksum ‖ value — must match DartStore::write_raw.
  std::vector<std::byte> payload;
  payload.reserve(config_.slot_bytes());
  const std::uint32_t csum = hashes_.checksum_of(key, config_.checksum_bits);
  for (std::uint32_t i = 0; i < config_.checksum_bytes(); ++i) {
    payload.push_back(static_cast<std::byte>((csum >> (8 * i)) & 0xFF));
  }
  payload.insert(payload.end(), value.begin(), value.end());

  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kRcRdmaWriteOnly;
  bth.dest_qp = dst.qpn;
  bth.psn = psn;

  rdma::Reth reth;
  reth.vaddr = slot_vaddr(dst, key, n);
  reth.rkey = dst.rkey;
  reth.dma_length = static_cast<std::uint32_t>(payload.size());

  std::vector<std::byte> roce;
  BufWriter w(roce);
  rdma::serialize_write(w, bth, reth, payload);
  return wrap_frame(dst, src, roce);
}

std::vector<std::byte> ReportCrafter::craft_fetch_add(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::uint64_t vaddr, std::uint64_t addend, std::uint32_t psn) const {
  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kRcFetchAdd;
  bth.dest_qp = dst.qpn;
  bth.psn = psn;

  rdma::AtomicEth aeth;
  aeth.vaddr = vaddr;
  aeth.rkey = dst.rkey;
  aeth.swap_add = addend;

  std::vector<std::byte> roce;
  BufWriter w(roce);
  rdma::serialize_atomic(w, bth, aeth);
  return wrap_frame(dst, src, roce);
}

std::vector<std::byte> ReportCrafter::craft_compare_swap(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::uint64_t vaddr, std::uint64_t compare, std::uint64_t swap,
    std::uint32_t psn) const {
  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kRcCompareSwap;
  bth.dest_qp = dst.qpn;
  bth.psn = psn;

  rdma::AtomicEth aeth;
  aeth.vaddr = vaddr;
  aeth.rkey = dst.rkey;
  aeth.swap_add = swap;
  aeth.compare = compare;

  std::vector<std::byte> roce;
  BufWriter w(roce);
  rdma::serialize_atomic(w, bth, aeth);
  return wrap_frame(dst, src, roce);
}

std::vector<std::byte> ReportCrafter::craft_multiwrite(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::span<const std::byte> key, std::span<const std::byte> value,
    std::uint32_t psn) const {
  assert(value.size() == config_.value_bytes);

  std::vector<std::byte> payload;
  payload.reserve(config_.slot_bytes());
  const std::uint32_t csum = hashes_.checksum_of(key, config_.checksum_bits);
  for (std::uint32_t i = 0; i < config_.checksum_bytes(); ++i) {
    payload.push_back(static_cast<std::byte>((csum >> (8 * i)) & 0xFF));
  }
  payload.insert(payload.end(), value.begin(), value.end());

  std::vector<std::uint64_t> vaddrs;
  vaddrs.reserve(config_.n_addresses);
  for (std::uint32_t n = 0; n < config_.n_addresses; ++n) {
    vaddrs.push_back(slot_vaddr(dst, key, n));
  }
  const auto dta = rdma::encode_multiwrite(dst.rkey, psn, vaddrs, payload);

  net::UdpFrameSpec spec;
  spec.src_mac = src.mac;
  spec.dst_mac = dst.mac;
  spec.src_ip = src.ip;
  spec.dst_ip = dst.ip;
  spec.src_port = src.udp_src_port;
  spec.dst_port = rdma::kDtaUdpPort;
  return net::build_udp_frame(spec, dta);
}

std::vector<std::byte> ReportCrafter::wrap_frame(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::span<const std::byte> roce_payload) const {
  net::UdpFrameSpec spec;
  spec.src_mac = src.mac;
  spec.dst_mac = dst.mac;
  spec.src_ip = src.ip;
  spec.dst_ip = dst.ip;
  spec.src_port = src.udp_src_port;
  spec.dst_port = net::kRoceV2UdpPort;

  auto frame = net::build_udp_frame(spec, roce_payload);
  const bool ok = rdma::finalize_frame_icrc(frame);
  assert(ok);
  (void)ok;
  return frame;
}

}  // namespace dart::core
