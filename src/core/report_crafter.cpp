#include "core/report_crafter.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

#include "rdma/multiwrite.hpp"
#include "rdma/roce.hpp"

namespace dart::core {

namespace {

// Absolute byte offsets of the variant fields inside a crafted frame. The
// layouts are fixed by the wire formats (net/headers, rdma/roce,
// rdma/multiwrite); frame-equality tests pin them against the serializers.
constexpr std::size_t kRoceOff =
    net::kEthernetHeaderLen + net::kIpv4HeaderLen + net::kUdpHeaderLen;
constexpr std::size_t kPsnOff = kRoceOff + 9;  // BTH bytes 9..11, 24-bit BE
constexpr std::size_t kRethVaddrOff = kRoceOff + rdma::kBthLen;
constexpr std::size_t kWritePayloadOff = kRethVaddrOff + rdma::kRethLen;
constexpr std::size_t kAtomicVaddrOff = kRoceOff + rdma::kBthLen;
constexpr std::size_t kAtomicSwapOff = kAtomicVaddrOff + 8 + 4;
constexpr std::size_t kAtomicCompareOff = kAtomicSwapOff + 8;
constexpr std::size_t kDtaPsnOff = kRoceOff + 8;  // 32-bit BE
constexpr std::size_t kDtaDataOff = kRoceOff + rdma::kDtaHeaderLen;

void put_be24(std::byte* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::byte>((v >> 16) & 0xFF);
  p[1] = static_cast<std::byte>((v >> 8) & 0xFF);
  p[2] = static_cast<std::byte>(v & 0xFF);
}

void put_be32(std::byte* p, std::uint32_t v) noexcept {
  const std::uint32_t be = host_to_net32(v);
  std::memcpy(p, &be, sizeof(be));
}

void put_be64(std::byte* p, std::uint64_t v) noexcept {
  const std::uint64_t be = host_to_net64(v);
  std::memcpy(p, &be, sizeof(be));
}

}  // namespace

std::vector<std::byte> ReportCrafter::craft_write(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::span<const std::byte> key, std::span<const std::byte> value,
    std::uint32_t n, std::uint32_t psn) const {
  assert(value.size() == config_.value_bytes);

  // Slot payload: checksum ‖ value — must match DartStore::write_raw.
  std::vector<std::byte> payload;
  payload.reserve(config_.slot_bytes());
  const std::uint32_t csum = hashes_.checksum_of(key, config_.checksum_bits);
  for (std::uint32_t i = 0; i < config_.checksum_bytes(); ++i) {
    payload.push_back(static_cast<std::byte>((csum >> (8 * i)) & 0xFF));
  }
  payload.insert(payload.end(), value.begin(), value.end());

  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kRcRdmaWriteOnly;
  bth.dest_qp = dst.qpn;
  bth.psn = psn;

  rdma::Reth reth;
  reth.vaddr = slot_vaddr(dst, key, n);
  reth.rkey = dst.rkey;
  reth.dma_length = static_cast<std::uint32_t>(payload.size());

  std::vector<std::byte> roce;
  BufWriter w(roce);
  rdma::serialize_write(w, bth, reth, payload);
  return wrap_frame(dst, src, roce);
}

std::vector<std::byte> ReportCrafter::craft_fetch_add(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::uint64_t vaddr, std::uint64_t addend, std::uint32_t psn) const {
  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kRcFetchAdd;
  bth.dest_qp = dst.qpn;
  bth.psn = psn;

  rdma::AtomicEth aeth;
  aeth.vaddr = vaddr;
  aeth.rkey = dst.rkey;
  aeth.swap_add = addend;

  std::vector<std::byte> roce;
  BufWriter w(roce);
  rdma::serialize_atomic(w, bth, aeth);
  return wrap_frame(dst, src, roce);
}

std::vector<std::byte> ReportCrafter::craft_compare_swap(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::uint64_t vaddr, std::uint64_t compare, std::uint64_t swap,
    std::uint32_t psn) const {
  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kRcCompareSwap;
  bth.dest_qp = dst.qpn;
  bth.psn = psn;

  rdma::AtomicEth aeth;
  aeth.vaddr = vaddr;
  aeth.rkey = dst.rkey;
  aeth.swap_add = swap;
  aeth.compare = compare;

  std::vector<std::byte> roce;
  BufWriter w(roce);
  rdma::serialize_atomic(w, bth, aeth);
  return wrap_frame(dst, src, roce);
}

std::vector<std::byte> ReportCrafter::craft_multiwrite(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::span<const std::byte> key, std::span<const std::byte> value,
    std::uint32_t psn) const {
  assert(value.size() == config_.value_bytes);

  std::vector<std::byte> payload;
  payload.reserve(config_.slot_bytes());
  const std::uint32_t csum = hashes_.checksum_of(key, config_.checksum_bits);
  for (std::uint32_t i = 0; i < config_.checksum_bytes(); ++i) {
    payload.push_back(static_cast<std::byte>((csum >> (8 * i)) & 0xFF));
  }
  payload.insert(payload.end(), value.begin(), value.end());

  // All N coded addresses in one batched hash pass.
  std::vector<std::uint64_t> vaddrs(config_.n_addresses);
  hashes_.addresses_of(key, dst.n_slots, vaddrs);
  for (auto& a : vaddrs) a = dst.slot_vaddr(a);
  const auto dta = rdma::encode_multiwrite(dst.rkey, psn, vaddrs, payload);

  net::UdpFrameSpec spec;
  spec.src_mac = src.mac;
  spec.dst_mac = dst.mac;
  spec.src_ip = src.ip;
  spec.dst_ip = dst.ip;
  spec.src_port = src.udp_src_port;
  spec.dst_port = rdma::kDtaUdpPort;
  return net::build_udp_frame(spec, dta);
}

std::vector<std::byte> ReportCrafter::craft_raw_write(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::uint64_t vaddr, std::span<const std::byte> payload,
    std::uint32_t psn) const {
  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kRcRdmaWriteOnly;
  bth.dest_qp = dst.qpn;
  bth.psn = psn;

  rdma::Reth reth;
  reth.vaddr = vaddr;
  reth.rkey = dst.rkey;
  reth.dma_length = static_cast<std::uint32_t>(payload.size());

  std::vector<std::byte> roce;
  BufWriter w(roce);
  rdma::serialize_write(w, bth, reth, payload);
  return wrap_frame(dst, src, roce);
}

std::vector<std::byte> ReportCrafter::craft_append(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    const AppendRingConfig& ring, std::uint64_t seq,
    std::span<const std::byte> value, std::uint32_t psn) const {
  assert(seq != 0);
  assert(value.size() == ring.value_bytes);
  assert(dst.slot_bytes == ring.entry_bytes());
  std::vector<std::byte> payload;
  payload.reserve(ring.entry_bytes());
  AppendRing::encode_entry(seq, value, payload);
  return craft_raw_write(dst, src, dst.slot_vaddr(ring.slot_of(seq)), payload,
                         psn);
}

std::vector<std::byte> ReportCrafter::craft_key_increment(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    const CounterArrayConfig& counters, std::span<const std::byte> key,
    std::uint64_t delta, std::uint32_t psn) const {
  assert(dst.slot_bytes == 8);
  return craft_fetch_add(dst, src, dst.slot_vaddr(counters.index_of(key)),
                         delta, psn);
}

std::vector<std::byte> ReportCrafter::craft_sketch_increment(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    const SketchBackendConfig& sketch, std::span<const std::byte> key,
    std::uint32_t row, std::uint64_t delta, std::uint32_t psn) const {
  assert(dst.backend == StoreBackendKind::kSketch);
  assert(dst.slot_bytes == 8);
  assert(row < sketch.rows);
  return craft_fetch_add(dst, src, dst.slot_vaddr(sketch.cell_of(key, row)),
                         delta, psn);
}

std::vector<std::byte> ReportCrafter::craft_postcard(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    const PostcardConfig& postcards, std::span<const std::byte> flow_key,
    std::uint32_t hop, std::span<const std::byte> value,
    std::uint32_t psn) const {
  assert(hop < postcards.max_hops);
  assert(value.size() == postcards.value_bytes);
  assert(dst.slot_bytes == postcards.slot_bytes());
  std::vector<std::byte> payload;
  payload.reserve(postcards.slot_bytes());
  PostcardStore::encode_hop_payload(postcards, flow_key, value, payload);
  const std::uint64_t index =
      postcards.slot_index(postcards.group_of(flow_key), hop);
  return craft_raw_write(dst, src, dst.slot_vaddr(index), payload, psn);
}

FrameTemplate ReportCrafter::make_write_template(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src) const {
  FrameTemplate t;
  const std::array<std::byte, 1> dummy_key{};
  const std::vector<std::byte> zero_value(config_.value_bytes);
  t.prototype_ = craft_write(dst, src, dummy_key, zero_value, 0, 0);
  t.crc_prefix_ = rdma::icrc_prefix_state(t.prototype_);
  t.dst_ = dst;
  t.kind_ = FrameTemplate::Kind::kWrite;
  return t;
}

FrameTemplate ReportCrafter::make_atomic_template(const RemoteStoreInfo& dst,
                                                  const ReporterEndpoint& src,
                                                  rdma::Opcode op) const {
  FrameTemplate t;
  if (op == rdma::Opcode::kRcFetchAdd) {
    t.prototype_ = craft_fetch_add(dst, src, 0, 0, 0);
    t.kind_ = FrameTemplate::Kind::kFetchAdd;
  } else if (op == rdma::Opcode::kRcCompareSwap) {
    t.prototype_ = craft_compare_swap(dst, src, 0, 0, 0, 0);
    t.kind_ = FrameTemplate::Kind::kCompareSwap;
  } else {
    return t;
  }
  t.crc_prefix_ = rdma::icrc_prefix_state(t.prototype_);
  t.dst_ = dst;
  return t;
}

FrameTemplate ReportCrafter::make_multiwrite_template(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src) const {
  FrameTemplate t;
  const std::array<std::byte, 1> dummy_key{};
  const std::vector<std::byte> zero_value(config_.value_bytes);
  t.prototype_ = craft_multiwrite(dst, src, dummy_key, zero_value, 0);
  // The DTA trailer CRC covers the whole DTA payload, unmasked; the cacheable
  // prefix is magic/version/count/rkey — the 8 bytes before the PSN, which by
  // construction ends at the same absolute offset as the RoCE variant region.
  t.crc_prefix_.update(
      std::span<const std::byte>(t.prototype_.data() + kRoceOff, 8));
  t.dst_ = dst;
  t.kind_ = FrameTemplate::Kind::kMultiwrite;
  return t;
}

FrameTemplate ReportCrafter::make_append_template(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    const AppendRingConfig& ring) const {
  FrameTemplate t;
  const std::vector<std::byte> zero_value(ring.value_bytes);
  t.prototype_ = craft_append(dst, src, ring, /*seq=*/1, zero_value, 0);
  t.crc_prefix_ = rdma::icrc_prefix_state(t.prototype_);
  t.dst_ = dst;
  t.kind_ = FrameTemplate::Kind::kAppend;
  return t;
}

FrameTemplate ReportCrafter::make_postcard_template(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    const PostcardConfig& postcards) const {
  FrameTemplate t;
  const std::array<std::byte, 1> dummy_key{};
  const std::vector<std::byte> zero_value(postcards.value_bytes);
  t.prototype_ = craft_postcard(dst, src, postcards, dummy_key, 0, zero_value, 0);
  t.crc_prefix_ = rdma::icrc_prefix_state(t.prototype_);
  t.dst_ = dst;
  t.kind_ = FrameTemplate::Kind::kPostcard;
  return t;
}

std::size_t ReportCrafter::patch_write_frame(const FrameTemplate& tpl,
                                             std::span<const std::byte> key,
                                             std::span<const std::byte> value,
                                             std::uint64_t vaddr,
                                             std::uint32_t psn,
                                             std::span<std::byte> out) const {
  assert(value.size() == config_.value_bytes);
  const std::size_t len = tpl.prototype_.size();
  std::memcpy(out.data(), tpl.prototype_.data(), len);
  put_be24(out.data() + kPsnOff, psn & 0xFF'FFFFu);
  put_be64(out.data() + kRethVaddrOff, vaddr);
  std::byte* p = out.data() + kWritePayloadOff;
  const std::uint32_t csum = hashes_.checksum_of(key, config_.checksum_bits);
  for (std::uint32_t i = 0; i < config_.checksum_bytes(); ++i) {
    *p++ = static_cast<std::byte>((csum >> (8 * i)) & 0xFF);
  }
  std::memcpy(p, value.data(), value.size());
  const std::size_t icrc_off = len - rdma::kIcrcLen;
  Crc32 crc = tpl.crc_prefix_;
  crc.update(std::span<const std::byte>(
      out.data() + rdma::kIcrcVariantOffset,
      icrc_off - rdma::kIcrcVariantOffset));
  const std::uint32_t icrc = crc.value();
  std::memcpy(out.data() + icrc_off, &icrc, rdma::kIcrcLen);
  return len;
}

std::size_t ReportCrafter::craft_write_into(const FrameTemplate& tpl,
                                            std::span<const std::byte> key,
                                            std::span<const std::byte> value,
                                            std::uint32_t n, std::uint32_t psn,
                                            std::span<std::byte> out) const {
  if (tpl.kind_ != FrameTemplate::Kind::kWrite ||
      out.size() < tpl.prototype_.size()) {
    return 0;
  }
  return patch_write_frame(tpl, key, value, slot_vaddr(tpl.dst_, key, n), psn,
                           out);
}

std::size_t ReportCrafter::craft_write_into_at(const FrameTemplate& tpl,
                                               std::span<const std::byte> key,
                                               std::span<const std::byte> value,
                                               std::uint64_t slot_addr,
                                               std::uint32_t psn,
                                               std::span<std::byte> out) const {
  if (tpl.kind_ != FrameTemplate::Kind::kWrite ||
      out.size() < tpl.prototype_.size()) {
    return 0;
  }
  return patch_write_frame(tpl, key, value, tpl.dst_.slot_vaddr(slot_addr),
                           psn, out);
}

std::size_t ReportCrafter::craft_write_into_n(const FrameTemplate& tpl,
                                              std::span<const WriteOp> ops,
                                              std::span<std::byte> out) const {
  if (tpl.kind_ != FrameTemplate::Kind::kWrite) return 0;
  const std::size_t len = tpl.prototype_.size();
  if (out.size() < len * ops.size()) return 0;

  constexpr std::size_t kLanes = 64;
  std::array<std::uint64_t, kLanes> key_lanes;
  std::array<std::uint32_t, kLanes> ns;
  std::array<std::uint64_t, kLanes> addrs;
  std::size_t done = 0;
  while (done < ops.size()) {
    const std::size_t m = std::min(kLanes, ops.size() - done);
    // Batch-hash the chunk's slot addresses; 8-byte keys (the telemetry key
    // shape) take the interleaved AVX2 kernel, anything else hashes per op.
    bool keys8 = true;
    for (std::size_t i = 0; i < m; ++i) {
      if (ops[done + i].key.size() != 8) {
        keys8 = false;
        break;
      }
    }
    if (keys8) {
      for (std::size_t i = 0; i < m; ++i) {
        std::memcpy(&key_lanes[i], ops[done + i].key.data(), 8);
        ns[i] = ops[done + i].n;
      }
      hashes_.address_of_batch(
          reinterpret_cast<const std::byte*>(key_lanes.data()), 8, 8,
          std::span<const std::uint32_t>(ns.data(), m), tpl.dst_.n_slots,
          addrs.data());
    } else {
      for (std::size_t i = 0; i < m; ++i) {
        addrs[i] = hashes_.address_of(ops[done + i].key, ops[done + i].n,
                                      tpl.dst_.n_slots);
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      const WriteOp& op = ops[done + i];
      patch_write_frame(tpl, op.key, op.value, tpl.dst_.slot_vaddr(addrs[i]),
                        op.psn, out.subspan((done + i) * len, len));
    }
    done += m;
  }
  return ops.size();
}

std::size_t ReportCrafter::craft_fetch_add_into(const FrameTemplate& tpl,
                                                std::uint64_t vaddr,
                                                std::uint64_t addend,
                                                std::uint32_t psn,
                                                std::span<std::byte> out) const {
  if (tpl.kind_ != FrameTemplate::Kind::kFetchAdd ||
      out.size() < tpl.prototype_.size()) {
    return 0;
  }
  const std::size_t len = tpl.prototype_.size();
  std::memcpy(out.data(), tpl.prototype_.data(), len);
  put_be24(out.data() + kPsnOff, psn & 0xFF'FFFFu);
  put_be64(out.data() + kAtomicVaddrOff, vaddr);
  put_be64(out.data() + kAtomicSwapOff, addend);
  const std::size_t icrc_off = len - rdma::kIcrcLen;
  Crc32 crc = tpl.crc_prefix_;
  crc.update(std::span<const std::byte>(
      out.data() + rdma::kIcrcVariantOffset,
      icrc_off - rdma::kIcrcVariantOffset));
  const std::uint32_t icrc = crc.value();
  std::memcpy(out.data() + icrc_off, &icrc, rdma::kIcrcLen);
  return len;
}

std::size_t ReportCrafter::craft_compare_swap_into(
    const FrameTemplate& tpl, std::uint64_t vaddr, std::uint64_t compare,
    std::uint64_t swap, std::uint32_t psn, std::span<std::byte> out) const {
  if (tpl.kind_ != FrameTemplate::Kind::kCompareSwap ||
      out.size() < tpl.prototype_.size()) {
    return 0;
  }
  const std::size_t len = tpl.prototype_.size();
  std::memcpy(out.data(), tpl.prototype_.data(), len);
  put_be24(out.data() + kPsnOff, psn & 0xFF'FFFFu);
  put_be64(out.data() + kAtomicVaddrOff, vaddr);
  put_be64(out.data() + kAtomicSwapOff, swap);
  put_be64(out.data() + kAtomicCompareOff, compare);
  const std::size_t icrc_off = len - rdma::kIcrcLen;
  Crc32 crc = tpl.crc_prefix_;
  crc.update(std::span<const std::byte>(
      out.data() + rdma::kIcrcVariantOffset,
      icrc_off - rdma::kIcrcVariantOffset));
  const std::uint32_t icrc = crc.value();
  std::memcpy(out.data() + icrc_off, &icrc, rdma::kIcrcLen);
  return len;
}

std::size_t ReportCrafter::craft_multiwrite_into(
    const FrameTemplate& tpl, std::span<const std::byte> key,
    std::span<const std::byte> value, std::uint32_t psn,
    std::span<std::byte> out) const {
  if (tpl.kind_ != FrameTemplate::Kind::kMultiwrite ||
      out.size() < tpl.prototype_.size()) {
    return 0;
  }
  assert(value.size() == config_.value_bytes);
  const std::size_t len = tpl.prototype_.size();
  std::memcpy(out.data(), tpl.prototype_.data(), len);
  put_be32(out.data() + kDtaPsnOff, psn);
  std::byte* p = out.data() + kDtaDataOff;
  const std::uint32_t csum = hashes_.checksum_of(key, config_.checksum_bits);
  for (std::uint32_t i = 0; i < config_.checksum_bytes(); ++i) {
    *p++ = static_cast<std::byte>((csum >> (8 * i)) & 0xFF);
  }
  std::memcpy(p, value.data(), value.size());
  p += value.size();
  std::array<std::uint64_t, 16> addrs;
  if (config_.n_addresses <= addrs.size()) {
    hashes_.addresses_of(key, tpl.dst_.n_slots,
                         std::span(addrs.data(), config_.n_addresses));
    for (std::uint32_t n = 0; n < config_.n_addresses; ++n) {
      put_be64(p + 8 * n, tpl.dst_.slot_vaddr(addrs[n]));
    }
  } else {
    for (std::uint32_t n = 0; n < config_.n_addresses; ++n) {
      put_be64(p + 8 * n, slot_vaddr(tpl.dst_, key, n));
    }
  }
  const std::size_t crc_off = len - rdma::kDtaCrcLen;
  Crc32 crc = tpl.crc_prefix_;
  crc.update(std::span<const std::byte>(out.data() + kDtaPsnOff,
                                        crc_off - kDtaPsnOff));
  const std::uint32_t v = crc.value();
  out[crc_off] = static_cast<std::byte>(v & 0xFF);
  out[crc_off + 1] = static_cast<std::byte>((v >> 8) & 0xFF);
  out[crc_off + 2] = static_cast<std::byte>((v >> 16) & 0xFF);
  out[crc_off + 3] = static_cast<std::byte>((v >> 24) & 0xFF);
  return len;
}

std::size_t ReportCrafter::craft_append_into(const FrameTemplate& tpl,
                                             const AppendRingConfig& ring,
                                             std::uint64_t seq,
                                             std::span<const std::byte> value,
                                             std::uint32_t psn,
                                             std::span<std::byte> out) const {
  if (tpl.kind_ != FrameTemplate::Kind::kAppend ||
      out.size() < tpl.prototype_.size()) {
    return 0;
  }
  assert(seq != 0);
  assert(value.size() == ring.value_bytes);
  const std::size_t len = tpl.prototype_.size();
  std::memcpy(out.data(), tpl.prototype_.data(), len);
  put_be24(out.data() + kPsnOff, psn & 0xFF'FFFFu);
  put_be64(out.data() + kRethVaddrOff,
           tpl.dst_.slot_vaddr(ring.slot_of(seq)));
  std::byte* p = out.data() + kWritePayloadOff;
  for (std::uint32_t i = 0; i < 8; ++i) {
    *p++ = static_cast<std::byte>((seq >> (8 * i)) & 0xFF);
  }
  std::memcpy(p, value.data(), value.size());
  const std::size_t icrc_off = len - rdma::kIcrcLen;
  Crc32 crc = tpl.crc_prefix_;
  crc.update(std::span<const std::byte>(
      out.data() + rdma::kIcrcVariantOffset,
      icrc_off - rdma::kIcrcVariantOffset));
  const std::uint32_t icrc = crc.value();
  std::memcpy(out.data() + icrc_off, &icrc, rdma::kIcrcLen);
  return len;
}

std::size_t ReportCrafter::craft_key_increment_into(
    const FrameTemplate& tpl, const CounterArrayConfig& counters,
    std::span<const std::byte> key, std::uint64_t delta, std::uint32_t psn,
    std::span<std::byte> out) const {
  return craft_fetch_add_into(
      tpl, tpl.dst_.slot_vaddr(counters.index_of(key)), delta, psn, out);
}

std::size_t ReportCrafter::craft_sketch_increment_into(
    const FrameTemplate& tpl, const SketchBackendConfig& sketch,
    std::span<const std::byte> key, std::uint32_t row, std::uint64_t delta,
    std::uint32_t psn, std::span<std::byte> out) const {
  assert(row < sketch.rows);
  return craft_fetch_add_into(
      tpl, tpl.dst_.slot_vaddr(sketch.cell_of(key, row)), delta, psn, out);
}

std::size_t ReportCrafter::craft_postcard_into(
    const FrameTemplate& tpl, const PostcardConfig& postcards,
    std::span<const std::byte> flow_key, std::uint32_t hop,
    std::span<const std::byte> value, std::uint32_t psn,
    std::span<std::byte> out) const {
  if (tpl.kind_ != FrameTemplate::Kind::kPostcard ||
      out.size() < tpl.prototype_.size()) {
    return 0;
  }
  assert(hop < postcards.max_hops);
  assert(value.size() == postcards.value_bytes);
  const std::size_t len = tpl.prototype_.size();
  std::memcpy(out.data(), tpl.prototype_.data(), len);
  put_be24(out.data() + kPsnOff, psn & 0xFF'FFFFu);
  const std::uint64_t index =
      postcards.slot_index(postcards.group_of(flow_key), hop);
  put_be64(out.data() + kRethVaddrOff, tpl.dst_.slot_vaddr(index));
  std::byte* p = out.data() + kWritePayloadOff;
  const std::uint32_t csum = postcards.checksum_of(flow_key);
  for (std::uint32_t i = 0; i < postcards.checksum_bytes(); ++i) {
    *p++ = static_cast<std::byte>((csum >> (8 * i)) & 0xFF);
  }
  std::memcpy(p, value.data(), value.size());
  const std::size_t icrc_off = len - rdma::kIcrcLen;
  Crc32 crc = tpl.crc_prefix_;
  crc.update(std::span<const std::byte>(
      out.data() + rdma::kIcrcVariantOffset,
      icrc_off - rdma::kIcrcVariantOffset));
  const std::uint32_t icrc = crc.value();
  std::memcpy(out.data() + icrc_off, &icrc, rdma::kIcrcLen);
  return len;
}

std::vector<std::byte> ReportCrafter::wrap_frame(
    const RemoteStoreInfo& dst, const ReporterEndpoint& src,
    std::span<const std::byte> roce_payload) const {
  net::UdpFrameSpec spec;
  spec.src_mac = src.mac;
  spec.dst_mac = dst.mac;
  spec.src_ip = src.ip;
  spec.dst_ip = dst.ip;
  spec.src_port = src.udp_src_port;
  spec.dst_port = net::kRoceV2UdpPort;

  auto frame = net::build_udp_frame(spec, roce_payload);
  const bool ok = rdma::finalize_frame_icrc(frame);
  assert(ok);
  (void)ok;
  return frame;
}

}  // namespace dart::core
