#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>

namespace dart::core {

double OccupancyEstimator::sample_occupancy(std::uint32_t samples) {
  if (samples == 0) samples = 1;
  const auto& cfg = store_->config();
  std::uint32_t occupied = 0;
  for (std::uint32_t i = 0; i < samples; ++i) {
    const std::uint64_t idx = rng_.below(cfg.n_slots);
    const auto base = store_->slot_offset(idx);
    const auto slot = store_->memory().subspan(base, cfg.slot_bytes());
    bool empty = true;
    for (const auto b : slot) {
      if (b != std::byte{0}) {
        empty = false;
        break;
      }
    }
    if (!empty) ++occupied;
  }
  return static_cast<double>(occupied) / static_cast<double>(samples);
}

double OccupancyEstimator::estimate_alpha(std::uint32_t effective_n,
                                          std::uint32_t samples) {
  const double occ = sample_occupancy(samples);
  if (effective_n == 0) effective_n = 1;
  if (occ >= 1.0) return 16.0;  // saturated table: report a very high load
  return -std::log(1.0 - occ) / static_cast<double>(effective_n);
}

void AdaptiveReporter::maybe_reestimate() {
  if (since_estimate_++ < reestimate_every_ && stats_.re_estimates > 0) return;
  since_estimate_ = 0;
  ++stats_.re_estimates;
  const std::uint32_t n_max = store_->config().n_addresses;
  // The table was filled with the current N; use it to invert occupancy.
  stats_.last_alpha = estimator_.estimate_alpha(
      std::max<std::uint32_t>(stats_.current_n, 1));
  stats_.current_n =
      std::min<std::uint32_t>(optimal_n(stats_.last_alpha, n_max), n_max);
}

void AdaptiveReporter::report(std::span<const std::byte> key,
                              std::span<const std::byte> value) {
  maybe_reestimate();
  for (std::uint32_t n = 0; n < stats_.current_n; ++n) {
    store_->write_one(key, value, n);
  }
  ++stats_.keys_written;
  stats_.copies_written += stats_.current_n;
}

}  // namespace dart::core
