// Epoch-based historical storage (§5.2.1), productized:
//
//   "A solution can be to utilize DRAM for temporary epoch-based storage of
//    telemetry data, combined with periodical transfer of data into a larger
//    (and much slower) persistent storage where historical queries can be
//    answered."
//
// EpochedStore double-buffers a live DartStore per epoch. seal_to_file()
// scans the sealed snapshot once (the "periodical transfer"), appends every
// occupied slot to a persistent archive file, and clears the live store for
// the next epoch. EpochArchiveReader memory-maps... loads an archive and
// answers historical point queries by key checksum, applying the same
// disambiguation rules as live queries.
//
// Archive file format (little-endian):
//   [magic "DARTARCH"][version u32][epoch u64]
//   [checksum_bits u32][value_bytes u32][n_entries u64]
//   n_entries × [slot_index u64][checksum u32][value value_bytes]
//   [crc32 of all entry bytes u32]
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "core/store.hpp"

namespace dart::core {

inline constexpr std::uint32_t kArchiveVersion = 1;

struct ArchiveEntry {
  std::uint64_t slot_index = 0;
  std::uint32_t checksum = 0;
  std::vector<std::byte> value;
};

// Writes one epoch's occupied slots to `path`. Returns entries written.
[[nodiscard]] Result<std::uint64_t> write_epoch_archive(
    const std::string& path, std::uint64_t epoch, const DartStore& store);

class EpochArchiveReader {
 public:
  // Loads and validates an archive file.
  [[nodiscard]] static Result<EpochArchiveReader> open(const std::string& path);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t checksum_bits() const noexcept {
    return checksum_bits_;
  }
  [[nodiscard]] std::uint32_t value_bytes() const noexcept {
    return value_bytes_;
  }
  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_; }

  // All archived values whose stored checksum matches `key`'s checksum.
  [[nodiscard]] std::vector<std::vector<std::byte>> lookup_key(
      std::span<const std::byte> key) const;

  // Historical query with live-path semantics: one distinct candidate →
  // found; ambiguity → empty (the conservative §4 rule for history, where
  // re-reporting cannot disambiguate).
  [[nodiscard]] std::optional<std::vector<std::byte>> query(
      std::span<const std::byte> key) const;

  // All archived entries in file order (for inspection tools).
  [[nodiscard]] const std::vector<ArchiveEntry>& entries() const noexcept {
    return entries_vec_;
  }

 private:
  EpochArchiveReader() = default;

  std::uint64_t epoch_ = 0;
  std::uint32_t checksum_bits_ = 32;
  std::uint32_t value_bytes_ = 0;
  std::size_t entries_ = 0;
  std::vector<ArchiveEntry> entries_vec_;
  // checksum → indices into entries_vec_.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> index_;
};

// Live store + epoch lifecycle.
class EpochedStore {
 public:
  explicit EpochedStore(const DartConfig& config) : live_(config) {}

  [[nodiscard]] DartStore& live() noexcept { return live_; }
  [[nodiscard]] std::uint64_t current_epoch() const noexcept { return epoch_; }

  // Seals the current epoch to `path` and starts a fresh one.
  [[nodiscard]] Result<std::uint64_t> seal_to_file(const std::string& path);

 private:
  DartStore live_;
  std::uint64_t epoch_ = 0;
};

}  // namespace dart::core
