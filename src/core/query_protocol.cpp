#include "core/query_protocol.hpp"

#include <algorithm>

#include "common/bytes.hpp"

namespace dart::core {

namespace {
constexpr std::uint16_t kMagicRequest = 0x4451;   // "DQ"
constexpr std::uint16_t kMagicResponse = 0x4452;  // "DR"
}  // namespace

std::vector<std::byte> encode_query_request(const QueryRequest& req) {
  std::vector<std::byte> out;
  out.reserve(18 + req.key.size());
  BufWriter w(out);
  w.be16(kMagicRequest);
  w.u8(kQueryProtocolVersion);
  w.u8(static_cast<std::uint8_t>(req.policy));
  w.be64(req.request_id);
  w.be32(req.epoch);
  w.be16(static_cast<std::uint16_t>(req.key.size()));
  w.bytes(req.key);
  return out;
}

std::optional<QueryRequest> parse_query_request(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicRequest) return std::nullopt;
  if (r.u8() != kQueryProtocolVersion) return std::nullopt;
  QueryRequest req;
  const std::uint8_t policy = r.u8();
  if (policy > static_cast<std::uint8_t>(ReturnPolicy::kConsensusTwo)) {
    return std::nullopt;
  }
  req.policy = static_cast<ReturnPolicy>(policy);
  req.request_id = r.be64();
  req.epoch = r.be32();
  const std::uint16_t key_len = r.be16();
  const auto key = r.view(key_len);
  if (!r.ok() || key.size() != key_len || key_len == 0) return std::nullopt;
  req.key.assign(key.begin(), key.end());
  return req;
}

std::vector<std::byte> encode_query_response(const QueryResponse& resp) {
  std::vector<std::byte> out;
  out.reserve(23 + resp.value.size());
  BufWriter w(out);
  w.be16(kMagicResponse);
  w.u8(kQueryProtocolVersion);
  w.u8(resp.outcome == QueryOutcome::kFound ? 1 : 0);
  w.be64(resp.request_id);
  w.be32(resp.epoch);
  w.u8(resp.flags);
  w.be16(resp.stale_epochs);
  w.u8(resp.checksum_matches);
  w.u8(resp.distinct_values);
  w.be16(static_cast<std::uint16_t>(resp.value.size()));
  w.bytes(resp.value);
  return out;
}

std::optional<QueryResponse> parse_query_response(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicResponse) return std::nullopt;
  if (r.u8() != kQueryProtocolVersion) return std::nullopt;
  QueryResponse resp;
  resp.outcome = r.u8() != 0 ? QueryOutcome::kFound : QueryOutcome::kEmpty;
  resp.request_id = r.be64();
  resp.epoch = r.be32();
  resp.flags = r.u8();
  resp.stale_epochs = r.be16();
  resp.checksum_matches = r.u8();
  resp.distinct_values = r.u8();
  const std::uint16_t value_len = r.be16();
  const auto value = r.view(value_len);
  if (!r.ok() || value.size() != value_len) return std::nullopt;
  if (resp.outcome == QueryOutcome::kFound && value_len == 0) {
    return std::nullopt;
  }
  resp.value.assign(value.begin(), value.end());
  return resp;
}

QueryResponse make_response(std::uint64_t request_id,
                            const QueryResult& result) {
  QueryResponse resp;
  resp.request_id = request_id;
  resp.outcome = result.outcome;
  resp.checksum_matches = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(result.checksum_matches, 0xFF));
  resp.distinct_values = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(result.distinct_values, 0xFF));
  resp.value = result.value;
  return resp;
}

}  // namespace dart::core
