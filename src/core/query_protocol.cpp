#include "core/query_protocol.hpp"

#include <algorithm>

#include "common/bytes.hpp"

namespace dart::core {

namespace {
constexpr std::uint16_t kMagicRequest = 0x4451;   // "DQ"
constexpr std::uint16_t kMagicResponse = 0x4452;  // "DR"
constexpr std::uint16_t kMagicPrimitiveRequest = 0x4470;   // "Dp"
constexpr std::uint16_t kMagicPrimitiveResponse = 0x4472;  // "Dr"
constexpr std::uint16_t kMagicSketchRequest = 0x4453;   // "DS"
constexpr std::uint16_t kMagicSketchResponse = 0x4454;  // "DT"
constexpr std::uint16_t kMagicSubscribeRequest = 0x4455;  // "DU"
constexpr std::uint16_t kMagicSubscribeAck = 0x4456;      // "DV"
constexpr std::uint16_t kMagicNotification = 0x4457;      // "DW"

bool valid_standing_kind(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(StandingKind::kKeyChange) &&
         kind <= static_cast<std::uint8_t>(StandingKind::kTopKDelta);
}

bool valid_primitive_op(std::uint8_t op) {
  return op >= static_cast<std::uint8_t>(PrimitiveOp::kDrainRing) &&
         op <= static_cast<std::uint8_t>(PrimitiveOp::kReadPostcardGroup);
}

bool valid_sketch_op(std::uint8_t op) {
  return op == static_cast<std::uint8_t>(SketchOp::kEstimate) ||
         op == static_cast<std::uint8_t>(SketchOp::kTopK);
}

std::uint16_t peek_magic(std::span<const std::byte> payload) {
  BufReader r(payload);
  const std::uint16_t magic = r.be16();
  return r.ok() ? magic : 0;
}
}  // namespace

std::vector<std::byte> encode_query_request(const QueryRequest& req) {
  std::vector<std::byte> out;
  out.reserve(18 + req.key.size());
  BufWriter w(out);
  w.be16(kMagicRequest);
  w.u8(kQueryProtocolVersion);
  w.u8(static_cast<std::uint8_t>(req.policy));
  w.be64(req.request_id);
  w.be32(req.epoch);
  w.be16(static_cast<std::uint16_t>(req.key.size()));
  w.bytes(req.key);
  return out;
}

std::optional<QueryRequest> parse_query_request(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicRequest) return std::nullopt;
  if (r.u8() != kQueryProtocolVersion) return std::nullopt;
  QueryRequest req;
  const std::uint8_t policy = r.u8();
  if (policy > static_cast<std::uint8_t>(ReturnPolicy::kConsensusTwo)) {
    return std::nullopt;
  }
  req.policy = static_cast<ReturnPolicy>(policy);
  req.request_id = r.be64();
  req.epoch = r.be32();
  const std::uint16_t key_len = r.be16();
  const auto key = r.view(key_len);
  if (!r.ok() || key.size() != key_len || key_len == 0) return std::nullopt;
  req.key.assign(key.begin(), key.end());
  return req;
}

std::vector<std::byte> encode_query_response(const QueryResponse& resp) {
  std::vector<std::byte> out;
  out.reserve(23 + resp.value.size());
  BufWriter w(out);
  w.be16(kMagicResponse);
  w.u8(kQueryProtocolVersion);
  w.u8(resp.outcome == QueryOutcome::kFound ? 1 : 0);
  w.be64(resp.request_id);
  w.be32(resp.epoch);
  w.u8(resp.flags);
  w.be16(resp.stale_epochs);
  w.u8(resp.checksum_matches);
  w.u8(resp.distinct_values);
  w.be16(static_cast<std::uint16_t>(resp.value.size()));
  w.bytes(resp.value);
  return out;
}

std::optional<QueryResponse> parse_query_response(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicResponse) return std::nullopt;
  if (r.u8() != kQueryProtocolVersion) return std::nullopt;
  QueryResponse resp;
  resp.outcome = r.u8() != 0 ? QueryOutcome::kFound : QueryOutcome::kEmpty;
  resp.request_id = r.be64();
  resp.epoch = r.be32();
  resp.flags = r.u8();
  resp.stale_epochs = r.be16();
  resp.checksum_matches = r.u8();
  resp.distinct_values = r.u8();
  const std::uint16_t value_len = r.be16();
  const auto value = r.view(value_len);
  if (!r.ok() || value.size() != value_len) return std::nullopt;
  if (resp.outcome == QueryOutcome::kFound && value_len == 0) {
    return std::nullopt;
  }
  resp.value.assign(value.begin(), value.end());
  return resp;
}

std::vector<std::byte> encode_primitive_request(const PrimitiveRequest& req) {
  std::vector<std::byte> out;
  out.reserve(26 + req.key.size());
  BufWriter w(out);
  w.be16(kMagicPrimitiveRequest);
  w.u8(kPrimitiveProtocolVersion);
  w.u8(static_cast<std::uint8_t>(req.op));
  w.be64(req.request_id);
  w.be32(req.epoch);
  w.be64(req.max_entries);
  w.be16(static_cast<std::uint16_t>(req.key.size()));
  w.bytes(req.key);
  return out;
}

std::optional<PrimitiveRequest> parse_primitive_request(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicPrimitiveRequest) return std::nullopt;
  if (r.u8() != kPrimitiveProtocolVersion) return std::nullopt;
  const std::uint8_t op = r.u8();
  if (!valid_primitive_op(op)) return std::nullopt;
  PrimitiveRequest req;
  req.op = static_cast<PrimitiveOp>(op);
  req.request_id = r.be64();
  req.epoch = r.be32();
  req.max_entries = r.be64();
  const std::uint16_t key_len = r.be16();
  const auto key = r.view(key_len);
  if (!r.ok() || key.size() != key_len) return std::nullopt;
  // Drain addresses the whole ring (no key); the keyed ops need one.
  if (req.op == PrimitiveOp::kDrainRing ? key_len != 0 : key_len == 0) {
    return std::nullopt;
  }
  req.key.assign(key.begin(), key.end());
  return req;
}

std::vector<std::byte> encode_primitive_response(const PrimitiveResponse& resp) {
  std::vector<std::byte> out;
  BufWriter w(out);
  w.be16(kMagicPrimitiveResponse);
  w.u8(kPrimitiveProtocolVersion);
  w.u8(static_cast<std::uint8_t>(resp.op));
  w.be64(resp.request_id);
  w.be32(resp.epoch);
  w.u8(resp.flags);
  w.be16(resp.stale_epochs);
  switch (resp.op) {
    case PrimitiveOp::kDrainRing: {
      w.be64(resp.missed);
      w.be64(resp.next_seq);
      w.be16(resp.entry_value_bytes);
      w.be16(static_cast<std::uint16_t>(
          std::min<std::size_t>(resp.entries.size(), 0xFFFF)));
      std::size_t emitted = 0;
      for (const RingEntryWire& entry : resp.entries) {
        if (emitted++ == 0xFFFF) break;
        w.be64(entry.seq);
        w.bytes(entry.value);
      }
      break;
    }
    case PrimitiveOp::kReadCounter:
      w.be64(resp.cell_index);
      w.be64(resp.counter_value);
      break;
    case PrimitiveOp::kReadPostcardGroup: {
      w.be64(resp.group_index);
      w.u8(resp.max_hops);
      w.be32(resp.valid_mask);
      w.be16(resp.hop_value_bytes);
      for (const auto& hop : resp.hops) w.bytes(hop);
      break;
    }
  }
  return out;
}

std::optional<PrimitiveResponse> parse_primitive_response(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicPrimitiveResponse) return std::nullopt;
  if (r.u8() != kPrimitiveProtocolVersion) return std::nullopt;
  const std::uint8_t op = r.u8();
  if (!valid_primitive_op(op)) return std::nullopt;
  PrimitiveResponse resp;
  resp.op = static_cast<PrimitiveOp>(op);
  resp.request_id = r.be64();
  resp.epoch = r.be32();
  resp.flags = r.u8();
  resp.stale_epochs = r.be16();
  if (!r.ok()) return std::nullopt;
  switch (resp.op) {
    case PrimitiveOp::kDrainRing: {
      resp.missed = r.be64();
      resp.next_seq = r.be64();
      resp.entry_value_bytes = r.be16();
      const std::uint16_t count = r.be16();
      if (!r.ok()) return std::nullopt;
      resp.entries.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        RingEntryWire entry;
        entry.seq = r.be64();
        const auto value = r.view(resp.entry_value_bytes);
        if (!r.ok() || value.size() != resp.entry_value_bytes) {
          return std::nullopt;
        }
        entry.value.assign(value.begin(), value.end());
        resp.entries.push_back(std::move(entry));
      }
      break;
    }
    case PrimitiveOp::kReadCounter:
      resp.cell_index = r.be64();
      resp.counter_value = r.be64();
      if (!r.ok()) return std::nullopt;
      break;
    case PrimitiveOp::kReadPostcardGroup: {
      resp.group_index = r.be64();
      resp.max_hops = r.u8();
      resp.valid_mask = r.be32();
      resp.hop_value_bytes = r.be16();
      if (!r.ok() || resp.max_hops > 32) return std::nullopt;
      if (resp.max_hops < 32 && (resp.valid_mask >> resp.max_hops) != 0) {
        return std::nullopt;
      }
      resp.hops.reserve(resp.max_hops);
      for (std::uint8_t hop = 0; hop < resp.max_hops; ++hop) {
        const auto value = r.view(resp.hop_value_bytes);
        if (!r.ok() || value.size() != resp.hop_value_bytes) {
          return std::nullopt;
        }
        resp.hops.emplace_back(value.begin(), value.end());
      }
      break;
    }
  }
  // Trailing garbage after a structurally complete body is a framing error.
  if (r.remaining() != 0) return std::nullopt;
  return resp;
}

bool is_primitive_request(std::span<const std::byte> payload) {
  return peek_magic(payload) == kMagicPrimitiveRequest;
}

bool is_primitive_response(std::span<const std::byte> payload) {
  return peek_magic(payload) == kMagicPrimitiveResponse;
}

std::vector<std::byte> encode_sketch_request(const SketchRequest& req) {
  std::vector<std::byte> out;
  out.reserve(20 + req.key.size());
  BufWriter w(out);
  w.be16(kMagicSketchRequest);
  w.u8(kSketchProtocolVersion);
  w.u8(static_cast<std::uint8_t>(req.op));
  w.be64(req.request_id);
  w.be32(req.epoch);
  w.be16(req.k);
  w.be16(static_cast<std::uint16_t>(req.key.size()));
  w.bytes(req.key);
  return out;
}

std::optional<SketchRequest> parse_sketch_request(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicSketchRequest) return std::nullopt;
  if (r.u8() != kSketchProtocolVersion) return std::nullopt;
  const std::uint8_t op = r.u8();
  if (!valid_sketch_op(op)) return std::nullopt;
  SketchRequest req;
  req.op = static_cast<SketchOp>(op);
  req.request_id = r.be64();
  req.epoch = r.be32();
  req.k = r.be16();
  const std::uint16_t key_len = r.be16();
  const auto key = r.view(key_len);
  if (!r.ok() || key.size() != key_len) return std::nullopt;
  // kEstimate addresses one key (k unused); kTopK addresses the tracker
  // (no key) and needs a positive k.
  if (req.op == SketchOp::kEstimate ? key_len == 0
                                    : (key_len != 0 || req.k == 0)) {
    return std::nullopt;
  }
  if (r.remaining() != 0) return std::nullopt;
  req.key.assign(key.begin(), key.end());
  return req;
}

std::vector<std::byte> encode_sketch_response(const SketchResponse& resp) {
  std::vector<std::byte> out;
  BufWriter w(out);
  w.be16(kMagicSketchResponse);
  w.u8(kSketchProtocolVersion);
  w.u8(static_cast<std::uint8_t>(resp.op));
  w.be64(resp.request_id);
  w.be32(resp.epoch);
  w.u8(resp.flags);
  w.be16(resp.stale_epochs);
  switch (resp.op) {
    case SketchOp::kEstimate:
      w.be64(resp.estimate);
      break;
    case SketchOp::kTopK: {
      w.be16(static_cast<std::uint16_t>(
          std::min<std::size_t>(resp.hitters.size(), 0xFFFF)));
      std::size_t emitted = 0;
      for (const HeavyHitterWire& hh : resp.hitters) {
        if (emitted++ == 0xFFFF) break;
        w.be64(hh.count);
        w.be16(static_cast<std::uint16_t>(hh.key.size()));
        w.bytes(hh.key);
      }
      break;
    }
  }
  return out;
}

std::optional<SketchResponse> parse_sketch_response(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicSketchResponse) return std::nullopt;
  if (r.u8() != kSketchProtocolVersion) return std::nullopt;
  const std::uint8_t op = r.u8();
  if (!valid_sketch_op(op)) return std::nullopt;
  SketchResponse resp;
  resp.op = static_cast<SketchOp>(op);
  resp.request_id = r.be64();
  resp.epoch = r.be32();
  resp.flags = r.u8();
  resp.stale_epochs = r.be16();
  if (!r.ok()) return std::nullopt;
  switch (resp.op) {
    case SketchOp::kEstimate:
      resp.estimate = r.be64();
      if (!r.ok()) return std::nullopt;
      break;
    case SketchOp::kTopK: {
      const std::uint16_t count = r.be16();
      if (!r.ok()) return std::nullopt;
      resp.hitters.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        HeavyHitterWire hh;
        hh.count = r.be64();
        const std::uint16_t key_len = r.be16();
        const auto key = r.view(key_len);
        if (!r.ok() || key.size() != key_len || key_len == 0) {
          return std::nullopt;
        }
        hh.key.assign(key.begin(), key.end());
        resp.hitters.push_back(std::move(hh));
      }
      break;
    }
  }
  // Trailing garbage after a structurally complete body is a framing error.
  if (r.remaining() != 0) return std::nullopt;
  return resp;
}

bool is_sketch_request(std::span<const std::byte> payload) {
  return peek_magic(payload) == kMagicSketchRequest;
}

bool is_sketch_response(std::span<const std::byte> payload) {
  return peek_magic(payload) == kMagicSketchResponse;
}

std::vector<std::byte> encode_subscribe_request(const SubscribeRequest& req) {
  std::vector<std::byte> out;
  out.reserve(41 + req.key.size());
  BufWriter w(out);
  w.be16(kMagicSubscribeRequest);
  w.u8(kGatewayProtocolVersion);
  w.u8(static_cast<std::uint8_t>(req.op));
  w.be64(req.request_id);
  w.be32(req.epoch);
  w.u8(static_cast<std::uint8_t>(req.kind));
  w.be32(req.collector);
  w.be64(req.threshold);
  w.be16(req.k);
  w.be64(req.subscription_id);
  w.be16(static_cast<std::uint16_t>(req.key.size()));
  w.bytes(req.key);
  return out;
}

std::optional<SubscribeRequest> parse_subscribe_request(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicSubscribeRequest) return std::nullopt;
  if (r.u8() != kGatewayProtocolVersion) return std::nullopt;
  SubscribeRequest req;
  const std::uint8_t op = r.u8();
  if (op != static_cast<std::uint8_t>(SubscribeOp::kSubscribe) &&
      op != static_cast<std::uint8_t>(SubscribeOp::kUnsubscribe)) {
    return std::nullopt;
  }
  req.op = static_cast<SubscribeOp>(op);
  req.request_id = r.be64();
  req.epoch = r.be32();
  const std::uint8_t kind = r.u8();
  if (!valid_standing_kind(kind)) return std::nullopt;
  req.kind = static_cast<StandingKind>(kind);
  req.collector = r.be32();
  req.threshold = r.be64();
  req.k = r.be16();
  req.subscription_id = r.be64();
  const std::uint16_t key_len = r.be16();
  const auto key = r.view(key_len);
  if (!r.ok() || key.size() != key_len) return std::nullopt;
  req.key.assign(key.begin(), key.end());
  return req;
}

std::vector<std::byte> encode_subscribe_ack(const SubscribeAck& ack) {
  std::vector<std::byte> out;
  out.reserve(27);
  BufWriter w(out);
  w.be16(kMagicSubscribeAck);
  w.u8(kGatewayProtocolVersion);
  w.u8(static_cast<std::uint8_t>(ack.op));
  w.be64(ack.request_id);
  w.be32(ack.epoch);
  w.u8(ack.flags);
  w.be16(ack.stale_epochs);
  w.be64(ack.subscription_id);
  return out;
}

std::optional<SubscribeAck> parse_subscribe_ack(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicSubscribeAck) return std::nullopt;
  if (r.u8() != kGatewayProtocolVersion) return std::nullopt;
  SubscribeAck ack;
  const std::uint8_t op = r.u8();
  if (op != static_cast<std::uint8_t>(SubscribeOp::kSubscribe) &&
      op != static_cast<std::uint8_t>(SubscribeOp::kUnsubscribe)) {
    return std::nullopt;
  }
  ack.op = static_cast<SubscribeOp>(op);
  ack.request_id = r.be64();
  ack.epoch = r.be32();
  ack.flags = r.u8();
  ack.stale_epochs = r.be16();
  ack.subscription_id = r.be64();
  if (!r.ok()) return std::nullopt;
  return ack;
}

std::vector<std::byte> encode_notification(const StandingNotification& note) {
  std::vector<std::byte> out;
  out.reserve(41 + note.key.size() + note.aux.size());
  BufWriter w(out);
  w.be16(kMagicNotification);
  w.u8(kGatewayProtocolVersion);
  w.u8(static_cast<std::uint8_t>(note.kind));
  w.be64(note.subscription_id);
  w.be64(note.seq);
  w.be64(note.gateway_epoch);
  w.u8(note.flags);
  w.be64(note.value);
  w.be16(static_cast<std::uint16_t>(note.key.size()));
  w.bytes(note.key);
  w.be16(static_cast<std::uint16_t>(note.aux.size()));
  w.bytes(note.aux);
  return out;
}

std::optional<StandingNotification> parse_notification(
    std::span<const std::byte> payload) {
  BufReader r(payload);
  if (r.be16() != kMagicNotification) return std::nullopt;
  if (r.u8() != kGatewayProtocolVersion) return std::nullopt;
  StandingNotification note;
  const std::uint8_t kind = r.u8();
  if (!valid_standing_kind(kind)) return std::nullopt;
  note.kind = static_cast<StandingKind>(kind);
  note.subscription_id = r.be64();
  note.seq = r.be64();
  note.gateway_epoch = r.be64();
  note.flags = r.u8();
  note.value = r.be64();
  const std::uint16_t key_len = r.be16();
  const auto key = r.view(key_len);
  if (!r.ok() || key.size() != key_len) return std::nullopt;
  note.key.assign(key.begin(), key.end());
  const std::uint16_t aux_len = r.be16();
  const auto aux = r.view(aux_len);
  if (!r.ok() || aux.size() != aux_len) return std::nullopt;
  note.aux.assign(aux.begin(), aux.end());
  return note;
}

bool is_subscribe_request(std::span<const std::byte> payload) {
  return peek_magic(payload) == kMagicSubscribeRequest;
}

bool is_subscribe_ack(std::span<const std::byte> payload) {
  return peek_magic(payload) == kMagicSubscribeAck;
}

bool is_notification(std::span<const std::byte> payload) {
  return peek_magic(payload) == kMagicNotification;
}

QueryResponse make_response(std::uint64_t request_id,
                            const QueryResult& result) {
  QueryResponse resp;
  resp.request_id = request_id;
  resp.outcome = result.outcome;
  resp.checksum_matches = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(result.checksum_matches, 0xFF));
  resp.distinct_values = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(result.distinct_values, 0xFF));
  resp.value = result.value;
  return resp;
}

}  // namespace dart::core
