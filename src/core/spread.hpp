// SpreadCluster — the §3.1 placement alternative DART's default rejects,
// implemented so the trade-off can be measured:
//
//   "Distributing the N copies of per-key telemetry data across N physical
//    collectors could improve the system resiliency, at the cost of
//    potentially reduced querying speed. In DART's current design we ensure
//    that data duplicates for any one key are held at a single collector,
//    thereby enabling operator queries to be executed locally."
//
// Placement:
//   kSingleCollector — all N copies on hash-owner(key)      (DART default)
//   kSpreadCopies    — copy n on collector (owner(key)+n)%C (resilient)
//
// The cluster models collector failure (fail/restore) and counts the remote
// reads a query needs, so the ablation bench can quantify both sides of the
// trade: queryability when a collector dies vs per-query fan-out.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/collector.hpp"
#include "core/config.hpp"
#include "core/report_crafter.hpp"

namespace dart::core {

enum class PlacementMode : std::uint8_t {
  kSingleCollector,  // the paper's design
  kSpreadCopies,     // resiliency alternative
};

struct SpreadQueryStats {
  std::uint64_t queries = 0;
  std::uint64_t collector_reads = 0;  // distinct collectors contacted
};

class SpreadCluster {
 public:
  SpreadCluster(const DartConfig& config, std::uint32_t n_collectors,
                PlacementMode mode);

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(collectors_.size());
  }
  [[nodiscard]] PlacementMode mode() const noexcept { return mode_; }

  // Collector holding copy n of `key`.
  [[nodiscard]] std::uint32_t collector_for_copy(std::span<const std::byte> key,
                                                 std::uint32_t n) const noexcept;

  // Writes all N copies (skipping failed collectors, like lost reports).
  void write(std::span<const std::byte> key, std::span<const std::byte> value);

  // Queries by gathering the key's N slots from their collectors (skipping
  // failed ones) and applying the return policy over the union.
  [[nodiscard]] QueryResult query(std::span<const std::byte> key,
                                  ReturnPolicy policy = ReturnPolicy::kPlurality);

  // Failure injection.
  void fail_collector(std::uint32_t id) { failed_[id] = true; }
  void restore_collector(std::uint32_t id) { failed_[id] = false; }
  [[nodiscard]] bool is_failed(std::uint32_t id) const noexcept {
    return failed_[id];
  }

  [[nodiscard]] const SpreadQueryStats& query_stats() const noexcept {
    return stats_;
  }
  void reset_query_stats() noexcept { stats_ = {}; }
  [[nodiscard]] Collector& collector(std::uint32_t id) noexcept {
    return *collectors_[id];
  }

 private:
  DartConfig config_;
  PlacementMode mode_;
  ReportCrafter crafter_;  // provides the shared hash family
  std::vector<std::unique_ptr<Collector>> collectors_;
  std::vector<bool> failed_;
  SpreadQueryStats stats_;
};

}  // namespace dart::core
