// DartConfig ⇄ key=value file conversion — how a deployment distributes the
// shared configuration whose byte-for-byte agreement the stateless mapping
// depends on (checked by control-plane fingerprints, core/control.hpp).
#pragma once

#include <string>

#include "common/kvconfig.hpp"
#include "core/config.hpp"

namespace dart::core {

// Serializes every mapping-relevant field.
[[nodiscard]] KvConfig to_kv(const DartConfig& config);

// Parses a config; missing keys fall back to DartConfig defaults, malformed
// values or invalid combinations fail.
[[nodiscard]] Result<DartConfig> dart_config_from_kv(const KvConfig& kv);

// Convenience file round trips.
[[nodiscard]] Status save_dart_config(const DartConfig& config,
                                      const std::string& path);
[[nodiscard]] Result<DartConfig> load_dart_config(const std::string& path);

}  // namespace dart::core
