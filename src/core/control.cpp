#include "core/control.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "core/oracle.hpp"

namespace dart::core {

std::uint64_t config_fingerprint(const DartConfig& config) noexcept {
  // Every field that participates in the stateless mapping. Serialized into
  // a fixed layout so padding never leaks in.
  struct Canonical {
    std::uint64_t n_slots;
    std::uint32_t n_addresses;
    std::uint32_t checksum_bits;
    std::uint32_t value_bytes;
    std::uint32_t write_mode;
    std::uint64_t master_seed;
    std::uint32_t selection;
    std::uint32_t ring_height_per_member;
  } c{config.n_slots,
      config.n_addresses,
      config.checksum_bits,
      config.value_bytes,
      static_cast<std::uint32_t>(config.write_mode),
      config.master_seed,
      static_cast<std::uint32_t>(config.selection),
      config.ring_height_per_member};
  return xxhash64_of(c, 0xF1D6E2);
}

void DeploymentController::register_collector(const RemoteStoreInfo& info) {
  const auto it = std::find_if(
      directory_.begin(), directory_.end(),
      [&](const RemoteStoreInfo& r) { return r.collector_id == info.collector_id; });
  if (it != directory_.end()) {
    *it = info;  // re-registration updates the row (e.g. new rkey)
  } else {
    directory_.push_back(info);
  }
  ++stats_.directory_version;
}

Status DeploymentController::decommission_collector(std::uint32_t collector_id) {
  const auto it = std::find_if(
      directory_.begin(), directory_.end(),
      [&](const RemoteStoreInfo& r) { return r.collector_id == collector_id; });
  if (it == directory_.end()) {
    return Error{"unknown_collector", "collector not in the directory"};
  }
  directory_.erase(it);
  ++stats_.directory_version;
  return {};
}

Status DeploymentController::attach_switch(
    switchsim::DartSwitchPipeline& pipeline) {
  if (config_fingerprint(pipeline.config().dart) != config_fingerprint(config_)) {
    ++stats_.config_rejections;
    return Error{"config_mismatch",
                 "switch DartConfig fingerprint differs from the deployment "
                 "config — the stateless mapping would break"};
  }
  push_directory(pipeline);
  switches_.push_back({&pipeline, stats_.directory_version});
  ++stats_.switches_attached;
  return {};
}

void DeploymentController::push_directory(
    switchsim::DartSwitchPipeline& pipeline) {
  pipeline.clear_collectors();
  for (const auto& info : directory_) {
    pipeline.load_collector(info);
    ++stats_.table_entries_pushed;
  }
}

std::uint32_t DeploymentController::push_updates() {
  std::uint32_t updated = 0;
  for (auto& attached : switches_) {
    if (attached.table_version == stats_.directory_version) continue;
    push_directory(*attached.pipeline);
    attached.table_version = stats_.directory_version;
    ++updated;
  }
  return updated;
}

CollectorLivenessTable::CollectorLivenessTable(std::uint32_t n_collectors,
                                               const LivenessConfig& config,
                                               std::uint64_t now_ns)
    : config_(config) {
  rows_.resize(n_collectors);
  for (auto& row : rows_) row.last_seen_ns = now_ns;
}

void CollectorLivenessTable::heartbeat(std::uint32_t id, std::uint64_t now_ns) {
  Row& row = rows_[id];
  row.last_seen_ns = std::max(row.last_seen_ns, now_ns);
  ++stats_.heartbeats;
}

std::vector<CollectorLivenessTable::Transition> CollectorLivenessTable::tick(
    std::uint64_t now_ns) {
  std::vector<Transition> out;
  for (std::uint32_t id = 0; id < rows_.size(); ++id) {
    Row& row = rows_[id];
    const std::uint64_t silence =
        now_ns > row.last_seen_ns ? now_ns - row.last_seen_ns : 0;

    CollectorHealth next = row.state;
    if (silence <= config_.heartbeat_interval_ns) {
      next = CollectorHealth::kAlive;
    } else if (silence > config_.timeout_ns) {
      next = CollectorHealth::kDead;
    } else if (row.state != CollectorHealth::kDead) {
      // A dead collector stays dead until a heartbeat proves otherwise —
      // partial silence must not un-declare a death.
      next = CollectorHealth::kSuspect;
    }
    if (next == row.state) continue;

    if (next == CollectorHealth::kDead) {
      ++stats_.deaths;
      row.backoff_ns = config_.probe_backoff_initial_ns;
      row.next_probe_ns = now_ns + row.backoff_ns;
    } else if (row.state == CollectorHealth::kDead) {
      ++stats_.recoveries;
    }
    row.state = next;
    out.push_back({id, next});
  }
  return out;
}

bool CollectorLivenessTable::probe_due(std::uint32_t id, std::uint64_t now_ns) {
  Row& row = rows_[id];
  if (row.state != CollectorHealth::kDead || now_ns < row.next_probe_ns) {
    return false;
  }
  ++stats_.probes;
  row.backoff_ns = std::min(
      static_cast<std::uint64_t>(static_cast<double>(row.backoff_ns) *
                                 config_.probe_backoff_factor),
      config_.probe_backoff_max_ns);
  row.next_probe_ns = now_ns + row.backoff_ns;
  return true;
}

std::optional<std::uint32_t> CollectorLivenessTable::next_alive(
    std::uint32_t from) const noexcept {
  const auto n = static_cast<std::uint32_t>(rows_.size());
  for (std::uint32_t step = 1; step < n; ++step) {
    const std::uint32_t id = (from + step) % n;
    if (rows_[id].state == CollectorHealth::kAlive) return id;
  }
  return std::nullopt;
}

double DeploymentController::estimate_remap_fraction(
    std::uint32_t before, std::uint32_t after, std::uint32_t samples) const {
  if (before == 0 || after == 0 || samples == 0) return 0.0;
  const HashFamily family(config_.n_addresses, config_.master_seed);
  std::uint32_t moved = 0;
  for (std::uint32_t i = 0; i < samples; ++i) {
    const auto key = sim_key(0xCAFE'0000ull + i);
    if (family.collector_of(key, before) != family.collector_of(key, after)) {
      ++moved;
    }
  }
  return static_cast<double>(moved) / static_cast<double>(samples);
}

}  // namespace dart::core
