#include "core/control.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "core/oracle.hpp"

namespace dart::core {

std::uint64_t config_fingerprint(const DartConfig& config) noexcept {
  // Every field that participates in the stateless mapping. Serialized into
  // a fixed layout so padding never leaks in.
  struct Canonical {
    std::uint64_t n_slots;
    std::uint32_t n_addresses;
    std::uint32_t checksum_bits;
    std::uint32_t value_bytes;
    std::uint32_t write_mode;
    std::uint64_t master_seed;
  } c{config.n_slots,       config.n_addresses, config.checksum_bits,
      config.value_bytes,   static_cast<std::uint32_t>(config.write_mode),
      config.master_seed};
  return xxhash64_of(c, 0xF1D6E2);
}

void DeploymentController::register_collector(const RemoteStoreInfo& info) {
  const auto it = std::find_if(
      directory_.begin(), directory_.end(),
      [&](const RemoteStoreInfo& r) { return r.collector_id == info.collector_id; });
  if (it != directory_.end()) {
    *it = info;  // re-registration updates the row (e.g. new rkey)
  } else {
    directory_.push_back(info);
  }
  ++stats_.directory_version;
}

Status DeploymentController::decommission_collector(std::uint32_t collector_id) {
  const auto it = std::find_if(
      directory_.begin(), directory_.end(),
      [&](const RemoteStoreInfo& r) { return r.collector_id == collector_id; });
  if (it == directory_.end()) {
    return Error{"unknown_collector", "collector not in the directory"};
  }
  directory_.erase(it);
  ++stats_.directory_version;
  return {};
}

Status DeploymentController::attach_switch(
    switchsim::DartSwitchPipeline& pipeline) {
  if (config_fingerprint(pipeline.config().dart) != config_fingerprint(config_)) {
    ++stats_.config_rejections;
    return Error{"config_mismatch",
                 "switch DartConfig fingerprint differs from the deployment "
                 "config — the stateless mapping would break"};
  }
  push_directory(pipeline);
  switches_.push_back({&pipeline, stats_.directory_version});
  ++stats_.switches_attached;
  return {};
}

void DeploymentController::push_directory(
    switchsim::DartSwitchPipeline& pipeline) {
  pipeline.clear_collectors();
  for (const auto& info : directory_) {
    pipeline.load_collector(info);
    ++stats_.table_entries_pushed;
  }
}

std::uint32_t DeploymentController::push_updates() {
  std::uint32_t updated = 0;
  for (auto& attached : switches_) {
    if (attached.table_version == stats_.directory_version) continue;
    push_directory(*attached.pipeline);
    attached.table_version = stats_.directory_version;
    ++updated;
  }
  return updated;
}

double DeploymentController::estimate_remap_fraction(
    std::uint32_t before, std::uint32_t after, std::uint32_t samples) const {
  if (before == 0 || after == 0 || samples == 0) return 0.0;
  const HashFamily family(config_.n_addresses, config_.master_seed);
  std::uint32_t moved = 0;
  for (std::uint32_t i = 0; i < samples; ++i) {
    const auto key = sim_key(0xCAFE'0000ull + i);
    if (family.collector_of(key, before) != family.collector_of(key, after)) {
      ++moved;
    }
  }
  return static_cast<double>(moved) / static_cast<double>(samples);
}

}  // namespace dart::core
