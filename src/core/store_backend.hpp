// StoreBackend — the pluggable collector-storage seam.
//
// The paper frames a collector as "just memory the RNIC writes into"; this
// module makes the SHAPE of that memory a backend choice instead of a
// hard-coded N-way checksum KV array. A backend owns four things:
//
//   1. the MR byte layout (how many addressable slots/cells, how wide),
//   2. slot/cell addressing — the formula a switch uses to turn a key into
//      remote vaddrs when crafting report frames,
//   3. the local apply path — the single-threaded reference semantics of
//      the wire op(s) the switch emits for one telemetry report, and
//   4. the query-side read path (resolve()), the only place collector CPU
//      appears.
//
// Two backends ship:
//
//   KvBackend     the default — DartStore re-homed behind the seam. One
//                 report = one RDMA WRITE of [checksum ‖ value] per slot
//                 copy; queries are §4 return-policy votes.
//
//   SketchBackend compact storage per "Compact Data Structures for Network
//                 Telemetry": the MR is a count-min sketch of 64-bit cells,
//                 and one report = `rows` RDMA FETCH_ADDs (one cell per
//                 row), so many switches merge into one network-wide sketch
//                 in place with zero collector CPU. Queries return point
//                 estimates; a heavy-hitter/top-k candidate tracker is
//                 maintained on the collector READ side (ingest never sees
//                 keys — the RNIC only adds integers — so candidates are
//                 recorded when estimate queries arrive, DTA's "query path
//                 is the only CPU" discipline).
//
// Cell addressing of SketchBackend is IDENTICAL to core::CountMinSketch
// (same SplitMix64 row-seed derivation, same xxhash64 column hash, same
// row-major flattening), so a local reference sketch agrees cell-for-cell
// with the wire path — the backend-differential property in dartcheck pins
// this byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "common/random.hpp"
#include "core/config.hpp"
#include "core/query.hpp"
#include "core/store.hpp"

namespace dart::core {

enum class StoreBackendKind : std::uint8_t {
  kKv = 0,      // DartStore: N-way checksum KV array (the paper's §3.1)
  kSketch = 1,  // count-min cells merged in place via FETCH_ADD
};

[[nodiscard]] const char* to_string(StoreBackendKind kind) noexcept;

// Geometry + seeds of a sketch-backed collector region. Shared verbatim by
// the collector (MR layout), the switch (FETCH_ADD crafting), and the
// reference sketch (differential tests) — like DartConfig for the KV array.
struct SketchBackendConfig {
  std::uint32_t rows = 4;       // d — one FETCH_ADD per row per report
  std::uint64_t cols = 2048;    // w — cells per row
  std::uint64_t seed = 0xDA27'0000'0002ull;  // row-seed master (SplitMix64)
  // Read-side heavy-hitter candidate tracker capacity (collector memory,
  // not MR bytes — the tracker lives outside the RNIC-written region).
  std::uint32_t topk_capacity = 32;

  [[nodiscard]] constexpr std::uint64_t n_cells() const noexcept {
    return static_cast<std::uint64_t>(rows) * cols;
  }
  [[nodiscard]] constexpr std::uint64_t memory_bytes() const noexcept {
    return n_cells() * 8;  // host-endian u64 cells, the RNIC atomic unit
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return rows >= 1 && rows <= 32 && cols >= 1 && topk_capacity >= 1;
  }

  // Row r's hash seed — the exact derivation CountMinSketch uses, so wire
  // and reference paths agree cell-for-cell.
  [[nodiscard]] std::uint64_t row_seed(std::uint32_t r) const noexcept {
    SplitMix64 sm(seed);
    std::uint64_t s = sm.next();
    for (std::uint32_t i = 0; i < r; ++i) s = sm.next();
    return s;
  }

  // Flat cell index (row-major: r*cols + col) row r of `key` maps to. The
  // remote vaddr of a report's FETCH_ADD is dst.slot_vaddr(cell_of(...)).
  [[nodiscard]] std::uint64_t cell_of(std::span<const std::byte> key,
                                      std::uint32_t r) const noexcept {
    return static_cast<std::uint64_t>(r) * cols +
           xxhash64(key, row_seed(r)) % cols;
  }
};

// Backend selection handed to a Collector at bring-up.
struct StoreBackendConfig {
  StoreBackendKind kind = StoreBackendKind::kKv;
  SketchBackendConfig sketch{};  // used iff kind == kSketch

  // MR bytes the chosen backend needs under `dart` (KV geometry lives in
  // DartConfig; sketch geometry here).
  [[nodiscard]] constexpr std::uint64_t memory_bytes(
      const DartConfig& dart) const noexcept {
    return kind == StoreBackendKind::kKv ? dart.memory_bytes()
                                         : sketch.memory_bytes();
  }
  [[nodiscard]] constexpr bool valid(const DartConfig& dart) const noexcept {
    return kind == StoreBackendKind::kKv ? dart.valid() : sketch.valid();
  }
};

// One heavy-hitter answer: the key and its current sketch estimate.
struct HeavyHitter {
  std::vector<std::byte> key;
  std::uint64_t count = 0;
};

// The seam. Implementations are views over an MR byte region (external
// mode) or self-owning (simulation mode) via RegionBacking, like every
// other collector-side structure.
class StoreBackend {
 public:
  virtual ~StoreBackend() = default;

  [[nodiscard]] virtual StoreBackendKind kind() const noexcept = 0;

  // --- MR byte layout / switch-row geometry --------------------------------
  // `n_slots` × `slot_bytes` addressable units, `slot_vaddr(i) = base +
  // i*slot_bytes` on the switch side (RemoteStoreInfo's formula).
  [[nodiscard]] virtual std::uint64_t n_slots() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t slot_bytes() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t memory_bytes() const noexcept = 0;
  [[nodiscard]] virtual std::span<std::byte> memory() noexcept = 0;
  [[nodiscard]] virtual std::span<const std::byte> memory() const noexcept = 0;

  // --- local apply path ----------------------------------------------------
  // Reference semantics of one telemetry report (key, value) — what the
  // switch's crafted frame(s) for that report do to the MR. KV: write all N
  // [checksum ‖ value] slots. Sketch: FETCH_ADD 1 into one cell per row
  // (a report is a count observation; the value bytes carry no per-key
  // storage a sketch could hold).
  virtual void apply_report(std::span<const std::byte> key,
                            std::span<const std::byte> value) = 0;

  // --- query-side read path ------------------------------------------------
  // KV: §4 return-policy vote. Sketch: point estimate, encoded as an 8-byte
  // little-endian value (kFound iff the estimate is nonzero).
  [[nodiscard]] virtual QueryResult resolve(std::span<const std::byte> key,
                                            ReturnPolicy policy) const = 0;

  // Zero the MR region and reset any read-side state (trackers, tallies).
  virtual void clear() = 0;
};

// DartStore re-homed behind the seam (the default backend).
class KvBackend final : public StoreBackend {
 public:
  // Self-owning (simulation) and external-MR modes, like DartStore.
  explicit KvBackend(const DartConfig& config) : store_(config) {}
  KvBackend(const DartConfig& config, std::span<std::byte> memory)
      : store_(config, memory) {}

  [[nodiscard]] StoreBackendKind kind() const noexcept override {
    return StoreBackendKind::kKv;
  }
  [[nodiscard]] std::uint64_t n_slots() const noexcept override {
    return store_.config().n_slots;
  }
  [[nodiscard]] std::uint32_t slot_bytes() const noexcept override {
    return store_.config().slot_bytes();
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept override {
    return store_.config().memory_bytes();
  }
  [[nodiscard]] std::span<std::byte> memory() noexcept override {
    return store_.memory();
  }
  [[nodiscard]] std::span<const std::byte> memory() const noexcept override {
    return store_.memory();
  }

  void apply_report(std::span<const std::byte> key,
                    std::span<const std::byte> value) override {
    store_.write(key, value);
  }
  [[nodiscard]] QueryResult resolve(std::span<const std::byte> key,
                                    ReturnPolicy policy) const override;
  void clear() override { store_.clear(); }

  [[nodiscard]] DartStore& store() noexcept { return store_; }
  [[nodiscard]] const DartStore& store() const noexcept { return store_; }

 private:
  DartStore store_;
};

// Count-min cells in MR memory + a read-side heavy-hitter tracker.
class SketchBackend final : public StoreBackend {
 public:
  explicit SketchBackend(const SketchBackendConfig& config);
  // External mode: `memory` must be exactly config.memory_bytes() long and
  // outlive the backend (a registered MR on a collector).
  SketchBackend(const SketchBackendConfig& config, std::span<std::byte> memory);

  [[nodiscard]] const SketchBackendConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] StoreBackendKind kind() const noexcept override {
    return StoreBackendKind::kSketch;
  }
  // One "slot" = one 8-byte cell, the FETCH_ADD unit.
  [[nodiscard]] std::uint64_t n_slots() const noexcept override {
    return config_.n_cells();
  }
  [[nodiscard]] std::uint32_t slot_bytes() const noexcept override { return 8; }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept override {
    return config_.memory_bytes();
  }
  [[nodiscard]] std::span<std::byte> memory() noexcept override {
    return backing_.memory();
  }
  [[nodiscard]] std::span<const std::byte> memory() const noexcept override {
    return backing_.memory();
  }

  void apply_report(std::span<const std::byte> key,
                    std::span<const std::byte> /*value*/) override {
    add(key, 1);
  }
  [[nodiscard]] QueryResult resolve(std::span<const std::byte> key,
                                    ReturnPolicy policy) const override;
  void clear() override;

  // --- cell addressing (shared with switch crafting) -----------------------
  [[nodiscard]] std::uint64_t cell_of(std::span<const std::byte> key,
                                      std::uint32_t row) const noexcept {
    return static_cast<std::uint64_t>(row) * config_.cols +
           xxhash64(key, row_seeds_[row]) % config_.cols;
  }

  // --- local apply / read of the cells -------------------------------------
  // Local FETCH_ADD reference: one atomic add per row. Atomic (like the
  // RNIC, which serializes atomics against target memory) so concurrent
  // local feeders cannot lose updates.
  void add(std::span<const std::byte> key, std::uint64_t delta);
  [[nodiscard]] std::uint64_t estimate(
      std::span<const std::byte> key) const noexcept;
  [[nodiscard]] std::uint64_t cell_value(std::uint64_t index) const noexcept;

  // --- read-side heavy-hitter / top-k tracker ------------------------------
  //
  // Capacity-bounded candidate set fed by the query path (serve-side code
  // calls offer() for every estimated key). Counts are NOT cached: top_k()
  // re-estimates every candidate from the live cells, so answers reflect
  // all FETCH_ADDs that landed since the key was first offered.

  // Records `key` as a heavy-hitter candidate. At capacity, the candidate
  // with the smallest current estimate is evicted iff the newcomer's
  // estimate is strictly larger (counted in offers_evicted), else the
  // newcomer is dropped (offers_rejected).
  void offer(std::span<const std::byte> key);

  // Top k candidates by current estimate, descending; ties break toward
  // lexicographically smaller keys so answers are deterministic.
  [[nodiscard]] std::vector<HeavyHitter> top_k(std::size_t k) const;

  [[nodiscard]] std::size_t tracked_candidates() const noexcept {
    return candidates_.size();
  }
  [[nodiscard]] std::uint64_t offers() const noexcept { return offers_; }
  [[nodiscard]] std::uint64_t offers_evicted() const noexcept {
    return offers_evicted_;
  }
  [[nodiscard]] std::uint64_t offers_rejected() const noexcept {
    return offers_rejected_;
  }

 private:
  SketchBackendConfig config_;
  std::vector<std::uint64_t> row_seeds_;  // cached config_.row_seed(r)
  RegionBacking backing_;
  std::vector<std::vector<std::byte>> candidates_;
  std::uint64_t offers_ = 0;
  std::uint64_t offers_evicted_ = 0;
  std::uint64_t offers_rejected_ = 0;
};

// Factory over external MR memory (`memory` must be exactly
// backend.memory_bytes(dart) long) — what Collector bring-up calls.
[[nodiscard]] std::unique_ptr<StoreBackend> make_backend(
    const DartConfig& dart, const StoreBackendConfig& backend,
    std::span<std::byte> memory);

// Self-owning factory for simulations and reference twins.
[[nodiscard]] std::unique_ptr<StoreBackend> make_backend(
    const DartConfig& dart, const StoreBackendConfig& backend);

}  // namespace dart::core
