// §7 extensions built on RDMA atomics.
//
// 1. CasInsertStore — "for N = 2 hashes and an initially empty table, we can
//    use an RDMA write with one hash and Compare & Swap with another
//    (writing to a second slot only if it is empty)". Copy 0 is a plain
//    overwrite; copy 1 is written only when currently empty, so a hot
//    second slot stops being churned by later keys. The CAS is modeled on
//    the first 8 bytes of the slot (an RDMA CAS operates on one aligned
//    64-bit word): a slot is "empty" iff that word is zero. The
//    ablation_cas bench quantifies the queryability gain.
//
// 2. FlowCounterArray — per-flow packet/byte counters maintained *in
//    collector memory* with FETCH_ADD, saving switch SRAM.
//
// 3. CountMinSketch — network-wide sketch aggregation: every switch
//    FETCH_ADDs the same d cells, so the collector-side sketch is the sum of
//    all switch contributions without any merge step.
//
// All three expose (a) a local apply path used by simulations, and (b) the
// remote cell addresses a switch needs to craft the equivalent RDMA ops;
// integration tests drive (b) through the simulated RNIC and assert it
// matches (a).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "core/store.hpp"

namespace dart::core {

class CasInsertStore {
 public:
  // `store` must have n_addresses == 2 and slot_bytes >= 8.
  explicit CasInsertStore(DartStore& store);

  // Copy 0: WRITE (overwrite). Copy 1: CAS-if-empty.
  //
  // The empty-check and the claim are one atomic step, as on a real RNIC
  // (which serializes atomics against the target memory): two writers racing
  // for one empty slot resolve to exactly one CAS success. Checking
  // slot_empty() and then writing — the original implementation — let both
  // writers observe "empty" and both count a success. Slot claims are
  // serialized per slot stripe; slot words are not required to be 8-byte
  // aligned (slot_bytes is often 12), which rules out std::atomic_ref here.
  void write(std::span<const std::byte> key, std::span<const std::byte> value);

  [[nodiscard]] std::uint64_t cas_attempts() const noexcept {
    return cas_attempts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cas_successes() const noexcept {
    return cas_successes_.load(std::memory_order_relaxed);
  }

  // True iff the CAS word (first 8 bytes) of `slot_index` is zero.
  [[nodiscard]] bool slot_empty(std::uint64_t slot_index) const noexcept;

 private:
  static constexpr std::size_t kClaimStripes = 64;

  DartStore* store_;
  std::atomic<std::uint64_t> cas_attempts_{0};
  std::atomic<std::uint64_t> cas_successes_{0};
  // Per-stripe claim locks modeling the RNIC's atomic-op serialization.
  mutable std::array<std::atomic_flag, kClaimStripes> claim_locks_{};
};

// Flat array of 64-bit counters addressed by key hash.
class FlowCounterArray {
 public:
  FlowCounterArray(std::uint64_t n_counters, std::uint64_t seed);

  // Index of the counter owning `key`.
  [[nodiscard]] std::uint64_t index_of(std::span<const std::byte> key) const noexcept;

  // Local FETCH_ADD; returns the value *before* the add (RDMA semantics).
  // Atomic per cell (std::atomic_ref over the 8-byte-aligned cell array),
  // matching the RNIC's serialization of atomics — safe to call from
  // concurrent sharded-pipeline feeders.
  std::uint64_t fetch_add(std::span<const std::byte> key, std::uint64_t delta);

  [[nodiscard]] std::uint64_t read(std::span<const std::byte> key) const noexcept;

  // Raw cells, e.g. for registering as an RDMA MR. Plain span on purpose:
  // atomicity comes from atomic_ref at the access sites, not the type.
  [[nodiscard]] std::span<std::uint64_t> cells() noexcept { return cells_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return cells_.size(); }

 private:
  std::vector<std::uint64_t> cells_;
  std::uint64_t seed_;
};

// Count-Min sketch over 64-bit cells; `add` touches one cell per row.
class CountMinSketch {
 public:
  CountMinSketch(std::uint32_t rows, std::uint64_t cols, std::uint64_t seed);

  // Atomic per-cell adds (see FlowCounterArray::fetch_add).
  void add(std::span<const std::byte> key, std::uint64_t delta);
  [[nodiscard]] std::uint64_t estimate(std::span<const std::byte> key) const noexcept;

  // Cell indices (row-major, row*cols + col) that `add` would touch — the
  // remote FETCH_ADD targets for a switch.
  [[nodiscard]] std::vector<std::uint64_t> cell_indices(
      std::span<const std::byte> key) const;

  // Merges another sketch (same geometry) — what FETCH_ADD achieves
  // implicitly when many switches write into one collector-side sketch.
  // Throws std::invalid_argument on a geometry mismatch (loud in NDEBUG
  // builds too; an out-of-bounds walk is never acceptable in release).
  void merge(const CountMinSketch& other);

  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::span<std::uint64_t> cells() noexcept { return cells_; }

 private:
  std::uint32_t rows_;
  std::uint64_t cols_;
  std::vector<std::uint64_t> cells_;
  std::vector<std::uint64_t> row_seeds_;
};

}  // namespace dart::core
