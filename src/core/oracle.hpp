// Ground-truth oracle for simulations.
//
// §4 defines query outcomes relative to the *true* latest value of a key:
//   correct      — query returned the value last written for the key,
//   empty return — query returned nothing,
//   return error — query returned a value ≠ the latest written value.
// The store cannot distinguish the last two cases from a lucky hit; only the
// simulation, which remembers every write, can. The oracle is that memory,
// plus tallies that the Fig. 3/4/5 benches read out.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/query.hpp"

namespace dart::core {

// Simulation keys are 64-bit ids serialized little-endian; this helper is the
// single definition of that encoding.
[[nodiscard]] inline std::array<std::byte, 8> sim_key(std::uint64_t id) noexcept {
  std::array<std::byte, 8> k;
  for (int i = 0; i < 8; ++i) {
    k[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((id >> (8 * i)) & 0xFF);
  }
  return k;
}

enum class Verdict : std::uint8_t {
  kCorrect,
  kEmptyReturn,
  kReturnError,
  kNeverWritten,  // query for a key the oracle has no record of
};

struct VerdictCounts {
  std::uint64_t correct = 0;
  std::uint64_t empty = 0;
  std::uint64_t error = 0;
  std::uint64_t never_written = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return correct + empty + error + never_written;
  }
  [[nodiscard]] double success_rate() const noexcept {
    const auto t = total();
    return t ? static_cast<double>(correct) / static_cast<double>(t) : 0.0;
  }
  [[nodiscard]] double error_rate() const noexcept {
    const auto t = total();
    return t ? static_cast<double>(error) / static_cast<double>(t) : 0.0;
  }
  [[nodiscard]] double empty_rate() const noexcept {
    const auto t = total();
    return t ? static_cast<double>(empty) / static_cast<double>(t) : 0.0;
  }
};

class Oracle {
 public:
  // Records that `value` is now the latest value for `key`.
  void record(std::uint64_t key_id, std::span<const std::byte> value);

  // Classifies a query result against the recorded truth and tallies it.
  Verdict classify(std::uint64_t key_id, const QueryResult& result);

  [[nodiscard]] const VerdictCounts& counts() const noexcept { return counts_; }
  void reset_counts() noexcept { counts_ = {}; }
  [[nodiscard]] std::size_t keys_tracked() const noexcept {
    return truth_.size();
  }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::byte>> truth_;
  VerdictCounts counts_;
};

}  // namespace dart::core
