#include "core/collector.hpp"

#include <cassert>

namespace dart::core {

Collector::Collector(const DartConfig& config, std::uint32_t collector_id,
                     const CollectorEndpoint& endpoint,
                     const StoreBackendConfig& backend)
    : config_(config),
      memory_(backend.memory_bytes(config), std::byte{0}),
      rnic_(std::make_unique<rdma::SimulatedRnic>(
          /*rkey_seed=*/0x5EED'0000ull + collector_id)) {
  assert(config.valid());
  assert(backend.valid(config));

  pd_ = rnic_->alloc_pd();
  const auto pd = pd_;
  auto mr = rnic_->register_mr(pd, memory_, kDefaultBaseVaddr,
                               rdma::Access::kRemoteWrite |
                                   rdma::Access::kRemoteAtomic);
  assert(mr.ok());

  // The report QP is shared by every switch in the deployment, and switches
  // keep *independent* per-collector PSN counters (§6) — they cannot
  // coordinate a single sequence. PSN-based admission would therefore drop
  // every switch's reports but the furthest-ahead one, so the report QP
  // ignores PSN ordering (reports are idempotent slot writes; loss needs no
  // recovery). PSNs still flow on the wire for per-switch loss accounting.
  const std::uint32_t qpn = qpn_for(collector_id);
  const auto qp_status = rnic_->create_qp(qpn, rdma::QpType::kRc, pd,
                                          rdma::PsnPolicy::kIgnore);
  assert(qp_status.ok());
  (void)qp_status;

  backend_ = make_backend(config, backend, std::span<std::byte>(memory_));

  info_.collector_id = collector_id;
  info_.mac = endpoint.mac;
  info_.ip = endpoint.ip;
  info_.qpn = qpn;
  info_.rkey = mr.value().rkey;
  info_.base_vaddr = kDefaultBaseVaddr;
  // Geometry of the switch row comes from the backend: the KV array's
  // [checksum ‖ value] slots, or the sketch's 8-byte FETCH_ADD cells.
  info_.n_slots = backend_->n_slots();
  info_.slot_bytes = backend_->slot_bytes();
  info_.backend = backend_->kind();
}

Status Collector::enable_primitives(const DtaPrimitivesConfig& config) {
  assert(config.valid());
  assert(primitives_ == nullptr);

  auto regions = std::make_unique<PrimitiveRegions>();
  regions->config = config;
  regions->ring_mem.assign(config.ring.memory_bytes(), std::byte{0});
  regions->counter_mem.assign(config.counters.memory_bytes(), std::byte{0});
  regions->postcard_mem.assign(config.postcards.memory_bytes(), std::byte{0});

  // One MR per region, same PD and report QP as the KV store. Only the
  // counter region needs remote-atomic: Append and Postcarding are plain
  // WRITEs, and withholding atomic access elsewhere keeps a misdirected
  // FETCH_ADD from silently corrupting ring or postcard bytes.
  auto ring_mr = rnic_->register_mr(pd_, regions->ring_mem, kRingBaseVaddr,
                                    rdma::Access::kRemoteWrite);
  if (!ring_mr.ok()) return ring_mr.error();
  auto counter_mr =
      rnic_->register_mr(pd_, regions->counter_mem, kCounterBaseVaddr,
                         rdma::Access::kRemoteWrite |
                             rdma::Access::kRemoteAtomic);
  if (!counter_mr.ok()) return counter_mr.error();
  auto postcard_mr =
      rnic_->register_mr(pd_, regions->postcard_mem, kPostcardBaseVaddr,
                         rdma::Access::kRemoteWrite);
  if (!postcard_mr.ok()) return postcard_mr.error();

  regions->ring = std::make_unique<AppendRing>(
      config.ring, std::span<std::byte>(regions->ring_mem));
  regions->counters = std::make_unique<CounterCellArray>(
      config.counters, std::span<std::byte>(regions->counter_mem));
  regions->postcards = std::make_unique<PostcardStore>(
      config.postcards, std::span<std::byte>(regions->postcard_mem));

  RemoteStoreInfo row = info_;  // same endpoint, QPN, collector id
  row.base_vaddr = kRingBaseVaddr;
  row.rkey = ring_mr.value().rkey;
  row.n_slots = config.ring.n_entries;
  row.slot_bytes = config.ring.entry_bytes();
  regions->ring_info = row;

  row.base_vaddr = kCounterBaseVaddr;
  row.rkey = counter_mr.value().rkey;
  row.n_slots = config.counters.n_counters;
  row.slot_bytes = 8;
  regions->counter_info = row;

  row.base_vaddr = kPostcardBaseVaddr;
  row.rkey = postcard_mr.value().rkey;
  row.n_slots = config.postcards.n_slots();
  row.slot_bytes = config.postcards.slot_bytes();
  regions->postcard_info = row;

  primitives_ = std::move(regions);
  return {};
}

Status Collector::adopt_takeover_qp(std::uint32_t dead_collector_id) {
  const std::uint32_t qpn = qpn_for(dead_collector_id);
  if (rdma::QueuePair* existing = rnic_->qp(qpn)) {
    existing->reconnect(0);
    return {};
  }
  // Same policy rationale as the primary report QP: many switches share the
  // stream with independent PSN counters, so admission ignores PSN order.
  return rnic_->create_qp(qpn, rdma::QpType::kRc, pd_,
                          rdma::PsnPolicy::kIgnore);
}

void Collector::reconnect_report_qp() noexcept {
  if (rdma::QueuePair* qp = rnic_->qp(info_.qpn)) qp->reconnect(0);
}

}  // namespace dart::core
