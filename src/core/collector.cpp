#include "core/collector.hpp"

#include <cassert>

namespace dart::core {

Collector::Collector(const DartConfig& config, std::uint32_t collector_id,
                     const CollectorEndpoint& endpoint)
    : memory_(config.memory_bytes(), std::byte{0}),
      rnic_(std::make_unique<rdma::SimulatedRnic>(
          /*rkey_seed=*/0x5EED'0000ull + collector_id)) {
  assert(config.valid());

  pd_ = rnic_->alloc_pd();
  const auto pd = pd_;
  auto mr = rnic_->register_mr(pd, memory_, kDefaultBaseVaddr,
                               rdma::Access::kRemoteWrite |
                                   rdma::Access::kRemoteAtomic);
  assert(mr.ok());

  // The report QP is shared by every switch in the deployment, and switches
  // keep *independent* per-collector PSN counters (§6) — they cannot
  // coordinate a single sequence. PSN-based admission would therefore drop
  // every switch's reports but the furthest-ahead one, so the report QP
  // ignores PSN ordering (reports are idempotent slot writes; loss needs no
  // recovery). PSNs still flow on the wire for per-switch loss accounting.
  const std::uint32_t qpn = qpn_for(collector_id);
  const auto qp_status = rnic_->create_qp(qpn, rdma::QpType::kRc, pd,
                                          rdma::PsnPolicy::kIgnore);
  assert(qp_status.ok());
  (void)qp_status;

  store_ = std::make_unique<DartStore>(config, std::span<std::byte>(memory_));

  info_.collector_id = collector_id;
  info_.mac = endpoint.mac;
  info_.ip = endpoint.ip;
  info_.qpn = qpn;
  info_.rkey = mr.value().rkey;
  info_.base_vaddr = kDefaultBaseVaddr;
  info_.n_slots = config.n_slots;
  info_.slot_bytes = config.slot_bytes();
}

Status Collector::adopt_takeover_qp(std::uint32_t dead_collector_id) {
  const std::uint32_t qpn = qpn_for(dead_collector_id);
  if (rdma::QueuePair* existing = rnic_->qp(qpn)) {
    existing->reconnect(0);
    return {};
  }
  // Same policy rationale as the primary report QP: many switches share the
  // stream with independent PSN counters, so admission ignores PSN order.
  return rnic_->create_qp(qpn, rdma::QpType::kRc, pd_,
                          rdma::PsnPolicy::kIgnore);
}

void Collector::reconnect_report_qp() noexcept {
  if (rdma::QueuePair* qp = rnic_->qp(info_.qpn)) qp->reconnect(0);
}

}  // namespace dart::core
