#include "core/oracle.hpp"

#include <cstring>

namespace dart::core {

void Oracle::record(std::uint64_t key_id, std::span<const std::byte> value) {
  auto& v = truth_[key_id];
  v.assign(value.begin(), value.end());
}

Verdict Oracle::classify(std::uint64_t key_id, const QueryResult& result) {
  const auto it = truth_.find(key_id);
  if (it == truth_.end()) {
    ++counts_.never_written;
    return Verdict::kNeverWritten;
  }
  if (result.outcome == QueryOutcome::kEmpty) {
    ++counts_.empty;
    return Verdict::kEmptyReturn;
  }
  const auto& want = it->second;
  const bool match = want.size() == result.value.size() &&
                     std::memcmp(want.data(), result.value.data(),
                                 want.size()) == 0;
  if (match) {
    ++counts_.correct;
    return Verdict::kCorrect;
  }
  ++counts_.error;
  return Verdict::kReturnError;
}

}  // namespace dart::core
