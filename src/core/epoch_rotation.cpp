#include "core/epoch_rotation.hpp"

#include <cassert>

namespace dart::core {

RotatingCollector::RotatingCollector(const DartConfig& config,
                                     std::uint32_t collector_id,
                                     const CollectorEndpoint& endpoint)
    : config_(config), collector_id_(collector_id), endpoint_(endpoint),
      rnic_(0x207A7E00ull + collector_id) {
  assert(config.valid());
  const auto pd = rnic_.alloc_pd();
  const auto qp = rnic_.create_qp(Collector::qpn_for(collector_id),
                                  rdma::QpType::kRc, pd,
                                  rdma::PsnPolicy::kIgnore);
  assert(qp.ok());
  (void)qp;

  for (std::uint32_t r = 0; r < 2; ++r) {
    Region& region = regions_[r];
    region.memory.assign(config.memory_bytes(), std::byte{0});
    // Disjoint vaddr ranges so both MRs coexist on the RNIC.
    region.base_vaddr =
        Collector::kDefaultBaseVaddr + r * (config.memory_bytes() + (1u << 20));
    auto mr = rnic_.register_mr(pd, region.memory, region.base_vaddr,
                                rdma::Access::kRemoteWrite |
                                    rdma::Access::kRemoteAtomic);
    assert(mr.ok());
    region.rkey = mr.value().rkey;
    region.store = std::make_unique<DartStore>(
        config, std::span<std::byte>(region.memory));
  }
}

RemoteStoreInfo RotatingCollector::info_for(const Region& region) const noexcept {
  RemoteStoreInfo info;
  info.collector_id = collector_id_;
  info.mac = endpoint_.mac;
  info.ip = endpoint_.ip;
  info.qpn = Collector::qpn_for(collector_id_);
  info.rkey = region.rkey;
  info.base_vaddr = region.base_vaddr;
  info.n_slots = config_.n_slots;
  info.slot_bytes = config_.slot_bytes();
  return info;
}

RemoteStoreInfo RotatingCollector::active_info() const noexcept {
  // Seqlock read: if a flip lands mid-read we retry, so the returned row is
  // always a region that was active for one consistent generation. The body
  // only touches atomics and per-region fields frozen at construction.
  return seq_read(seq_, [&] {
    return info_for(regions_[active_.load(std::memory_order_relaxed)]);
  });
}

RemoteStoreInfo RotatingCollector::standby_info() const noexcept {
  return seq_read(seq_, [&] {
    return info_for(regions_[1 - active_.load(std::memory_order_relaxed)]);
  });
}

std::pair<std::uint64_t, std::uint32_t> RotatingCollector::epoch_snapshot()
    const noexcept {
  return seq_read(seq_, [&] {
    return std::pair{epoch_.load(std::memory_order_relaxed),
                     active_.load(std::memory_order_relaxed)};
  });
}

QueryResult RotatingCollector::query(std::span<const std::byte> key,
                                     ReturnPolicy policy) const {
  // Pin the region choice under the seqlock; the resolve itself reads slot
  // memory, which callers must not overlap with ingest into that region
  // (query after drain — see ingest_pipeline.hpp). A flip between the pin
  // and the resolve is benign: the old region stays registered and readable
  // through the grace period.
  const std::uint32_t region =
      seq_read(seq_, [&] { return active_.load(std::memory_order_relaxed); });
  return QueryEngine(*regions_[region].store).resolve(key, policy);
}

QueryResult RotatingCollector::query_standby(std::span<const std::byte> key,
                                             ReturnPolicy policy) const {
  const std::uint32_t region =
      seq_read(seq_, [&] { return active_.load(std::memory_order_relaxed); });
  return QueryEngine(*regions_[1 - region].store).resolve(key, policy);
}

void RotatingCollector::flip() {
  seq_.write_begin();
  active_.store(1 - active_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  seq_.write_end();
}

Result<std::uint64_t> RotatingCollector::seal_previous(const std::string& path) {
  Region& previous =
      regions_[1 - active_.load(std::memory_order_acquire)];
  auto written = write_epoch_archive(
      path, epoch_.load(std::memory_order_acquire) - 1, *previous.store);
  if (!written.ok()) return written;
  previous.store->clear();
  return written;
}

}  // namespace dart::core
