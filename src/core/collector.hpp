// Collector — a telemetry collection server (§3).
//
// A collector is: a block of DRAM laid out as a DartStore, registered with
// its RNIC as an RDMA memory region so that switches can write reports into
// it, and a query service that resolves operator queries from that same
// memory. The collector's CPU appears *only* on the query path — ingest is
// entirely RNIC → memory, which is the paper's headline property.
//
// RemoteStoreInfo is the row a switch's collector lookup table stores per
// collector (§6: ~20 bytes of SRAM per collector): L2/L3 reachability plus
// the RDMA essentials (QPN, rkey, base vaddr) and the store geometry needed
// to turn a slot index into a remote address.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/primitives.hpp"
#include "core/query.hpp"
#include "core/store.hpp"
#include "core/store_backend.hpp"
#include "net/headers.hpp"
#include "rdma/rnic.hpp"

namespace dart::core {

struct RemoteStoreInfo {
  std::uint32_t collector_id = 0;
  net::MacAddr mac{};
  net::Ipv4Addr ip{};
  std::uint32_t qpn = 0;
  std::uint32_t rkey = 0;
  std::uint64_t base_vaddr = 0;
  std::uint64_t n_slots = 0;
  std::uint32_t slot_bytes = 0;
  // Storage backend behind this row: tells the switch which wire op family
  // a telemetry report becomes (kKv: slot WRITEs; kSketch: per-row
  // FETCH_ADDs, one "slot" = one 8-byte cell).
  StoreBackendKind backend = StoreBackendKind::kKv;

  [[nodiscard]] std::uint64_t slot_vaddr(std::uint64_t index) const noexcept {
    return base_vaddr + index * slot_bytes;
  }
};

struct CollectorEndpoint {
  net::MacAddr mac{};
  net::Ipv4Addr ip{};
};

class Collector {
 public:
  // Brings up the collector: allocates store memory for the chosen backend
  // (store_backend.hpp; default = the KV array), registers it with the RNIC
  // (remote-write + remote-atomic), and opens the report QP.
  Collector(const DartConfig& config, std::uint32_t collector_id,
            const CollectorEndpoint& endpoint,
            const StoreBackendConfig& backend = {});

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  // --- reporting side ------------------------------------------------------
  [[nodiscard]] rdma::SimulatedRnic& rnic() noexcept { return *rnic_; }
  [[nodiscard]] const rdma::RnicCounters& ingest_counters() const noexcept {
    return rnic_->counters();
  }
  [[nodiscard]] RemoteStoreInfo remote_info() const noexcept { return info_; }

  // --- query side (the only CPU involvement) -------------------------------
  [[nodiscard]] QueryResult query(std::span<const std::byte> key,
                                  ReturnPolicy policy = ReturnPolicy::kPlurality) const {
    return backend_->resolve(key, policy);
  }

  // --- storage backend (store_backend.hpp) ---------------------------------
  [[nodiscard]] StoreBackendKind backend_kind() const noexcept {
    return backend_->kind();
  }
  [[nodiscard]] StoreBackend& backend() noexcept { return *backend_; }
  [[nodiscard]] const StoreBackend& backend() const noexcept {
    return *backend_;
  }
  // Sketch-backed collectors only (backend_kind() == kSketch).
  [[nodiscard]] SketchBackend& sketch() noexcept {
    assert(backend_->kind() == StoreBackendKind::kSketch);
    return static_cast<SketchBackend&>(*backend_);
  }
  [[nodiscard]] const SketchBackend& sketch() const noexcept {
    assert(backend_->kind() == StoreBackendKind::kSketch);
    return static_cast<const SketchBackend&>(*backend_);
  }

  // --- direct store access (simulation & tests; KV backend only) -----------
  [[nodiscard]] DartStore& store() noexcept {
    assert(backend_->kind() == StoreBackendKind::kKv);
    return static_cast<KvBackend&>(*backend_).store();
  }
  [[nodiscard]] const DartStore& store() const noexcept {
    assert(backend_->kind() == StoreBackendKind::kKv);
    return static_cast<const KvBackend&>(*backend_).store();
  }
  [[nodiscard]] const DartConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t id() const noexcept { return info_.collector_id; }

  // --- failover / recovery (docs/FAULTS.md) --------------------------------

  // Adopts the report stream of a dead peer: opens the peer's well-known
  // QPN on THIS collector's RNIC (same PD and rkey) so re-targeted switch
  // rows terminate on a dedicated QP with a fresh PSN window instead of
  // interleaving with this collector's own stream. Idempotent — re-adoption
  // reconnects the existing takeover QP.
  Status adopt_takeover_qp(std::uint32_t dead_collector_id);

  // Drain-and-reconnect of this collector's own report QP after an error
  // (rdma::QpState::kError): back to Ready at PSN 0, the fresh sequence the
  // switches' reset PSN registers will produce.
  void reconnect_report_qp() noexcept;

  // --- DTA translator primitives (primitives.hpp) --------------------------

  // Brings up the three primitive regions: each is its own MR on the same
  // PD/QP (counters additionally with remote-atomic access, the FETCH_ADD
  // target). Ingest into them stays RNIC → memory, exactly like the KV
  // store; only drain/read queries touch the CPU. Call at most once.
  Status enable_primitives(const DtaPrimitivesConfig& config);
  [[nodiscard]] bool primitives_enabled() const noexcept {
    return primitives_ != nullptr;
  }

  // Collector-side structures over the regions (enable_primitives first).
  [[nodiscard]] AppendRing& ring() noexcept { return *primitives_->ring; }
  [[nodiscard]] CounterCellArray& counters() noexcept {
    return *primitives_->counters;
  }
  [[nodiscard]] PostcardStore& postcards() noexcept {
    return *primitives_->postcards;
  }

  // Switch table rows for the primitive regions. For the ring, a "slot" is
  // one entry; for counters, one 8-byte cell; for postcards, one hop slot.
  [[nodiscard]] RemoteStoreInfo remote_ring_info() const noexcept {
    return primitives_->ring_info;
  }
  [[nodiscard]] RemoteStoreInfo remote_counter_info() const noexcept {
    return primitives_->counter_info;
  }
  [[nodiscard]] RemoteStoreInfo remote_postcard_info() const noexcept {
    return primitives_->postcard_info;
  }

  // Default QPN scheme: report QPs live at a fixed base + collector id.
  [[nodiscard]] static constexpr std::uint32_t qpn_for(std::uint32_t collector_id) noexcept {
    return 0x100u + collector_id;
  }
  static constexpr std::uint64_t kDefaultBaseVaddr = 0x0000'1000'0000'0000ull;
  // Primitive regions get disjoint fixed bases in the same sparse scheme.
  static constexpr std::uint64_t kRingBaseVaddr = 0x0000'2000'0000'0000ull;
  static constexpr std::uint64_t kCounterBaseVaddr = 0x0000'3000'0000'0000ull;
  static constexpr std::uint64_t kPostcardBaseVaddr = 0x0000'4000'0000'0000ull;

 private:
  struct PrimitiveRegions {
    DtaPrimitivesConfig config;
    std::vector<std::byte> ring_mem;
    std::vector<std::byte> counter_mem;
    std::vector<std::byte> postcard_mem;
    std::unique_ptr<AppendRing> ring;
    std::unique_ptr<CounterCellArray> counters;
    std::unique_ptr<PostcardStore> postcards;
    RemoteStoreInfo ring_info;
    RemoteStoreInfo counter_info;
    RemoteStoreInfo postcard_info;
  };

  DartConfig config_;
  std::vector<std::byte> memory_;
  std::unique_ptr<rdma::SimulatedRnic> rnic_;
  std::unique_ptr<StoreBackend> backend_;
  RemoteStoreInfo info_;
  rdma::PdHandle pd_{};
  std::unique_ptr<PrimitiveRegions> primitives_;
};

}  // namespace dart::core
