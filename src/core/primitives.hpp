// DTA translator primitives (arXiv 2202.02270) — collector-side storage.
//
// The follow-up paper generalizes DART's single Key-Write trick into a
// primitive set a switch "translator" can emit with one-sided RDMA, still
// with zero collector CPU on the ingest path:
//
//   Append       — RDMA WRITE into a per-collector ring buffer. The switch
//                  keeps the tail pointer (a register array, like the PSN
//                  counters); entry e lands at slot (e-1) mod R. Entries are
//                  self-describing: [ seq : 8B LE | value : V bytes ], so
//                  the collector-side reader can recover write order, detect
//                  wrap-around overwrites, and account for lost reports
//                  without any writer-side coordination.
//
//   Key-Increment— RDMA FETCH_ADD on a 64-bit counter cell addressed by
//                  hash(key). Many switches add into one collector-side
//                  array, so the array is the network-wide aggregate with no
//                  merge step (the same path FlowCounterArray/CountMinSketch
//                  model; here it gets its own MR-backed region and wire
//                  crafting mode).
//
//   Postcarding  — per-hop INT postcards of one flow aggregate into a
//                  contiguous *slot group*: group g = hash(flow) mod G, hop
//                  h writes slot g*H + h. One group read returns the whole
//                  path; a per-hop validity bitmap (stored checksum ==
//                  flow checksum) says which hops have reported.
//
// Every structure is a view over a RegionBacking (store.hpp): self-owning in
// simulations, external over a registered MR on a collector. The local
// mutators (write_entry / fetch_add / write_hop) are the reference semantics
// of the corresponding RDMA op — differential tests drive the wire path
// through the simulated RNIC and assert byte-identical memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/store.hpp"

namespace dart::core {

// ---- geometry --------------------------------------------------------------

struct AppendRingConfig {
  std::uint64_t n_entries = 1024;  // ring capacity R
  std::uint32_t value_bytes = 16;  // payload per entry
  [[nodiscard]] constexpr std::uint32_t entry_bytes() const noexcept {
    return 8 + value_bytes;  // [seq u64 LE | value]
  }
  [[nodiscard]] constexpr std::uint64_t memory_bytes() const noexcept {
    return n_entries * entry_bytes();
  }
  // Ring slot of 1-based sequence number `seq`.
  [[nodiscard]] constexpr std::uint64_t slot_of(std::uint64_t seq) const noexcept {
    return (seq - 1) % n_entries;
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return n_entries > 0 && value_bytes > 0;
  }
};

struct CounterArrayConfig {
  std::uint64_t n_counters = 1024;
  std::uint64_t seed = 0;
  [[nodiscard]] constexpr std::uint64_t memory_bytes() const noexcept {
    return n_counters * 8;
  }
  // Cell owning `key` — the same formula FlowCounterArray uses, so wire and
  // sketch-reference paths agree cell-for-cell.
  [[nodiscard]] std::uint64_t index_of(std::span<const std::byte> key) const noexcept;
  [[nodiscard]] constexpr bool valid() const noexcept { return n_counters > 0; }
};

struct PostcardConfig {
  std::uint64_t n_groups = 256;    // G flow groups
  std::uint32_t max_hops = 8;      // H slots per group; bitmap is u32 → ≤ 32
  std::uint32_t checksum_bits = 16;
  std::uint32_t value_bytes = 8;   // INT metadata per hop
  std::uint64_t seed = 0;
  [[nodiscard]] constexpr std::uint32_t checksum_bytes() const noexcept {
    return (checksum_bits + 7) / 8;
  }
  [[nodiscard]] constexpr std::uint32_t slot_bytes() const noexcept {
    return checksum_bytes() + value_bytes;
  }
  [[nodiscard]] constexpr std::uint64_t n_slots() const noexcept {
    return n_groups * max_hops;
  }
  [[nodiscard]] constexpr std::uint64_t memory_bytes() const noexcept {
    return n_slots() * slot_bytes();
  }
  // Group owning `flow_key`, and the flat slot index of one hop of a group.
  [[nodiscard]] std::uint64_t group_of(std::span<const std::byte> flow_key) const noexcept;
  [[nodiscard]] constexpr std::uint64_t slot_index(std::uint64_t group,
                                                   std::uint32_t hop) const noexcept {
    return group * max_hops + hop;
  }
  // b-bit flow checksum stamped into each hop slot (validity evidence).
  [[nodiscard]] std::uint32_t checksum_of(std::span<const std::byte> flow_key) const noexcept;
  [[nodiscard]] constexpr bool valid() const noexcept {
    return n_groups > 0 && max_hops >= 1 && max_hops <= 32 &&
           checksum_bits >= 1 && checksum_bits <= 32 && value_bytes > 0;
  }
};

// One row per primitive; a collector enables all three as a set (each gets
// its own MR-backed region).
struct DtaPrimitivesConfig {
  AppendRingConfig ring;
  CounterArrayConfig counters;
  PostcardConfig postcards;
  [[nodiscard]] constexpr bool valid() const noexcept {
    return ring.valid() && counters.valid() && postcards.valid();
  }
};

// Seeds derived from the deployment master seed, geometry left at defaults.
[[nodiscard]] DtaPrimitivesConfig default_primitives(std::uint64_t master_seed);

// ---- Append ----------------------------------------------------------------

// Collector-side reader over the ring region. The *writer* tail lives on the
// switch (its register array); the reader infers progress from the sequence
// numbers embedded in entries. write_entry is the local reference of the
// switch's RDMA WRITE.
class AppendRing {
 public:
  explicit AppendRing(const AppendRingConfig& config);
  AppendRing(const AppendRingConfig& config, std::span<std::byte> memory);

  [[nodiscard]] const AppendRingConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::span<std::byte> memory() noexcept {
    return backing_.memory();
  }
  [[nodiscard]] std::span<const std::byte> memory() const noexcept {
    return backing_.memory();
  }

  // The exact bytes the wire WRITE carries: seq (8B LE) ‖ value. Appends to
  // `out`; shared with ReportCrafter::craft_append.
  static void encode_entry(std::uint64_t seq, std::span<const std::byte> value,
                           std::vector<std::byte>& out);

  // Local reference of one switch Append: stores entry `seq` (1-based) at
  // slot_of(seq), overwriting whatever was there.
  void write_entry(std::uint64_t seq, std::span<const std::byte> value);

  // Sequence number stored at a ring slot (0 = never written).
  [[nodiscard]] std::uint64_t entry_seq(std::uint64_t slot) const noexcept;

  struct Entry {
    std::uint64_t seq = 0;
    std::vector<std::byte> value;
  };
  struct DrainResult {
    std::vector<Entry> entries;  // ascending seq
    // Sequence numbers the cursor skipped this drain: entries lapped
    // (overwritten) by the writer before we read them, plus reports the
    // network lost. The reader cannot tell the two apart — both are holes
    // in the recovered sequence.
    std::uint64_t missed = 0;
    std::uint64_t next_seq = 0;  // cursor after this drain
  };

  // Collects every unread entry (seq ≥ cursor), oldest first, up to
  // `max_entries`; advances the cursor past what it returns and accounts for
  // the holes it crossed.
  DrainResult drain(std::size_t max_entries = SIZE_MAX);

  [[nodiscard]] std::uint64_t cursor() const noexcept { return next_seq_; }
  [[nodiscard]] std::uint64_t missed_total() const noexcept { return missed_; }

 private:
  AppendRingConfig config_;
  RegionBacking backing_;
  std::uint64_t next_seq_ = 1;  // first sequence number not yet returned
  std::uint64_t missed_ = 0;
};

// ---- Key-Increment ---------------------------------------------------------

// Flat array of host-endian 64-bit counter cells over a byte region — the
// FETCH_ADD target a Key-Increment frame addresses. Local fetch_add mirrors
// the RNIC's semantics exactly (host-endian word, returns the prior value).
class CounterCellArray {
 public:
  explicit CounterCellArray(const CounterArrayConfig& config);
  CounterCellArray(const CounterArrayConfig& config,
                   std::span<std::byte> memory);

  [[nodiscard]] const CounterArrayConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::span<std::byte> memory() noexcept {
    return backing_.memory();
  }
  [[nodiscard]] std::span<const std::byte> memory() const noexcept {
    return backing_.memory();
  }

  // Local FETCH_ADD; returns the value *before* the add (RDMA semantics).
  std::uint64_t fetch_add(std::span<const std::byte> key, std::uint64_t delta);

  [[nodiscard]] std::uint64_t read(std::span<const std::byte> key) const noexcept;
  [[nodiscard]] std::uint64_t read_cell(std::uint64_t index) const noexcept;

 private:
  CounterArrayConfig config_;
  RegionBacking backing_;
};

// ---- Postcarding -----------------------------------------------------------

// Slot-group region: G groups × H hop slots, each slot [checksum | value]
// like a DartStore slot. write_hop is the local reference of the switch's
// postcard WRITE; read_group assembles a flow's path with a validity bitmap.
class PostcardStore {
 public:
  explicit PostcardStore(const PostcardConfig& config);
  PostcardStore(const PostcardConfig& config, std::span<std::byte> memory);

  [[nodiscard]] const PostcardConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::span<std::byte> memory() noexcept {
    return backing_.memory();
  }
  [[nodiscard]] std::span<const std::byte> memory() const noexcept {
    return backing_.memory();
  }

  // The exact bytes the wire WRITE carries: flow checksum (LE, ceil(b/8)
  // bytes) ‖ value. Appends to `out`; shared with craft_postcard.
  static void encode_hop_payload(const PostcardConfig& config,
                                 std::span<const std::byte> flow_key,
                                 std::span<const std::byte> value,
                                 std::vector<std::byte>& out);

  // Local reference of one postcard: hop `hop` of `flow_key`'s group.
  void write_hop(std::span<const std::byte> flow_key, std::uint32_t hop,
                 std::span<const std::byte> value);

  struct GroupView {
    std::uint64_t group = 0;
    // Bit h set iff hop h's stored checksum matches the flow's checksum —
    // evidence (not proof: b-bit collisions exist) that hop h reported.
    std::uint32_t valid_mask = 0;
    std::vector<std::vector<std::byte>> hops;  // H values, valid or not
  };
  [[nodiscard]] GroupView read_group(std::span<const std::byte> flow_key) const;

 private:
  PostcardConfig config_;
  RegionBacking backing_;
};

}  // namespace dart::core
