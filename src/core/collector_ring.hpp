// CollectorRing — consistent-hash collector selection for the switch hot
// path (cf. the `cht_height` consistent-hash table of the vigor load
// balancer and Maglev's permutation fill).
//
// The ring maps a key's 64-bit collector hash to one member of a dynamic
// membership set drawn from a fixed capacity universe [0, capacity). Its
// contract, which the dartcheck suite pins property-by-property:
//
//   determinism      the mapping is a pure function of (seed, capacity,
//                    height_per_member, membership) — two switch replicas
//                    built from the same deployment config agree on every
//                    key without talking to each other.
//   minimal movement rebuild(members \ {x}) changes owners ONLY for buckets
//                    x owned, and re-adding x restores the exact prior
//                    table. This holds for arbitrary join/leave sequences,
//                    because each bucket has a fixed, membership-independent
//                    priority order over the capacity universe and the owner
//                    is simply the highest-priority live member.
//   balance          at full membership the table is filled Maglev-style
//                    (turn-taking over per-member permutations), so bucket
//                    counts differ by at most one: max/min <= (h+1)/h with
//                    h = floor(H / capacity) >= height_per_member.
//   O(1) lookup      lookup is one modulo + one table load from a flat
//                    owner array; a batch form composes with the AVX2
//                    HashFamily::collector_hashes entry point.
//
// Construction: H is the smallest prime >= capacity * height_per_member, so
// each member's (offset, skip) stride walk is a full permutation of the
// bucket space. Rank 0 of every bucket's priority list comes from the
// balanced turn-taking fill; when a bucket's rank-0 member is absent, the
// owner falls back to the live member whose permutation reaches that bucket
// earliest (position computed in O(1) via the modular inverse of the skip).
//
// Thread safety: lookups are wait-free against a concurrent rebuild — the
// owner table is an immutable snapshot behind a plain atomic pointer,
// swapped wholesale. Retired snapshots are kept alive until the ring is
// destroyed instead of reference-counting the read path: rebuilds are rare
// control-plane events (join/leave/failover), each table is O(height)
// small, and libstdc++'s atomic<shared_ptr> unlocks its reader-side spin
// bit with a relaxed RMW, which leaves no happens-before edge to the next
// writer (a formal data race TSan rightly flags). The TSan matrix hammers
// exactly this swap (CollectorRingHammer).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "core/config.hpp"

namespace dart::core {

struct CollectorRingConfig {
  // Member-id universe: valid members are [0, capacity). Fixed for the
  // ring's lifetime — growing a fleet past capacity is a (rare) config
  // change, not a membership change.
  std::uint32_t capacity = 16;
  // Table height per capacity slot; the prime table height H is the
  // smallest prime >= capacity * height_per_member.
  std::uint32_t height_per_member = 64;
  // Deployment seed (DartConfig::master_seed); both replicas of a switch
  // must use the same value.
  std::uint64_t seed = 0xDA27'0000'0001ull;
};

class CollectorRing {
 public:
  // lookup() result when the membership is empty.
  static constexpr std::uint32_t kNoOwner = 0xFFFF'FFFFu;

  // Starts at FULL membership ([0, capacity)).
  explicit CollectorRing(const CollectorRingConfig& config);

  // Recomputes the owner table for `members` (subset of [0, capacity);
  // order and duplicates are ignored). Out-of-range ids are dropped.
  // Concurrent lookups keep reading the previous snapshot until the swap.
  void rebuild(std::span<const std::uint32_t> members);

  // Single-member convenience forms (rebuild with the membership +/- m).
  void remove_member(std::uint32_t m);
  void add_member(std::uint32_t m);

  // Owner of a key given its collector hash (HashFamily::collector_hash),
  // or kNoOwner when the membership is empty. Wait-free.
  [[nodiscard]] std::uint32_t lookup(std::uint64_t collector_hash) const noexcept {
    const auto table = snapshot();
    return table->owner[collector_hash % table->owner.size()];
  }

  // Batch lookup over raw hashes: out[i] = lookup(hashes[i]), one snapshot
  // load for the whole batch.
  void lookup_batch(const std::uint64_t* hashes, std::size_t count,
                    std::uint32_t* out) const noexcept;

  // Owner under FULL membership, regardless of the live set: the bucket's
  // rank-0 member (at full membership owner == rank-0 by construction). The
  // fault plane uses this bring-up mapping to key degradation state.
  [[nodiscard]] std::uint32_t home_lookup(
      std::uint64_t collector_hash) const noexcept {
    return rank0_[collector_hash % rank0_.size()];
  }

  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return config_.capacity;
  }
  [[nodiscard]] const CollectorRingConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t member_count() const {
    return snapshot()->member_count;
  }
  [[nodiscard]] bool is_member(std::uint32_t m) const {
    const auto table = snapshot();
    return m < config_.capacity && table->live[m] != 0;
  }
  [[nodiscard]] std::vector<std::uint32_t> members() const;  // sorted

  // The current owner table, bucket by bucket (kNoOwner entries only when
  // the membership is empty) — what the golden trace pins and the movement
  // properties diff.
  [[nodiscard]] std::vector<std::uint32_t> owner_table() const {
    return snapshot()->owner;
  }

  // Buckets owned per member id (size = capacity) — the balance observable.
  [[nodiscard]] std::vector<std::uint32_t> bucket_counts() const;

  [[nodiscard]] std::uint64_t rebuilds() const noexcept {
    return rebuilds_.load(std::memory_order_relaxed);
  }

 private:
  struct Table {
    std::vector<std::uint32_t> owner;  // height entries
    std::vector<std::uint8_t> live;    // capacity entries (membership set)
    std::size_t member_count = 0;
  };

  [[nodiscard]] const Table* snapshot() const noexcept {
    return table_.load(std::memory_order_acquire);
  }

  // Retains `table` in history_ (snapshots stay valid for the ring's
  // lifetime) and publishes it to readers.
  void publish(std::unique_ptr<const Table> table);

  // Position of bucket `b` in member `m`'s permutation, in O(1).
  [[nodiscard]] std::uint32_t position_of(std::uint32_t m,
                                          std::uint32_t b) const noexcept;

  void rebuild_from_live(std::vector<std::uint8_t> live);

  CollectorRingConfig config_;
  std::uint32_t height_ = 0;
  // Per-member permutation parameters: perm_m(i) = (offset + i * skip) % H,
  // H prime so any skip in [1, H) is a full cycle. `inv_skip` is skip's
  // modular inverse, used to invert the walk (bucket -> position).
  std::vector<std::uint32_t> offset_;
  std::vector<std::uint32_t> skip_;
  std::vector<std::uint32_t> inv_skip_;
  // Rank-0 owner per bucket from the balanced Maglev-style turn-taking fill
  // over the FULL capacity universe. Membership-independent; computed once.
  std::vector<std::uint32_t> rank0_;
  std::atomic<const Table*> table_{nullptr};
  // Every snapshot ever published, newest last; guards concurrent
  // control-plane writers and keeps retired tables alive for readers.
  std::mutex history_mutex_;
  std::vector<std::unique_ptr<const Table>> history_;
  std::atomic<std::uint64_t> rebuilds_{0};
};

// CollectorSelector — the selection-policy seam. One object per party that
// routes keys to collectors (each switch pipeline, the operator client, the
// query gateway); every instance built from the same DartConfig and
// membership produces the same mapping, keeping selection stateless across
// the deployment (§3.1).
//
//   kModulo  collector_hash(key) % |members| indexed into the sorted member
//            list. With the contiguous full membership this is bit-identical
//            to the legacy HashFamily::collector_of, and with a sparse set
//            it degrades gracefully (never routes to an absent id) — but a
//            membership change remaps ~every key.
//   kRing    CollectorRing lookup: a membership change moves only the
//            affected ~K/N keys.
//
// home_owner_of() answers against the FULL capacity membership no matter
// what the live membership is — the fault plane uses it to decide whether a
// key's data was originally owned by a now-dead collector (degraded-flag
// marking), which needs the bring-up mapping, not the failover one.
class CollectorSelector {
 public:
  CollectorSelector(const DartConfig& config, std::uint32_t n_collectors);

  [[nodiscard]] CollectorSelection policy() const noexcept {
    return policy_;
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return ring_.capacity();
  }

  // Membership control (same snapshot semantics as CollectorRing).
  void set_members(std::span<const std::uint32_t> members);
  void remove_member(std::uint32_t m);
  void add_member(std::uint32_t m);
  [[nodiscard]] bool is_member(std::uint32_t m) const;
  [[nodiscard]] std::size_t member_count() const;
  [[nodiscard]] std::vector<std::uint32_t> members() const;

  // Owner of `key` under the LIVE membership; CollectorRing::kNoOwner when
  // the membership is empty.
  [[nodiscard]] std::uint32_t owner_of(std::span<const std::byte> key) const;
  [[nodiscard]] std::uint32_t owner_of_hash(std::uint64_t collector_hash) const;

  // Batch owner_of over strided keys (composes with the AVX2 batch hash).
  void owners_of(const std::byte* keys, std::size_t key_len,
                 std::size_t stride, std::size_t count,
                 std::uint32_t* out) const;

  // Owner under the FULL [0, capacity) membership (the bring-up mapping).
  [[nodiscard]] std::uint32_t home_owner_of(
      std::span<const std::byte> key) const;

  [[nodiscard]] const CollectorRing& ring() const noexcept { return ring_; }
  [[nodiscard]] const HashFamily& hashes() const noexcept { return hashes_; }

 private:
  [[nodiscard]] std::uint32_t modulo_owner(std::uint64_t hash) const;

  void publish_mod_members(std::vector<std::uint32_t> members);

  CollectorSelection policy_;
  HashFamily hashes_;
  CollectorRing ring_;
  // kModulo membership (sorted); the ring keeps its own. Same snapshot
  // scheme as the ring's owner table: a plain atomic pointer into a
  // kept-until-destruction history (see the thread-safety note above).
  std::atomic<const std::vector<std::uint32_t>*> mod_members_{nullptr};
  std::mutex mod_history_mutex_;
  std::vector<std::unique_ptr<const std::vector<std::uint32_t>>> mod_history_;
};

}  // namespace dart::core
