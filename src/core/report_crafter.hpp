// ReportCrafter — turns (key, value, slot copy n) into a complete RoCEv2
// report frame, byte-identical to what the DART switch pipeline emits.
//
// This is the host-side reference for the P4 deparser logic of §6: compute
// the slot address with the global hash family, build UDP/4791 + BTH(WRITE
// ONLY) + RETH + [checksum ‖ value] + iCRC. switchsim::DartSwitch reproduces
// the same computation with P4-style externs; tests assert the two paths
// produce frames the RNIC resolves to identical memory effects.
//
// Also crafts the §7 extension operations: FETCH_ADD (collector-side flow
// counters / sketch aggregation) and COMPARE_SWAP (insert-if-empty).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "core/collector.hpp"
#include "core/config.hpp"
#include "core/primitives.hpp"
#include "net/headers.hpp"
#include "rdma/roce.hpp"

namespace dart::core {

// Identity of the report sender (a switch or an end-host agent).
struct ReporterEndpoint {
  net::MacAddr mac{};
  net::Ipv4Addr ip{};
  std::uint16_t udp_src_port = 0xC000;  // RoCEv2 source ports use the dynamic range
};

// Precomputed frame skeleton for one (reporter endpoint, collector) pair.
//
// Everything up to the BTH PSN word — Ethernet, IPv4 (including its header
// checksum), UDP, and BTH bytes 0..7 — is invariant for a fixed pair, as is
// the frame length for a fixed DartConfig. A template stores the full
// reference frame once plus the streaming-CRC state over the masked
// invariant prefix, so ReportCrafter::craft_*_into can emit a report by
// memcpy + patching the variant fields (PSN, vaddr(s), operands, payload)
// and resuming the cached CRC over the ~50 variant bytes: zero allocations
// and no header reserialization per report. This mirrors what the real
// datapaths do — a Tofino deparser emits a fixed header template and a
// ConnectX engine computes iCRC in flight; neither rebuilds headers per
// packet.
//
// Built by ReportCrafter::make_*_template; frames produced through a
// template are byte-identical to the corresponding craft_* output (tests
// assert this, iCRC included).
class FrameTemplate {
 public:
  enum class Kind : std::uint8_t {
    kInvalid,
    kWrite,
    kFetchAdd,
    kCompareSwap,
    kMultiwrite,
    kAppend,    // DTA Append: WRITE of [seq | value] into the ring region
    kPostcard,  // DTA Postcarding: WRITE of [checksum | value] into a group
  };

  FrameTemplate() = default;

  [[nodiscard]] bool valid() const noexcept { return kind_ != Kind::kInvalid; }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  // Exact size of every frame crafted from this template; `out` buffers
  // passed to craft_*_into must hold at least this many bytes.
  [[nodiscard]] std::size_t frame_size() const noexcept {
    return prototype_.size();
  }
  // Destination the template was built for.
  [[nodiscard]] const RemoteStoreInfo& dst() const noexcept { return dst_; }

 private:
  friend class ReportCrafter;

  Kind kind_ = Kind::kInvalid;
  std::vector<std::byte> prototype_;  // reference frame, variant fields zeroed
  Crc32 crc_prefix_;  // CRC state over the masked invariant prefix
  RemoteStoreInfo dst_{};
};

class ReportCrafter {
 public:
  explicit ReportCrafter(const DartConfig& config)
      : config_(config), hashes_(config.n_addresses, config.master_seed) {}

  [[nodiscard]] const DartConfig& config() const noexcept { return config_; }
  [[nodiscard]] const HashFamily& hashes() const noexcept { return hashes_; }

  // Collector that owns `key`, among `n_collectors` (§3.2 step 1).
  [[nodiscard]] std::uint32_t collector_of(std::span<const std::byte> key,
                                           std::uint32_t n_collectors) const noexcept {
    return hashes_.collector_of(key, n_collectors);
  }

  // Remote vaddr of copy `n` of `key` at collector `dst`.
  [[nodiscard]] std::uint64_t slot_vaddr(const RemoteStoreInfo& dst,
                                         std::span<const std::byte> key,
                                         std::uint32_t n) const noexcept {
    return dst.slot_vaddr(hashes_.address_of(key, n, dst.n_slots));
  }

  // Crafts one RDMA WRITE report for copy `n` of (key, value). `psn` is the
  // sender's per-collector sequence number (the register array of §6).
  [[nodiscard]] std::vector<std::byte> craft_write(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::span<const std::byte> key, std::span<const std::byte> value,
      std::uint32_t n, std::uint32_t psn) const;

  // Crafts a FETCH_ADD on the 64-bit word at remote `vaddr`.
  [[nodiscard]] std::vector<std::byte> craft_fetch_add(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::uint64_t vaddr, std::uint64_t addend, std::uint32_t psn) const;

  // Crafts a COMPARE_SWAP on the 64-bit word at remote `vaddr`.
  [[nodiscard]] std::vector<std::byte> craft_compare_swap(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::uint64_t vaddr, std::uint64_t compare, std::uint64_t swap,
      std::uint32_t psn) const;

  // §7 SmartNIC extension: ONE frame that fills all N slots of (key, value).
  // Requires the collector RNIC to have DTA multiwrite enabled.
  [[nodiscard]] std::vector<std::byte> craft_multiwrite(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::span<const std::byte> key, std::span<const std::byte> value,
      std::uint32_t psn) const;

  // --- DTA translator primitives (primitives.hpp) --------------------------
  //
  // Crafting modes for the Append / Key-Increment / Postcarding regions.
  // `dst` is the matching region row from the collector
  // (remote_ring_info() / remote_counter_info() / remote_postcard_info()).

  // Building block: RDMA WRITE of an arbitrary payload at `vaddr` in `dst`.
  [[nodiscard]] std::vector<std::byte> craft_raw_write(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::uint64_t vaddr, std::span<const std::byte> payload,
      std::uint32_t psn) const;

  // Append: entry `seq` (the switch's tail value, 1-based) into the ring.
  [[nodiscard]] std::vector<std::byte> craft_append(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      const AppendRingConfig& ring, std::uint64_t seq,
      std::span<const std::byte> value, std::uint32_t psn) const;

  // Key-Increment: FETCH_ADD of `delta` on the cell owning `key`.
  [[nodiscard]] std::vector<std::byte> craft_key_increment(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      const CounterArrayConfig& counters, std::span<const std::byte> key,
      std::uint64_t delta, std::uint32_t psn) const;

  // Sketch backend (store_backend.hpp): FETCH_ADD of `delta` on row `row`'s
  // cell of `key` in a sketch-backed collector's MR. One telemetry report =
  // one such frame per sketch row; `dst` is the sketch collector's row
  // (slot_bytes == 8, one slot per cell).
  [[nodiscard]] std::vector<std::byte> craft_sketch_increment(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      const SketchBackendConfig& sketch, std::span<const std::byte> key,
      std::uint32_t row, std::uint64_t delta, std::uint32_t psn) const;

  // Postcarding: hop `hop` of `flow_key`'s slot group.
  [[nodiscard]] std::vector<std::byte> craft_postcard(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      const PostcardConfig& postcards, std::span<const std::byte> flow_key,
      std::uint32_t hop, std::span<const std::byte> value,
      std::uint32_t psn) const;

  // --- Zero-allocation fast path -----------------------------------------
  //
  // make_*_template precomputes the frame skeleton for a (src, dst) pair;
  // the craft_*_into counterparts patch variant fields into a caller-owned
  // buffer and return the frame length, or 0 if the template kind does not
  // match or `out` is smaller than tpl.frame_size(). Output is byte-
  // identical to the matching craft_* call.

  [[nodiscard]] FrameTemplate make_write_template(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src) const;
  // `op` must be kRcFetchAdd or kRcCompareSwap; anything else yields an
  // invalid template.
  [[nodiscard]] FrameTemplate make_atomic_template(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      rdma::Opcode op) const;
  [[nodiscard]] FrameTemplate make_multiwrite_template(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src) const;
  [[nodiscard]] FrameTemplate make_append_template(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      const AppendRingConfig& ring) const;
  // Key-Increment frames come from make_atomic_template(kRcFetchAdd) with
  // `dst` = the counter region row; see craft_key_increment_into.
  [[nodiscard]] FrameTemplate make_postcard_template(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      const PostcardConfig& postcards) const;

  std::size_t craft_write_into(const FrameTemplate& tpl,
                               std::span<const std::byte> key,
                               std::span<const std::byte> value,
                               std::uint32_t n, std::uint32_t psn,
                               std::span<std::byte> out) const;

  // Same patching as craft_write_into with the slot address (store index,
  // not vaddr) already computed by the caller — the ingest feeder hashes
  // each key once for shard routing and reuses that address here instead of
  // hashing again inside the crafter.
  std::size_t craft_write_into_at(const FrameTemplate& tpl,
                                  std::span<const std::byte> key,
                                  std::span<const std::byte> value,
                                  std::uint64_t slot_addr, std::uint32_t psn,
                                  std::span<std::byte> out) const;

  // One WRITE report of a burst (see craft_write_into_n).
  struct WriteOp {
    std::span<const std::byte> key;
    std::span<const std::byte> value;
    std::uint32_t n = 0;    // slot copy index
    std::uint32_t psn = 0;
  };

  // Burst crafting: emits ops.size() frames back-to-back into `out`
  // (tpl.frame_size() bytes each), batch-hashing the slot addresses of each
  // chunk through HashFamily::address_of_batch so 8-byte keys ride the AVX2
  // XXH64 kernel 4 lanes at a time. Every frame is byte-identical to the
  // corresponding craft_write_into call. Returns the number of frames
  // crafted: ops.size(), or 0 if the template kind does not match or `out`
  // is smaller than ops.size() * tpl.frame_size().
  std::size_t craft_write_into_n(const FrameTemplate& tpl,
                                 std::span<const WriteOp> ops,
                                 std::span<std::byte> out) const;
  std::size_t craft_fetch_add_into(const FrameTemplate& tpl,
                                   std::uint64_t vaddr, std::uint64_t addend,
                                   std::uint32_t psn,
                                   std::span<std::byte> out) const;
  std::size_t craft_compare_swap_into(const FrameTemplate& tpl,
                                      std::uint64_t vaddr,
                                      std::uint64_t compare,
                                      std::uint64_t swap, std::uint32_t psn,
                                      std::span<std::byte> out) const;
  std::size_t craft_multiwrite_into(const FrameTemplate& tpl,
                                    std::span<const std::byte> key,
                                    std::span<const std::byte> value,
                                    std::uint32_t psn,
                                    std::span<std::byte> out) const;
  std::size_t craft_append_into(const FrameTemplate& tpl,
                                const AppendRingConfig& ring,
                                std::uint64_t seq,
                                std::span<const std::byte> value,
                                std::uint32_t psn,
                                std::span<std::byte> out) const;
  // `tpl` must be a kFetchAdd template built for the counter region row.
  std::size_t craft_key_increment_into(const FrameTemplate& tpl,
                                       const CounterArrayConfig& counters,
                                       std::span<const std::byte> key,
                                       std::uint64_t delta, std::uint32_t psn,
                                       std::span<std::byte> out) const;
  // `tpl` must be a kFetchAdd template built for the sketch-backed row.
  std::size_t craft_sketch_increment_into(const FrameTemplate& tpl,
                                          const SketchBackendConfig& sketch,
                                          std::span<const std::byte> key,
                                          std::uint32_t row,
                                          std::uint64_t delta,
                                          std::uint32_t psn,
                                          std::span<std::byte> out) const;
  std::size_t craft_postcard_into(const FrameTemplate& tpl,
                                  const PostcardConfig& postcards,
                                  std::span<const std::byte> flow_key,
                                  std::uint32_t hop,
                                  std::span<const std::byte> value,
                                  std::uint32_t psn,
                                  std::span<std::byte> out) const;

 private:
  [[nodiscard]] std::vector<std::byte> wrap_frame(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::span<const std::byte> roce_payload) const;

  // The shared patch step of the WRITE fast paths: memcpy the prototype,
  // patch PSN / vaddr / payload, resume the cached prefix CRC. `vaddr` is
  // the remote virtual address (already through RemoteStoreInfo::slot_vaddr).
  std::size_t patch_write_frame(const FrameTemplate& tpl,
                                std::span<const std::byte> key,
                                std::span<const std::byte> value,
                                std::uint64_t vaddr, std::uint32_t psn,
                                std::span<std::byte> out) const;

  DartConfig config_;
  HashFamily hashes_;
};

}  // namespace dart::core
