// ReportCrafter — turns (key, value, slot copy n) into a complete RoCEv2
// report frame, byte-identical to what the DART switch pipeline emits.
//
// This is the host-side reference for the P4 deparser logic of §6: compute
// the slot address with the global hash family, build UDP/4791 + BTH(WRITE
// ONLY) + RETH + [checksum ‖ value] + iCRC. switchsim::DartSwitch reproduces
// the same computation with P4-style externs; tests assert the two paths
// produce frames the RNIC resolves to identical memory effects.
//
// Also crafts the §7 extension operations: FETCH_ADD (collector-side flow
// counters / sketch aggregation) and COMPARE_SWAP (insert-if-empty).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "core/collector.hpp"
#include "core/config.hpp"
#include "net/headers.hpp"

namespace dart::core {

// Identity of the report sender (a switch or an end-host agent).
struct ReporterEndpoint {
  net::MacAddr mac{};
  net::Ipv4Addr ip{};
  std::uint16_t udp_src_port = 0xC000;  // RoCEv2 source ports use the dynamic range
};

class ReportCrafter {
 public:
  explicit ReportCrafter(const DartConfig& config)
      : config_(config), hashes_(config.n_addresses, config.master_seed) {}

  [[nodiscard]] const DartConfig& config() const noexcept { return config_; }
  [[nodiscard]] const HashFamily& hashes() const noexcept { return hashes_; }

  // Collector that owns `key`, among `n_collectors` (§3.2 step 1).
  [[nodiscard]] std::uint32_t collector_of(std::span<const std::byte> key,
                                           std::uint32_t n_collectors) const noexcept {
    return hashes_.collector_of(key, n_collectors);
  }

  // Remote vaddr of copy `n` of `key` at collector `dst`.
  [[nodiscard]] std::uint64_t slot_vaddr(const RemoteStoreInfo& dst,
                                         std::span<const std::byte> key,
                                         std::uint32_t n) const noexcept {
    return dst.slot_vaddr(hashes_.address_of(key, n, dst.n_slots));
  }

  // Crafts one RDMA WRITE report for copy `n` of (key, value). `psn` is the
  // sender's per-collector sequence number (the register array of §6).
  [[nodiscard]] std::vector<std::byte> craft_write(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::span<const std::byte> key, std::span<const std::byte> value,
      std::uint32_t n, std::uint32_t psn) const;

  // Crafts a FETCH_ADD on the 64-bit word at remote `vaddr`.
  [[nodiscard]] std::vector<std::byte> craft_fetch_add(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::uint64_t vaddr, std::uint64_t addend, std::uint32_t psn) const;

  // Crafts a COMPARE_SWAP on the 64-bit word at remote `vaddr`.
  [[nodiscard]] std::vector<std::byte> craft_compare_swap(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::uint64_t vaddr, std::uint64_t compare, std::uint64_t swap,
      std::uint32_t psn) const;

  // §7 SmartNIC extension: ONE frame that fills all N slots of (key, value).
  // Requires the collector RNIC to have DTA multiwrite enabled.
  [[nodiscard]] std::vector<std::byte> craft_multiwrite(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::span<const std::byte> key, std::span<const std::byte> value,
      std::uint32_t psn) const;

 private:
  [[nodiscard]] std::vector<std::byte> wrap_frame(
      const RemoteStoreInfo& dst, const ReporterEndpoint& src,
      std::span<const std::byte> roce_payload) const;

  DartConfig config_;
  HashFamily hashes_;
};

}  // namespace dart::core
