// DART deployment configuration — the parameters §4 analyzes.
//
// One DartConfig is shared verbatim by every switch, every collector, and
// every query client in a deployment; that shared knowledge (sizes + hash
// seeds) is what makes the key→address mapping stateless (§3.1).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dart::core {

// How a writer fills the N slots of a key.
enum class WriteMode : std::uint8_t {
  // One operation fills all N addresses — what a SmartNIC multi-DMA
  // primitive would provide (§7), and what pure simulations use.
  kAllSlots,
  // Each report packet writes ONE uniformly random slot n ∈ [0,N) — the
  // RDMA-standard behaviour of the Tofino prototype (§3.1/§6), which relies
  // on multiple reports per key to eventually populate all N slots.
  kStochastic,
};

// How a writer (switch) and a querier pick the collector that owns a key.
// Part of the deployment config for the same reason the hash seeds are:
// every party must select identically or the stateless mapping breaks.
enum class CollectorSelection : std::uint8_t {
  // hash % n over a contiguous [0, n) id space — the original prototype
  // behaviour. A join/leave remaps ~every key (kept for A/B comparison).
  kModulo,
  // Consistent-hash ring (core/collector_ring.hpp): membership changes move
  // only ~K/N keys, and a removed member's keys come back on re-add.
  kRing,
};

struct DartConfig {
  // M — number of slots in the collector's slot array.
  std::uint64_t n_slots = 1 << 20;
  // N — per-key redundancy (addresses per key), §3.1. Paper default: 2.
  std::uint32_t n_addresses = 2;
  // b — key-checksum width in bits (1..32). Paper suggests 32 (§4).
  std::uint32_t checksum_bits = 32;
  // Value payload width in bytes. Fig. 4 uses 20 B (160-bit INT path data).
  std::uint32_t value_bytes = 20;
  // Deployment-wide hash seed, distributed with the config.
  std::uint64_t master_seed = 0xDA27'0000'0001ull;
  WriteMode write_mode = WriteMode::kAllSlots;
  // Collector selection policy. kModulo preserves the historical mapping
  // byte-for-byte; kRing enables minimal-movement membership changes.
  CollectorSelection selection = CollectorSelection::kModulo;
  // Ring geometry (kRing only): permutation-table height per capacity slot.
  // Balance tightens as this grows; >= 64 keeps max/min below 65/64 at full
  // membership (see CollectorRing).
  std::uint32_t ring_height_per_member = 64;

  // Bytes per slot: b-bit checksum stored in ceil(b/8) bytes + value.
  [[nodiscard]] constexpr std::uint32_t checksum_bytes() const noexcept {
    return (checksum_bits + 7) / 8;
  }
  [[nodiscard]] constexpr std::uint32_t slot_bytes() const noexcept {
    return checksum_bytes() + value_bytes;
  }
  [[nodiscard]] constexpr std::uint64_t memory_bytes() const noexcept {
    return n_slots * static_cast<std::uint64_t>(slot_bytes());
  }

  [[nodiscard]] constexpr bool valid() const noexcept {
    return n_slots > 0 && n_addresses >= 1 && checksum_bits >= 1 &&
           checksum_bits <= 32 && value_bytes >= 1;
  }
};

}  // namespace dart::core
