// Coding-theory hardening of the DART slot format (§4):
//
//   "Additional ideas from coding theory, including using different
//    checksums for each location or XORing each value with a pseudorandom
//    value, could also be applied."
//
// 1. Per-location checksums (PerLocationCodec). With one shared b-bit
//    checksum, a key pair that collides in checksum collides at EVERY
//    location — wrong answers arrive with multiplicity and can even win a
//    plurality vote. Deriving the stored checksum as
//        c_n(key) = (CRC32(key) ⊕ mix(n, seed)) & mask
//    makes collisions independent per location: the probability that a
//    colliding key matches at j locations drops from 2^-b to 2^-jb.
//
// 2. Value masking (XOR with a pseudorandom value keyed by the key and
//    location). A foreign value that sneaks past the checksum filter is
//    unmasked with the *queried* key's pad, decorrelating it from the
//    foreign writer's plaintext: two foreign slots that held the same wrong
//    plaintext no longer agree after unmasking, so they cannot form a
//    plurality or consensus — only independent 2^-b flukes can.
//
// SlotCodec bundles both; CodedStore wraps a DartStore applying the codec on
// the write and read paths. The query path is policy-compatible with the
// plain engine (CodedQueryEngine mirrors QueryEngine over decoded slots).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/query.hpp"
#include "core/store.hpp"

namespace dart::core {

struct CodecConfig {
  bool per_location_checksums = true;
  bool mask_values = true;
  std::uint64_t codec_seed = 0xC0DE'C0DE;
};

class SlotCodec {
 public:
  SlotCodec(const DartConfig& dart, const CodecConfig& codec)
      : dart_(dart), codec_(codec) {}

  // The b-bit checksum stored at copy n for `key`.
  [[nodiscard]] std::uint32_t stored_checksum(std::uint32_t base_checksum,
                                              std::uint32_t n) const noexcept;

  // Masks/unmasks (XOR is an involution) `value` in place for (key, n).
  void transform_value(std::span<const std::byte> key, std::uint32_t n,
                       std::span<std::byte> value) const noexcept;

  [[nodiscard]] const CodecConfig& config() const noexcept { return codec_; }

 private:
  DartConfig dart_;
  CodecConfig codec_;
};

// A DartStore with codec-applied writes and reads.
class CodedStore {
 public:
  CodedStore(const DartConfig& config, const CodecConfig& codec)
      : store_(config), codec_(config, codec) {}

  void write(std::span<const std::byte> key, std::span<const std::byte> value);
  void write_one(std::span<const std::byte> key,
                 std::span<const std::byte> value, std::uint32_t n);

  // Queries with the same outcome semantics as QueryEngine::resolve.
  [[nodiscard]] QueryResult query(std::span<const std::byte> key,
                                  ReturnPolicy policy = ReturnPolicy::kPlurality) const;

  [[nodiscard]] DartStore& store() noexcept { return store_; }
  [[nodiscard]] const SlotCodec& codec() const noexcept { return codec_; }

 private:
  // Shared encode+store step with the slot index already resolved — write()
  // batch-hashes all N indices in one pass and feeds them through here.
  void write_at(std::span<const std::byte> key,
                std::span<const std::byte> value, std::uint32_t n,
                std::uint64_t idx);

  DartStore store_;
  SlotCodec codec_;
};

}  // namespace dart::core
