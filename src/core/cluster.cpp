#include "core/cluster.hpp"

namespace dart::core {

namespace {

CollectorEndpoint endpoint_for(std::uint32_t id) {
  CollectorEndpoint ep;
  ep.mac = {0x02, 0x00, 0xC0, 0x11, static_cast<std::uint8_t>(id >> 8),
            static_cast<std::uint8_t>(id & 0xFF)};
  ep.ip = net::Ipv4Addr::from_octets(10, 0, 100,
                                     static_cast<std::uint8_t>(id & 0xFF));
  return ep;
}

}  // namespace

CollectorCluster::CollectorCluster(const DartConfig& config,
                                   std::uint32_t n_collectors)
    : crafter_(config) {
  if (n_collectors == 0) n_collectors = 1;
  collectors_.reserve(n_collectors);
  directory_.reserve(n_collectors);
  for (std::uint32_t id = 0; id < n_collectors; ++id) {
    collectors_.push_back(
        std::make_unique<Collector>(config, id, endpoint_for(id)));
    directory_.push_back(collectors_.back()->remote_info());
  }
}

void CollectorCluster::write(std::span<const std::byte> key,
                             std::span<const std::byte> value) {
  collectors_[owner_of(key)]->store().write(key, value);
}

QueryResult CollectorCluster::query(std::span<const std::byte> key,
                                    ReturnPolicy policy) const {
  return collectors_[owner_of(key)]->query(key, policy);
}

}  // namespace dart::core
