// Load-adaptive redundancy — §5.1's proposed future work, implemented:
//
//   "We conclude that dynamically adjusting N as the load fluctuates could
//    improve queryability and efficiency, and leave finding a good mechanism
//    as future work."
//
// Mechanism:
//  - OccupancyEstimator samples `samples` random slots and measures the
//    fraction that are non-empty. Under the §4 Poisson model, occupancy
//    after K distinct keys with redundancy N is 1 − e^{−KN/M}, so the
//    per-copy load α = K/M is recovered as −ln(1−occupancy)/N.
//  - AdaptiveReporter re-estimates periodically and writes each key with
//    N* = optimal_n(α̂) copies, clamped to the deployment's configured max.
//
// Queries need no coordination: they always read all N_max addresses and
// the checksum filter discards slots that were never written for the key —
// so the reporter can change N* at any time without telling anyone, keeping
// DART's statelessness intact.
#pragma once

#include <cstdint>
#include <span>

#include "common/random.hpp"
#include "core/analysis.hpp"
#include "core/store.hpp"

namespace dart::core {

class OccupancyEstimator {
 public:
  OccupancyEstimator(const DartStore& store, std::uint64_t seed)
      : store_(&store), rng_(seed) {}

  // Fraction of sampled slots that are non-empty (all-zero = empty; the
  // false-empty probability of a real all-zero record is 2^-8·slot_bytes).
  [[nodiscard]] double sample_occupancy(std::uint32_t samples = 512);

  // Estimated per-copy load α̂ = −ln(1−occ)/N given the redundancy that
  // produced the current table state.
  [[nodiscard]] double estimate_alpha(std::uint32_t effective_n,
                                      std::uint32_t samples = 512);

 private:
  const DartStore* store_;
  Xoshiro256 rng_;
};

struct AdaptiveStats {
  std::uint64_t keys_written = 0;
  std::uint64_t copies_written = 0;
  std::uint64_t re_estimates = 0;
  std::uint32_t current_n = 0;
  double last_alpha = 0.0;
};

class AdaptiveReporter {
 public:
  // `store` must be configured with the MAXIMUM redundancy (its N is the
  // address-family size); the reporter writes the first N* ≤ N addresses.
  AdaptiveReporter(DartStore& store, std::uint64_t seed,
                   std::uint32_t reestimate_every = 1024)
      : store_(&store), estimator_(store, seed ^ 0xADAF),
        reestimate_every_(reestimate_every) {
    stats_.current_n = store.config().n_addresses;
  }

  void report(std::span<const std::byte> key, std::span<const std::byte> value);

  [[nodiscard]] const AdaptiveStats& stats() const noexcept { return stats_; }

 private:
  void maybe_reestimate();

  DartStore* store_;
  OccupancyEstimator estimator_;
  std::uint32_t reestimate_every_;
  std::uint32_t since_estimate_ = 0;
  AdaptiveStats stats_;
};

}  // namespace dart::core
