// The operator query protocol (§3.2, left side of Fig. 2).
//
// Queries are the one place DART uses the collector CPU, and they are
// network operations: the operator hashes the key to a collector id, looks
// the collector up in the directory, and sends a query request; the
// collector reads the key's N slots locally and replies. This module
// defines the wire format; query_service.hpp provides the collector-side
// service node and the operator client for the fabric simulator.
//
// Request  (UDP, port 4800) — protocol v2:
//   [magic 0x4451 "DQ"][ver u8][policy u8][request id u64][epoch u32]
//   [key len u16][key bytes]
// Response (UDP, port 4800) — protocol v2:
//   [magic 0x4452 "DR"][ver u8][outcome u8][request id u64][epoch u32]
//   [flags u8][stale epochs u16]
//   [checksum matches u8][distinct values u8][value len u16][value bytes]
//
// v2 (this revision) added three fields for the failure model
// (docs/FAULTS.md): the response echoes the request's `epoch` so the client
// can compute staleness against its own epoch counter even when responses
// arrive out of order; `flags` bit 0 (kResponseDegraded) marks an answer
// served from a backup collector or a store known to have lost reports; and
// `stale_epochs` counts how many epochs of that key's data are missing or
// suspect. v1 frames (no epoch/flags) are rejected by version check — the
// operator and services deploy together in this model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/query.hpp"

namespace dart::core {

inline constexpr std::uint16_t kDartQueryUdpPort = 4800;
inline constexpr std::uint8_t kQueryProtocolVersion = 2;

// QueryResponse::flags bits.
inline constexpr std::uint8_t kResponseDegraded = 0x01;

struct QueryRequest {
  std::uint64_t request_id = 0;
  std::uint32_t epoch = 0;  // client's epoch counter at send time
  ReturnPolicy policy = ReturnPolicy::kPlurality;
  std::vector<std::byte> key;
};

struct QueryResponse {
  std::uint64_t request_id = 0;
  std::uint32_t epoch = 0;        // echoed from the request (staleness anchor)
  std::uint8_t flags = 0;         // kResponseDegraded | reserved
  std::uint16_t stale_epochs = 0; // epochs of this key's data missing/suspect
  QueryOutcome outcome = QueryOutcome::kEmpty;
  std::uint8_t checksum_matches = 0;
  std::uint8_t distinct_values = 0;
  std::vector<std::byte> value;  // present iff outcome == kFound

  [[nodiscard]] bool degraded() const noexcept {
    return (flags & kResponseDegraded) != 0;
  }
};

[[nodiscard]] std::vector<std::byte> encode_query_request(const QueryRequest& req);
[[nodiscard]] std::optional<QueryRequest> parse_query_request(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_query_response(
    const QueryResponse& resp);
[[nodiscard]] std::optional<QueryResponse> parse_query_response(
    std::span<const std::byte> payload);

// Builds a response from a QueryEngine result.
[[nodiscard]] QueryResponse make_response(std::uint64_t request_id,
                                          const QueryResult& result);

}  // namespace dart::core
