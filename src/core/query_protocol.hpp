// The operator query protocol (§3.2, left side of Fig. 2).
//
// Queries are the one place DART uses the collector CPU, and they are
// network operations: the operator hashes the key to a collector id, looks
// the collector up in the directory, and sends a query request; the
// collector reads the key's N slots locally and replies. This module
// defines the wire format; query_service.hpp provides the collector-side
// service node and the operator client for the fabric simulator.
//
// Request  (UDP, port 4800) — protocol v2:
//   [magic 0x4451 "DQ"][ver u8][policy u8][request id u64][epoch u32]
//   [key len u16][key bytes]
// Response (UDP, port 4800) — protocol v2:
//   [magic 0x4452 "DR"][ver u8][outcome u8][request id u64][epoch u32]
//   [flags u8][stale epochs u16]
//   [checksum matches u8][distinct values u8][value len u16][value bytes]
//
// v2 (this revision) added three fields for the failure model
// (docs/FAULTS.md): the response echoes the request's `epoch` so the client
// can compute staleness against its own epoch counter even when responses
// arrive out of order; `flags` bit 0 (kResponseDegraded) marks an answer
// served from a backup collector or a store known to have lost reports; and
// `stale_epochs` counts how many epochs of that key's data are missing or
// suspect. v1 frames (no epoch/flags) are rejected by version check — the
// operator and services deploy together in this model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/query.hpp"

namespace dart::core {

inline constexpr std::uint16_t kDartQueryUdpPort = 4800;
inline constexpr std::uint8_t kQueryProtocolVersion = 2;

// QueryResponse::flags bits (shared with PrimitiveResponse).
inline constexpr std::uint8_t kResponseDegraded = 0x01;
// The collector has no DTA primitive regions enabled — the primitive op was
// understood but cannot be answered (body is zeroed).
inline constexpr std::uint8_t kResponsePrimitiveUnavailable = 0x02;
// The collector's storage backend is not a sketch — the sketch op was
// understood but cannot be answered (body is zeroed).
inline constexpr std::uint8_t kResponseSketchUnavailable = 0x04;
// The query gateway exhausted its upstream retries for this request: the
// body is zeroed, the answer is synthesized, and kResponseDegraded rides
// along (a timed-out answer is by definition not trustworthy).
inline constexpr std::uint8_t kResponseGatewayTimeout = 0x08;
// A standing-query subscribe was understood but rejected (bad predicate
// parameters, e.g. top-k with k == 0 or a keyed kind with an empty key).
inline constexpr std::uint8_t kResponseSubscribeRejected = 0x10;

struct QueryRequest {
  std::uint64_t request_id = 0;
  std::uint32_t epoch = 0;  // client's epoch counter at send time
  ReturnPolicy policy = ReturnPolicy::kPlurality;
  std::vector<std::byte> key;
};

struct QueryResponse {
  std::uint64_t request_id = 0;
  std::uint32_t epoch = 0;        // echoed from the request (staleness anchor)
  std::uint8_t flags = 0;         // kResponseDegraded | reserved
  std::uint16_t stale_epochs = 0; // epochs of this key's data missing/suspect
  QueryOutcome outcome = QueryOutcome::kEmpty;
  std::uint8_t checksum_matches = 0;
  std::uint8_t distinct_values = 0;
  std::vector<std::byte> value;  // present iff outcome == kFound

  [[nodiscard]] bool degraded() const noexcept {
    return (flags & kResponseDegraded) != 0;
  }
};

[[nodiscard]] std::vector<std::byte> encode_query_request(const QueryRequest& req);
[[nodiscard]] std::optional<QueryRequest> parse_query_request(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_query_response(
    const QueryResponse& resp);
[[nodiscard]] std::optional<QueryResponse> parse_query_response(
    std::span<const std::byte> payload);

// Builds a response from a QueryEngine result.
[[nodiscard]] QueryResponse make_response(std::uint64_t request_id,
                                          const QueryResult& result);

// --- DTA primitive query ops (primitives.hpp) -------------------------------
//
// The three primitive read paths share UDP/4800 with the KV protocol; a
// distinct magic pair selects the family, so one service port carries both.
//
// Request  — primitive protocol v1:
//   [magic 0x4470 "Dp"][ver u8][op u8][request id u64][epoch u32]
//   [max entries u64][key len u16][key bytes]
//   kDrainRing ignores the key (len 0 required); the keyed ops require a
//   non-empty key and ignore max entries.
// Response — primitive protocol v1:
//   [magic 0x4472 "Dr"][ver u8][op u8][request id u64][epoch u32]
//   [flags u8][stale epochs u16]  followed by the op body:
//   kDrainRing:         [missed u64][next seq u64][value bytes u16]
//                       [count u16] then count × ([seq u64][value])
//   kReadCounter:       [cell index u64][counter value u64]
//   kReadPostcardGroup: [group u64][max hops u8][valid mask u32]
//                       [value bytes u16] then max_hops × [value]

inline constexpr std::uint8_t kPrimitiveProtocolVersion = 1;

enum class PrimitiveOp : std::uint8_t {
  kDrainRing = 1,         // Append: collect unread ring entries
  kReadCounter = 2,       // Key-Increment: read the cell owning a key
  kReadPostcardGroup = 3, // Postcarding: assemble a flow's slot group
};

struct PrimitiveRequest {
  PrimitiveOp op = PrimitiveOp::kDrainRing;
  std::uint64_t request_id = 0;
  std::uint32_t epoch = 0;
  std::uint64_t max_entries = 0;  // kDrainRing: 0 = no cap
  std::vector<std::byte> key;     // keyed ops only
};

struct RingEntryWire {
  std::uint64_t seq = 0;
  std::vector<std::byte> value;
};

struct PrimitiveResponse {
  PrimitiveOp op = PrimitiveOp::kDrainRing;
  std::uint64_t request_id = 0;
  std::uint32_t epoch = 0;         // echoed from the request
  std::uint8_t flags = 0;          // kResponseDegraded | kResponsePrimitiveUnavailable
  std::uint16_t stale_epochs = 0;

  // kDrainRing body.
  std::uint64_t missed = 0;
  std::uint64_t next_seq = 0;
  std::uint16_t entry_value_bytes = 0;
  std::vector<RingEntryWire> entries;

  // kReadCounter body.
  std::uint64_t cell_index = 0;
  std::uint64_t counter_value = 0;

  // kReadPostcardGroup body.
  std::uint64_t group_index = 0;
  std::uint8_t max_hops = 0;
  std::uint32_t valid_mask = 0;
  std::uint16_t hop_value_bytes = 0;
  std::vector<std::vector<std::byte>> hops;  // max_hops values

  [[nodiscard]] bool degraded() const noexcept {
    return (flags & kResponseDegraded) != 0;
  }
  [[nodiscard]] bool unavailable() const noexcept {
    return (flags & kResponsePrimitiveUnavailable) != 0;
  }
};

[[nodiscard]] std::vector<std::byte> encode_primitive_request(
    const PrimitiveRequest& req);
[[nodiscard]] std::optional<PrimitiveRequest> parse_primitive_request(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_primitive_response(
    const PrimitiveResponse& resp);
[[nodiscard]] std::optional<PrimitiveResponse> parse_primitive_response(
    std::span<const std::byte> payload);

// True iff `payload` leads with the primitive request/response magic — the
// dispatch test a shared-port service uses before committing to a parser.
[[nodiscard]] bool is_primitive_request(std::span<const std::byte> payload);
[[nodiscard]] bool is_primitive_response(std::span<const std::byte> payload);

// --- Sketch backend query ops (store_backend.hpp) ---------------------------
//
// Read path of sketch-backed collectors; shares UDP/4800 with the KV and
// primitive families via its own magic pair. kEstimate returns the count-min
// estimate for one key (and feeds the collector's heavy-hitter tracker as a
// side effect — the tracker is maintained entirely on the query path, so
// ingest stays zero-CPU). kTopK returns the tracker's current top-k.
//
// Request  — sketch protocol v1:
//   [magic 0x4453 "DS"][ver u8][op u8][request id u64][epoch u32]
//   [k u16][key len u16][key bytes]
//   kEstimate requires a non-empty key and ignores k; kTopK requires k >= 1
//   and an empty key (len 0).
// Response — sketch protocol v1:
//   [magic 0x4454 "DT"][ver u8][op u8][request id u64][epoch u32]
//   [flags u8][stale epochs u16]  followed by the op body:
//   kEstimate: [estimate u64]
//   kTopK:     [count u16] then count × ([estimate u64][key len u16][key])

inline constexpr std::uint8_t kSketchProtocolVersion = 1;

enum class SketchOp : std::uint8_t {
  kEstimate = 1,  // count-min estimate of one key
  kTopK = 2,      // current heavy-hitter candidates, strongest first
};

struct SketchRequest {
  SketchOp op = SketchOp::kEstimate;
  std::uint64_t request_id = 0;
  std::uint32_t epoch = 0;
  std::uint16_t k = 0;            // kTopK only; >= 1
  std::vector<std::byte> key;     // kEstimate only; non-empty
};

struct HeavyHitterWire {
  std::uint64_t count = 0;  // count-min estimate at response time
  std::vector<std::byte> key;
};

struct SketchResponse {
  SketchOp op = SketchOp::kEstimate;
  std::uint64_t request_id = 0;
  std::uint32_t epoch = 0;  // echoed from the request
  std::uint8_t flags = 0;   // kResponseDegraded | kResponseSketchUnavailable
  std::uint16_t stale_epochs = 0;

  // kEstimate body.
  std::uint64_t estimate = 0;

  // kTopK body: descending by count, ties broken by ascending key bytes.
  std::vector<HeavyHitterWire> hitters;

  [[nodiscard]] bool degraded() const noexcept {
    return (flags & kResponseDegraded) != 0;
  }
  [[nodiscard]] bool unavailable() const noexcept {
    return (flags & kResponseSketchUnavailable) != 0;
  }
};

[[nodiscard]] std::vector<std::byte> encode_sketch_request(
    const SketchRequest& req);
[[nodiscard]] std::optional<SketchRequest> parse_sketch_request(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_sketch_response(
    const SketchResponse& resp);
[[nodiscard]] std::optional<SketchResponse> parse_sketch_response(
    std::span<const std::byte> payload);

[[nodiscard]] bool is_sketch_request(std::span<const std::byte> payload);
[[nodiscard]] bool is_sketch_response(std::span<const std::byte> payload);

// --- Standing-query (gateway) ops (src/query/gateway.hpp) -------------------
//
// Sonata-style query-driven subscriptions: instead of polling, an operator
// registers a predicate with the query gateway once; the gateway evaluates
// all standing predicates against the collector pool on every epoch tick and
// PUSHES a notification frame when one fires. Three frame types share
// UDP/4800 with the other families via their own magics:
//
// Subscribe request  — gateway protocol v1:
//   [magic 0x4455 "DU"][ver u8][op u8][request id u64][epoch u32]
//   [kind u8][collector u32][threshold u64][k u16][subscription id u64]
//   [key len u16][key bytes]
//   op 1 = subscribe (subscription id must be 0; kind/params describe the
//   predicate), op 2 = unsubscribe (subscription id names the registration;
//   kind/params are ignored). kKeyChange and kCounterThreshold require a
//   non-empty key (the collector is re-hashed per evaluation, so failover
//   retargets are honored); kTopKDelta requires an empty key, k >= 1, and an
//   explicit collector id (trackers are per-collector).
// Subscribe ack      — gateway protocol v1:
//   [magic 0x4456 "DV"][ver u8][op u8][request id u64][epoch u32]
//   [flags u8][stale epochs u16][subscription id u64]
//   flags carries kResponseSubscribeRejected when the predicate was refused
//   (subscription id is then 0).
// Notification push  — gateway protocol v1 (unsolicited; no request id):
//   [magic 0x4457 "DW"][ver u8][kind u8][subscription id u64][seq u64]
//   [gateway epoch u64][flags u8][value u64][key len u16][key bytes]
//   [aux len u16][aux bytes]
//   seq counts notifications per subscription (gap detection under UDP
//   loss). Per kind: kKeyChange — key = watched key, value = 1 if found
//   else 0, aux = the key's current value bytes; kCounterThreshold — key =
//   watched key, value = the counter reading that crossed the threshold;
//   kTopKDelta — key = the key that entered the top-k, value = its estimate.

inline constexpr std::uint8_t kGatewayProtocolVersion = 1;

enum class StandingKind : std::uint8_t {
  kKeyChange = 1,         // KV value of a key changed (incl. first sighting)
  kCounterThreshold = 2,  // Key-Increment counter crossed a threshold upward
  kTopKDelta = 3,         // a key entered a sketch collector's top-k set
};

enum class SubscribeOp : std::uint8_t { kSubscribe = 1, kUnsubscribe = 2 };

struct SubscribeRequest {
  SubscribeOp op = SubscribeOp::kSubscribe;
  std::uint64_t request_id = 0;
  std::uint32_t epoch = 0;
  StandingKind kind = StandingKind::kKeyChange;
  std::uint32_t collector = 0;     // kTopKDelta only
  std::uint64_t threshold = 0;     // kCounterThreshold only
  std::uint16_t k = 0;             // kTopKDelta only; >= 1
  std::uint64_t subscription_id = 0;  // kUnsubscribe only
  std::vector<std::byte> key;      // keyed kinds only
};

struct SubscribeAck {
  SubscribeOp op = SubscribeOp::kSubscribe;
  std::uint64_t request_id = 0;
  std::uint32_t epoch = 0;  // echoed from the request
  std::uint8_t flags = 0;   // kResponseSubscribeRejected on refusal
  std::uint16_t stale_epochs = 0;
  std::uint64_t subscription_id = 0;  // 0 iff rejected

  [[nodiscard]] bool rejected() const noexcept {
    return (flags & kResponseSubscribeRejected) != 0;
  }
};

struct StandingNotification {
  StandingKind kind = StandingKind::kKeyChange;
  std::uint64_t subscription_id = 0;
  std::uint64_t seq = 0;            // per-subscription, starts at 1
  std::uint64_t gateway_epoch = 0;  // epoch tick that fired the predicate
  std::uint8_t flags = 0;           // kResponseDegraded if the read was
  std::uint64_t value = 0;
  std::vector<std::byte> key;
  std::vector<std::byte> aux;  // kKeyChange: the key's current value bytes
};

[[nodiscard]] std::vector<std::byte> encode_subscribe_request(
    const SubscribeRequest& req);
[[nodiscard]] std::optional<SubscribeRequest> parse_subscribe_request(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_subscribe_ack(
    const SubscribeAck& ack);
[[nodiscard]] std::optional<SubscribeAck> parse_subscribe_ack(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_notification(
    const StandingNotification& note);
[[nodiscard]] std::optional<StandingNotification> parse_notification(
    std::span<const std::byte> payload);

[[nodiscard]] bool is_subscribe_request(std::span<const std::byte> payload);
[[nodiscard]] bool is_subscribe_ack(std::span<const std::byte> payload);
[[nodiscard]] bool is_notification(std::span<const std::byte> payload);

}  // namespace dart::core
