// The operator query protocol (§3.2, left side of Fig. 2).
//
// Queries are the one place DART uses the collector CPU, and they are
// network operations: the operator hashes the key to a collector id, looks
// the collector up in the directory, and sends a query request; the
// collector reads the key's N slots locally and replies. This module
// defines the wire format; query_service.hpp provides the collector-side
// service node and the operator client for the fabric simulator.
//
// Request  (UDP, port 4800):
//   [magic 0x4451 "DQ"][ver u8][policy u8][request id u64]
//   [key len u16][key bytes]
// Response (UDP, port 4800):
//   [magic 0x4452 "DR"][ver u8][outcome u8][request id u64]
//   [checksum matches u8][distinct values u8][value len u16][value bytes]
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/query.hpp"

namespace dart::core {

inline constexpr std::uint16_t kDartQueryUdpPort = 4800;
inline constexpr std::uint8_t kQueryProtocolVersion = 1;

struct QueryRequest {
  std::uint64_t request_id = 0;
  ReturnPolicy policy = ReturnPolicy::kPlurality;
  std::vector<std::byte> key;
};

struct QueryResponse {
  std::uint64_t request_id = 0;
  QueryOutcome outcome = QueryOutcome::kEmpty;
  std::uint8_t checksum_matches = 0;
  std::uint8_t distinct_values = 0;
  std::vector<std::byte> value;  // present iff outcome == kFound
};

[[nodiscard]] std::vector<std::byte> encode_query_request(const QueryRequest& req);
[[nodiscard]] std::optional<QueryRequest> parse_query_request(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_query_response(
    const QueryResponse& resp);
[[nodiscard]] std::optional<QueryResponse> parse_query_response(
    std::span<const std::byte> payload);

// Builds a response from a QueryEngine result.
[[nodiscard]] QueryResponse make_response(std::uint64_t request_id,
                                          const QueryResult& result);

}  // namespace dart::core
