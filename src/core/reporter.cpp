#include "core/reporter.hpp"

namespace dart::core {

void DartReporter::report(std::span<const std::byte> key,
                          std::span<const std::byte> value,
                          std::uint32_t reports) {
  ++stats_.keys_reported;
  if (store_->config().write_mode == WriteMode::kAllSlots) {
    store_->write(key, value);
    stats_.reports_sent += store_->config().n_addresses;
    return;
  }
  const std::uint32_t n_addr = store_->config().n_addresses;
  for (std::uint32_t i = 0; i < reports; ++i) {
    const auto n = static_cast<std::uint32_t>(rng_.below(n_addr));
    store_->write_one(key, value, n);
    ++stats_.reports_sent;
  }
}

}  // namespace dart::core
