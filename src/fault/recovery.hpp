// RecoveryManager — the control-plane loop that turns collector failures
// into failover, and recoveries into failback (docs/FAULTS.md).
//
// Detection follows the management-plane model of §6: every live collector
// heartbeats into a core::CollectorLivenessTable on a fixed cadence; a
// periodic tick advances the per-collector state machine
// (alive → suspect → dead) and, once a collector is declared dead, issues
// exponential-backoff re-probes until one is answered. The manager reacts to
// the table's transitions:
//
//   → kDead:  pick the backup (first alive collector after the dead one in
//             ring order), re-point every switch's lookup-table row at the
//             backup (WireFabric::retarget_collector — the backup adopts the
//             dead stream's QPN at a fresh PSN), mark the backup's query
//             service as answering for the dead key range (degraded flag +
//             stale-epoch count), and redirect the operator's queries.
//   → kAlive (from kDead): undo all of it — the recovered collector takes
//             its rows back at a fresh PSN, the takeover ends, and the
//             recovered service answers flagged degraded until its store is
//             repopulated (acknowledge_repopulated, typically after the next
//             epoch rotation).
//
// Under CollectorSelection::kRing the failover/failback actions change
// shape: instead of aliasing the dead row at one backup, the manager drops
// the member from the consistent-hash ring (WireFabric::ring_remove_member),
// which re-routes only the dead member's ~K/N keys — across ALL report kinds
// (KV writes, sketch fan-out, DTA primitives) — to the survivors the ring
// picks; every survivor marks the dead member's home keys degraded. Failback
// re-admits the member (ring_add_member), restoring the exact pre-death
// mapping. Detection, probing, and the log/stats contract are identical.
//
// Everything runs as simulator events, so detection latency, backoff
// growth, and failover timing are all deterministic and assertable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/control.hpp"
#include "obs/metric.hpp"
#include "telemetry/wire_fabric.hpp"

namespace dart::fault {

struct RecoveryConfig {
  core::LivenessConfig liveness{};
  // Liveness state-machine advance cadence (the management CPU's poll loop).
  std::uint64_t tick_interval_ns = 500'000;
  // Epochs of an adopted key range the backup cannot serve: reports written
  // before the death sit in the dead store, in-flight ones are lost by
  // design, and the backup starts cold for those keys.
  std::uint16_t takeover_stale_epochs = 1;
};

struct RecoveryStats {
  std::uint64_t kills = 0;            // admin kill_collector calls
  std::uint64_t revivals = 0;         // admin revive_collector calls
  std::uint64_t deaths_detected = 0;  // liveness kDead transitions handled
  std::uint64_t takeovers = 0;        // key ranges re-targeted to a backup
  std::uint64_t failbacks = 0;        // key ranges restored to their owner
  std::uint64_t probes_answered = 0;  // re-probes that reached a live process
};

class RecoveryManager {
 public:
  // What happened and when (simulated time) — the audit log chaos tests
  // assert detection/failover latency against.
  struct EventRecord {
    enum class What : std::uint8_t {
      kDeathDetected,
      kTakeover,
      kFailback,
    };
    std::uint64_t at_ns;
    What what;
    std::uint32_t collector;
    std::uint32_t backup;  // kTakeover/kFailback: the backup involved
  };

  RecoveryManager(telemetry::WireFabric& fabric, const RecoveryConfig& config);

  // Schedules the heartbeat and liveness-tick event chains from the
  // simulator's current time up to `horizon_ns` (absolute simulated time).
  // Call once, before driving the workload; faults must land inside the
  // horizon for detection to observe them.
  void start(std::uint64_t horizon_ns);

  // Admin/process view, driven by FaultInjector (or tests directly): a
  // killed collector stops heartbeating, its report QP errors (in-flight
  // reports are refused), and its query service eats requests. A revived
  // collector resumes answering probes; detection handles the rest.
  void kill_collector(std::uint32_t c);
  void revive_collector(std::uint32_t c);

  // The recovered (or takeover-ended) collector's store has been
  // repopulated — e.g. the next epoch rotated in — so its answers stop
  // carrying the degraded flag.
  void acknowledge_repopulated(std::uint32_t c);

  // An epoch rotation completed while faults are standing: every query
  // service accrues one more stale epoch on its open takeovers and local
  // degradation marks (saturating at QueryServiceNode::kStaleEpochsSaturated
  // — a collector dead across 100k rotations must read "maximally stale",
  // never wrap back to fresh).
  void note_epoch_rotation();

  [[nodiscard]] const core::CollectorLivenessTable& liveness() const noexcept {
    return liveness_;
  }
  [[nodiscard]] bool admin_alive(std::uint32_t c) const noexcept {
    return admin_alive_[c] != 0;
  }
  // Backup currently covering dead collector `c`, if a takeover is active.
  [[nodiscard]] std::optional<std::uint32_t> backup_of(std::uint32_t c) const;
  [[nodiscard]] const RecoveryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<EventRecord>& log() const noexcept {
    return log_;
  }

  // Registers recovery + liveness counters under `<prefix>_recovery_*`.
  void register_metrics(obs::MetricRegistry& registry,
                        const std::string& prefix);

 private:
  void schedule_heartbeats(std::uint64_t at_ns);
  void schedule_tick(std::uint64_t at_ns);
  void on_tick(std::uint64_t now_ns);
  void on_death(std::uint32_t c, std::uint64_t now_ns);
  void on_recovery(std::uint32_t c, std::uint64_t now_ns);

  telemetry::WireFabric* fabric_;
  RecoveryConfig config_;
  core::CollectorLivenessTable liveness_;
  std::vector<std::uint8_t> admin_alive_;
  std::unordered_map<std::uint32_t, std::uint32_t> backups_;  // dead → backup
  RecoveryStats stats_;
  std::vector<EventRecord> log_;
  std::uint64_t horizon_ns_ = 0;
};

}  // namespace dart::fault
