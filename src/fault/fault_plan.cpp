#include "fault/fault_plan.hpp"

#include "common/random.hpp"

namespace dart::fault {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kKillCollector: return "collector_kills";
    case FaultKind::kReviveCollector: return "collector_revivals";
    case FaultKind::kStallRnic: return "rnic_stalls";
    case FaultKind::kErrorQp: return "qp_errors";
    case FaultKind::kReconnectQp: return "qp_reconnects";
    case FaultKind::kPartitionLink: return "link_partitions";
    case FaultKind::kHealLink: return "link_heals";
    case FaultKind::kCorruptLink: return "link_corruptions";
  }
  return "unknown";
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::kill_collector(std::uint64_t at_ns,
                                     std::uint32_t collector) {
  return add({at_ns, FaultKind::kKillCollector, collector, 0, 0.0});
}

FaultPlan& FaultPlan::revive_collector(std::uint64_t at_ns,
                                       std::uint32_t collector) {
  return add({at_ns, FaultKind::kReviveCollector, collector, 0, 0.0});
}

FaultPlan& FaultPlan::stall_rnic(std::uint64_t at_ns, std::uint32_t collector,
                                 std::uint64_t frames) {
  return add({at_ns, FaultKind::kStallRnic, collector, frames, 0.0});
}

FaultPlan& FaultPlan::error_qp(std::uint64_t at_ns, std::uint32_t collector,
                               std::uint64_t drain_ns) {
  add({at_ns, FaultKind::kErrorQp, collector, 0, 0.0});
  if (drain_ns > 0) reconnect_qp(at_ns + drain_ns, collector);
  return *this;
}

FaultPlan& FaultPlan::reconnect_qp(std::uint64_t at_ns,
                                   std::uint32_t collector) {
  return add({at_ns, FaultKind::kReconnectQp, collector, 0, 0.0});
}

FaultPlan& FaultPlan::partition_link(std::uint64_t at_ns, net::LinkId link) {
  return add({at_ns, FaultKind::kPartitionLink, link, 0, 0.0});
}

FaultPlan& FaultPlan::heal_link(std::uint64_t at_ns, net::LinkId link) {
  return add({at_ns, FaultKind::kHealLink, link, 0, 0.0});
}

FaultPlan& FaultPlan::corrupt_link(std::uint64_t at_ns, net::LinkId link,
                                   double rate) {
  return add({at_ns, FaultKind::kCorruptLink, link, 0, rate});
}

FaultPlan& FaultPlan::clear_corruption(std::uint64_t at_ns, net::LinkId link) {
  return add({at_ns, FaultKind::kCorruptLink, link, 0, 0.0});
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::uint32_t n_collectors,
                            std::uint32_t n_links, std::uint64_t horizon_ns) {
  FaultPlan plan;
  if (n_collectors == 0 || horizon_ns == 0) return plan;
  Xoshiro256 rng(seed);
  const auto t = [&](double lo, double hi) {
    return static_cast<std::uint64_t>(
        (lo + (hi - lo) * rng.uniform()) * static_cast<double>(horizon_ns));
  };

  // One kill/revive pair (needs a surviving backup to be interesting).
  if (n_collectors > 1) {
    const auto victim = static_cast<std::uint32_t>(rng.below(n_collectors));
    plan.kill_collector(t(0.10, 0.25), victim);
    plan.revive_collector(t(0.55, 0.70), victim);
  }
  // One RNIC stall and one QP error-with-drain on random collectors.
  plan.stall_rnic(t(0.05, 0.40),
                  static_cast<std::uint32_t>(rng.below(n_collectors)),
                  1 + rng.below(64));
  plan.error_qp(t(0.20, 0.45),
                static_cast<std::uint32_t>(rng.below(n_collectors)),
                horizon_ns / 10);
  // One partition/heal pair and one corruption window on random links.
  if (n_links > 0) {
    const auto link = static_cast<net::LinkId>(rng.below(n_links));
    plan.partition_link(t(0.15, 0.35), link);
    plan.heal_link(t(0.45, 0.60), link);
    const auto dirty = static_cast<net::LinkId>(rng.below(n_links));
    plan.corrupt_link(t(0.10, 0.30), dirty, 0.5 + 0.5 * rng.uniform());
    plan.clear_corruption(t(0.50, 0.75), dirty);
  }
  return plan;
}

}  // namespace dart::fault
