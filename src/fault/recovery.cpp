#include "fault/recovery.hpp"

#include "core/collector.hpp"

namespace dart::fault {

RecoveryManager::RecoveryManager(telemetry::WireFabric& fabric,
                                 const RecoveryConfig& config)
    : fabric_(&fabric), config_(config),
      liveness_(fabric.n_collectors(), config.liveness,
                fabric.simulator().now_ns()),
      admin_alive_(fabric.n_collectors(), 1) {}

void RecoveryManager::start(std::uint64_t horizon_ns) {
  horizon_ns_ = horizon_ns;
  const std::uint64_t now = fabric_->simulator().now_ns();
  schedule_heartbeats(now + config_.liveness.heartbeat_interval_ns);
  schedule_tick(now + config_.tick_interval_ns);
}

void RecoveryManager::schedule_heartbeats(std::uint64_t at_ns) {
  if (at_ns > horizon_ns_) return;
  fabric_->simulator().schedule(at_ns, [this, at_ns] {
    for (std::uint32_t c = 0; c < liveness_.size(); ++c) {
      // A collector already declared dead does not rejoin via the ambient
      // heartbeat stream — the controller ignores it until a backoff probe
      // confirms the process (prevents a flapping process from bouncing the
      // key range on every beat).
      if (admin_alive_[c] &&
          liveness_.health(c) != core::CollectorHealth::kDead) {
        liveness_.heartbeat(c, at_ns);
      }
    }
    schedule_heartbeats(at_ns + config_.liveness.heartbeat_interval_ns);
  });
}

void RecoveryManager::schedule_tick(std::uint64_t at_ns) {
  if (at_ns > horizon_ns_) return;
  fabric_->simulator().schedule(at_ns, [this, at_ns] {
    on_tick(at_ns);
    schedule_tick(at_ns + config_.tick_interval_ns);
  });
}

void RecoveryManager::on_tick(std::uint64_t now_ns) {
  for (const auto& tr : liveness_.tick(now_ns)) {
    if (tr.to == core::CollectorHealth::kDead) {
      on_death(tr.collector_id, now_ns);
    } else if (tr.to == core::CollectorHealth::kAlive &&
               backups_.count(tr.collector_id) > 0) {
      on_recovery(tr.collector_id, now_ns);
    }
  }
  // Backoff re-probe of dead collectors: a probe reaches the process only
  // if it is actually back up; the answer lands as a heartbeat, which the
  // next tick turns into a kAlive transition.
  for (std::uint32_t c = 0; c < liveness_.size(); ++c) {
    if (liveness_.health(c) == core::CollectorHealth::kDead &&
        liveness_.probe_due(c, now_ns) && admin_alive_[c]) {
      ++stats_.probes_answered;
      liveness_.heartbeat(c, now_ns);
    }
  }
}

void RecoveryManager::on_death(std::uint32_t c, std::uint64_t now_ns) {
  ++stats_.deaths_detected;
  log_.push_back({now_ns, EventRecord::What::kDeathDetected, c, 0});
  const auto backup = liveness_.next_alive(c);
  if (!backup) return;  // every other collector is down: nothing to fail to
  backups_[c] = *backup;

  if (fabric_->selection() == core::CollectorSelection::kRing) {
    // Ring failover: drop the member from every selection plane. The ring
    // spreads the dead key range across ALL survivors (each takes ~K/N·1/(n-1)
    // of it), so every survivor — not one designated backup — marks answers
    // for the dead member's home keys as degraded. `backup` stays recorded as
    // the recovery representative (it keys the failback trigger and the log).
    fabric_->ring_remove_member(c);
    for (std::uint32_t s = 0; s < fabric_->n_collectors(); ++s) {
      if (s == c) continue;
      if (auto* qs = fabric_->query_service(s)) {
        qs->begin_takeover(c, config_.takeover_stale_epochs);
      }
    }
    // No operator retarget: clients route through the shared live selector,
    // which already excludes the dead member.
  } else {
    fabric_->retarget_collector(c, *backup);
    if (auto* qs = fabric_->query_service(*backup)) {
      qs->begin_takeover(c, config_.takeover_stale_epochs);
    }
    if (auto* op = fabric_->operator_client()) op->retarget(c, *backup);
  }
  ++stats_.takeovers;
  log_.push_back({now_ns, EventRecord::What::kTakeover, c, *backup});
}

void RecoveryManager::on_recovery(std::uint32_t c, std::uint64_t now_ns) {
  const auto it = backups_.find(c);
  const std::uint32_t backup = it != backups_.end() ? it->second : c;

  if (fabric_->selection() == core::CollectorSelection::kRing) {
    // Ring failback: reconnect the recovered report QP (fresh PSN window on
    // every switch — no rows were retargeted, so there is nothing to
    // restore), re-admit the member (minimal movement returns exactly its
    // pre-death key range), and end the takeover on every survivor.
    fabric_->reconnect_collector_qp(c);
    fabric_->ring_add_member(c);
    for (std::uint32_t s = 0; s < fabric_->n_collectors(); ++s) {
      if (s == c) continue;
      if (auto* qs = fabric_->query_service(s)) qs->end_takeover(c);
    }
    backups_.erase(c);
  } else {
    fabric_->restore_collector(c);
    if (it != backups_.end()) {
      if (auto* qs = fabric_->query_service(it->second)) qs->end_takeover(c);
      backups_.erase(it);
    }
    if (auto* op = fabric_->operator_client()) op->clear_retarget(c);
  }
  if (auto* qs = fabric_->query_service(c)) {
    qs->set_online(true);
    // The store is cold for everything that happened while dead; answers
    // carry the degraded flag until acknowledge_repopulated.
    qs->set_self_degraded(config_.takeover_stale_epochs);
  }
  ++stats_.failbacks;
  log_.push_back({now_ns, EventRecord::What::kFailback, c, backup});
}

void RecoveryManager::kill_collector(std::uint32_t c) {
  ++stats_.kills;
  admin_alive_[c] = 0;
  if (auto* qs = fabric_->query_service(c)) qs->set_online(false);
  // The dead process's QPs refuse everything; reports in flight are lost by
  // design (the paper's best-effort stance — no switch retransmission).
  if (auto* qp = fabric_->cluster().collector(c).rnic().qp(
          core::Collector::qpn_for(c))) {
    qp->set_error();
  }
}

void RecoveryManager::revive_collector(std::uint32_t c) {
  ++stats_.revivals;
  admin_alive_[c] = 1;
  // Nothing else happens here: the process is up but unannounced. The next
  // answered re-probe produces a heartbeat, the tick declares recovery, and
  // on_recovery() performs the failback.
}

void RecoveryManager::acknowledge_repopulated(std::uint32_t c) {
  if (auto* qs = fabric_->query_service(c)) qs->clear_self_degraded();
}

void RecoveryManager::note_epoch_rotation() {
  for (std::uint32_t c = 0; c < admin_alive_.size(); ++c) {
    if (auto* qs = fabric_->query_service(c)) qs->note_rotation();
  }
}

std::optional<std::uint32_t> RecoveryManager::backup_of(
    std::uint32_t c) const {
  const auto it = backups_.find(c);
  if (it == backups_.end()) return std::nullopt;
  return it->second;
}

void RecoveryManager::register_metrics(obs::MetricRegistry& registry,
                                       const std::string& prefix) {
  const std::string p = prefix + "_recovery_";
  registry.counter_fn(p + "kills_total", [this] { return stats_.kills; },
                      "collector processes killed (admin)");
  registry.counter_fn(p + "revivals_total",
                      [this] { return stats_.revivals; },
                      "collector processes revived (admin)");
  registry.counter_fn(p + "deaths_detected_total",
                      [this] { return stats_.deaths_detected; },
                      "liveness kDead transitions handled");
  registry.counter_fn(p + "takeovers_total",
                      [this] { return stats_.takeovers; },
                      "key ranges re-targeted to a backup");
  registry.counter_fn(p + "failbacks_total",
                      [this] { return stats_.failbacks; },
                      "key ranges restored to their owner");
  registry.counter_fn(p + "probes_answered_total",
                      [this] { return stats_.probes_answered; },
                      "re-probes that reached a live process");
  const auto& ls = liveness_.stats();
  registry.counter_fn(p + "heartbeats_total",
                      [&ls] { return ls.heartbeats; },
                      "heartbeats recorded by the liveness table");
  registry.counter_fn(p + "probes_total", [&ls] { return ls.probes; },
                      "backoff probes issued while dead");
  registry.gauge_fn(p + "collectors_dead",
                    [this] {
                      double n = 0;
                      for (std::uint32_t c = 0; c < liveness_.size(); ++c) {
                        if (liveness_.health(c) ==
                            core::CollectorHealth::kDead) {
                          ++n;
                        }
                      }
                      return n;
                    },
                    "collectors currently declared dead");
}

}  // namespace dart::fault
