// FaultPlan — deterministic, schedule-driven fault injection (docs/FAULTS.md).
//
// A plan is an explicit list of (time, fault) events built up front by a
// test, bench, or chaos tool and armed once on a fabric's simulator
// (FaultInjector::arm). Nothing about execution is random: events fire at
// their scheduled simulated time, same-time events fire in insertion order
// (the simulator's seq tie-break), and the only randomness — which byte a
// corrupting link damages, which packets a lossy window eats — comes from
// the fabric's own seeded RNG. A given (plan, fabric seed) pair therefore
// replays identically, which is what makes chaos results diffable across
// PRs.
//
// The injection points the plan drives are zero-cost when disarmed: a link
// tests one bool (`up`) and one double (`corrupt_rate`) it already has in
// cache, the RNIC tests one relaxed-atomic stall counter that reads 0, and
// the QP tests one relaxed-atomic state byte that reads kReady. A fabric
// with no armed plan executes the exact same instruction stream as before
// this subsystem existed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/netsim.hpp"

namespace dart::fault {

enum class FaultKind : std::uint8_t {
  kKillCollector,    // process death: heartbeats stop, QP errors, queries eaten
  kReviveCollector,  // process restart: backoff re-probes will detect it
  kStallRnic,        // RNIC drops the next `param` inbound frames pre-parse
  kErrorQp,          // the collector's report QP enters the Error state
  kReconnectQp,      // drain done: QP back to Ready at a fresh PSN
  kPartitionLink,    // link down — packets eaten, counted partitioned
  kHealLink,         // link back up
  kCorruptLink,      // per-packet payload bit damage at probability `rate`
};
inline constexpr std::size_t kFaultKinds = 8;

// Metric-friendly slug, e.g. "collector_kills" (see register_metrics).
[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

struct FaultEvent {
  std::uint64_t at_ns = 0;
  FaultKind kind = FaultKind::kKillCollector;
  std::uint32_t target = 0;  // collector id, or link id for link faults
  std::uint64_t param = 0;   // kStallRnic: frames to drop
  double rate = 0.0;         // kCorruptLink: corruption probability
};

// Injection tallies, by kind, filled in by FaultInjector as events fire.
struct FaultStats {
  std::array<std::uint64_t, kFaultKinds> injected{};

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t n = 0;
    for (const auto v : injected) n += v;
    return n;
  }
  [[nodiscard]] std::uint64_t of(FaultKind kind) const noexcept {
    return injected[static_cast<std::size_t>(kind)];
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& kill_collector(std::uint64_t at_ns, std::uint32_t collector);
  FaultPlan& revive_collector(std::uint64_t at_ns, std::uint32_t collector);
  FaultPlan& stall_rnic(std::uint64_t at_ns, std::uint32_t collector,
                        std::uint64_t frames);
  // Errors the report QP at `at_ns`; when `drain_ns` > 0 the drain completes
  // and the QP reconnects (fresh PSN) at `at_ns + drain_ns`. With 0 the QP
  // stays wedged until something else reconnects it.
  FaultPlan& error_qp(std::uint64_t at_ns, std::uint32_t collector,
                      std::uint64_t drain_ns = 0);
  FaultPlan& reconnect_qp(std::uint64_t at_ns, std::uint32_t collector);
  FaultPlan& partition_link(std::uint64_t at_ns, net::LinkId link);
  FaultPlan& heal_link(std::uint64_t at_ns, net::LinkId link);
  FaultPlan& corrupt_link(std::uint64_t at_ns, net::LinkId link, double rate);
  FaultPlan& clear_corruption(std::uint64_t at_ns, net::LinkId link);

  // Seeded pseudo-random plan over `horizon_ns`: every fault class appears,
  // targets and times drawn from `seed` — the chaos-fuzz entry point. Every
  // kill is paired with a later revive and every partition with a heal, so
  // the run can be asserted to converge back to a healthy fabric.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        std::uint32_t n_collectors,
                                        std::uint32_t n_links,
                                        std::uint64_t horizon_ns);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  FaultPlan& add(FaultEvent event);

  std::vector<FaultEvent> events_;
};

}  // namespace dart::fault
