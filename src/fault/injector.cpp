#include "fault/injector.hpp"

#include "core/collector.hpp"

namespace dart::fault {

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events()) {
    fabric_->simulator().schedule(event.at_ns,
                                  [this, event] { apply(event); });
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  ++stats_.injected[static_cast<std::size_t>(event.kind)];
  auto& sim = fabric_->simulator();
  const auto report_qp = [&](std::uint32_t c) {
    return fabric_->cluster().collector(c).rnic().qp(
        core::Collector::qpn_for(c));
  };

  switch (event.kind) {
    case FaultKind::kKillCollector:
      if (recovery_ != nullptr) {
        recovery_->kill_collector(event.target);
      } else {
        if (auto* qs = fabric_->query_service(event.target)) {
          qs->set_online(false);
        }
        if (auto* qp = report_qp(event.target)) qp->set_error();
      }
      break;
    case FaultKind::kReviveCollector:
      if (recovery_ != nullptr) {
        recovery_->revive_collector(event.target);
      } else {
        if (auto* qs = fabric_->query_service(event.target)) {
          qs->set_online(true);
        }
        fabric_->reconnect_collector_qp(event.target);
      }
      break;
    case FaultKind::kStallRnic:
      fabric_->cluster().collector(event.target).rnic().stall(event.param);
      break;
    case FaultKind::kErrorQp:
      if (auto* qp = report_qp(event.target)) qp->set_error();
      break;
    case FaultKind::kReconnectQp:
      fabric_->reconnect_collector_qp(event.target);
      break;
    case FaultKind::kPartitionLink:
      sim.set_link_up(event.target, false);
      break;
    case FaultKind::kHealLink:
      sim.set_link_up(event.target, true);
      break;
    case FaultKind::kCorruptLink:
      sim.set_link_corruption(event.target, event.rate);
      break;
  }
}

void FaultInjector::register_metrics(obs::MetricRegistry& registry,
                                     const std::string& prefix) {
  for (std::size_t k = 0; k < kFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    registry.counter_fn(
        prefix + "_fault_" + to_string(kind) + "_total",
        [this, k] { return stats_.injected[k]; },
        std::string("injected faults: ") + to_string(kind));
  }
}

}  // namespace dart::fault
