// FaultInjector — arms a FaultPlan on a live WireFabric.
//
// Each event is scheduled as a simulator callback at its fault time, so
// faults interleave deterministically with the workload's own packet
// events. The injector only flips the zero-cost injection points the lower
// layers expose (link up/corrupt bits, RNIC stall counter, QP state byte);
// all *recovery* behavior — detection, failover, failback — belongs to the
// RecoveryManager, which reacts to the faults like a real control plane
// would: by observing their symptoms, not the injection itself.
//
// Without a RecoveryManager attached, kill/revive degrade to their
// mechanical effect (query service offline/online + report QP error /
// reconnect) and nothing re-targets — the "no failure handling" baseline
// the ablation bench measures against.
#pragma once

#include <string>

#include "fault/fault_plan.hpp"
#include "fault/recovery.hpp"
#include "obs/metric.hpp"
#include "telemetry/wire_fabric.hpp"

namespace dart::fault {

class FaultInjector {
 public:
  explicit FaultInjector(telemetry::WireFabric& fabric,
                         RecoveryManager* recovery = nullptr)
      : fabric_(&fabric), recovery_(recovery) {}

  // Schedules every event of `plan` (absolute simulated times) on the
  // fabric's simulator. The plan is copied; arming twice arms twice.
  void arm(const FaultPlan& plan);

  // Applies one event immediately (tests drive this directly).
  void apply(const FaultEvent& event);

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  // Registers per-kind injection counters under `<prefix>_fault_*_total`.
  void register_metrics(obs::MetricRegistry& registry,
                        const std::string& prefix);

 private:
  telemetry::WireFabric* fabric_;
  RecoveryManager* recovery_;
  FaultStats stats_;
};

}  // namespace dart::fault
