// CPU cycle accounting for the Fig. 1b baseline measurements.
//
// Fig. 1b of the paper reports *CPU cycles* spent on packet I/O vs telemetry
// storage insertion for 100M reports. We reproduce that accounting with the
// TSC where available (x86_64 RDTSC / aarch64 CNTVCT) and fall back to
// steady_clock scaled by a calibrated cycles-per-nanosecond factor.
#pragma once

#include <cstdint>

namespace dart {

// Raw timestamp counter read (serializing enough for coarse accounting).
[[nodiscard]] std::uint64_t rdtsc() noexcept;

// Estimated TSC frequency in GHz (cycles per nanosecond), measured once per
// process against steady_clock. Used to convert cycle counts to wall time
// and vice versa.
[[nodiscard]] double tsc_ghz() noexcept;

// Scoped cycle counter: accumulates elapsed cycles into a sink on destruction.
class CycleTimer {
 public:
  explicit CycleTimer(std::uint64_t& sink) noexcept
      : sink_(sink), start_(rdtsc()) {}
  CycleTimer(const CycleTimer&) = delete;
  CycleTimer& operator=(const CycleTimer&) = delete;
  ~CycleTimer() { sink_ += rdtsc() - start_; }

 private:
  std::uint64_t& sink_;
  std::uint64_t start_;
};

}  // namespace dart
