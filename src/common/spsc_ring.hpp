// SpscRing — bounded single-producer / single-consumer lock-free ring.
//
// The ingest pipeline wires every feeder thread to every shard worker with
// one of these (N×M rings total), which is what makes the whole pipeline
// mutex-free: each ring has exactly one producer (a feeder) and one consumer
// (a shard worker), so a pair of monotonic indices with acquire/release
// ordering is sufficient — the classic Lamport queue, plus the two standard
// refinements high-rate rings use:
//
//   - head and tail live on their own cache lines so the producer and
//     consumer never false-share, and
//   - each side caches its last observation of the other side's index and
//     only re-reads it (a cache-coherence miss) when the ring looks full or
//     empty.
//
// Capacity is rounded up to a power of two so wrap-around is a mask, not a
// division. Indices are unbounded uint64s (they cannot realistically wrap).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dart {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  // Producer only. Returns false when the ring is full.
  [[nodiscard]] bool try_push(T&& v) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer only. Returns false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Producer only. Moves as many leading elements of `items` into the ring
  // as fit and returns that count (0 when full). One acquire refresh of the
  // consumer index and one release publish cover the whole batch, so the
  // per-item cost collapses to a move — the point of batching the feeder →
  // shard hand-off.
  [[nodiscard]] std::size_t try_push_n(std::span<T> items) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = slots_.size() - static_cast<std::size_t>(tail - cached_head_);
    if (free < items.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = slots_.size() - static_cast<std::size_t>(tail - cached_head_);
    }
    const std::size_t n = free < items.size() ? free : items.size();
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = std::move(items[i]);
    }
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  // Consumer only. Moves up to `out.size()` elements into `out` and returns
  // the count (0 when empty). Single acquire refresh + single release
  // publish, mirroring try_push_n.
  [[nodiscard]] std::size_t try_pop_n(std::span<T> out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(cached_tail_ - head);
    if (avail < out.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(cached_tail_ - head);
    }
    const std::size_t n = avail < out.size() ? avail : out.size();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    if (n > 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  // Approximate (racy) occupancy — fine for stats and idle heuristics.
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  [[nodiscard]] bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer index
  alignas(64) std::uint64_t cached_tail_ = 0;       // consumer's view of tail_
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer index
  alignas(64) std::uint64_t cached_head_ = 0;       // producer's view of head_
};

}  // namespace dart
