// SIMD kernels for the datapath fast paths, isolated in one translation unit
// compiled with -mpclmul -msse4.1 -mavx2 (see common/CMakeLists.txt). Nothing
// here runs unless the runtime dispatch in hash.cpp confirmed CPUID support,
// so the per-file flags never leak illegal instructions onto older hosts.
// Every kernel is bit-identical to its scalar twin in hash.cpp; the parity
// test suite and the startup self-check both enforce that.
#include "common/hash.hpp"

#if defined(DART_SIMD_KERNELS) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>
#include <wmmintrin.h>

namespace dart::detail {

namespace {

// Fold constants for the reflected CRC-32 polynomial 0xEDB88320 (the same
// pair zlib's and the Linux kernel's PCLMUL implementations use):
//   64-byte fold:  lo64 × k1 = x^(4·128+32) mod P, hi64 × k2 = x^(4·128-32)
//   16-byte fold:  lo64 × k3 = x^(128+32)  mod P, hi64 × k4 = x^(128-32)
// Verified empirically against the slicing-by-8 kernel over all lengths and
// alignments by tests/common/test_crc_parity.cpp.
constexpr std::uint64_t kFold64Lo = 0x0000000154442bd4ull;  // k1
constexpr std::uint64_t kFold64Hi = 0x00000001c6e41596ull;  // k2
constexpr std::uint64_t kFold16Lo = 0x00000001751997d0ull;  // k3
constexpr std::uint64_t kFold16Hi = 0x00000000ccaa009eull;  // k4
// Final-reduction constants (same source): k5 folds the upper 64 bits across
// the 32-bit boundary, and (P', μ) drive the Barrett reduction of the last
// 64 bits down to the 32-bit running state.
constexpr std::uint64_t kFoldTail = 0x0000000163cd6124ull;   // k5
constexpr std::uint64_t kPolyFull = 0x00000001db710641ull;   // P'
constexpr std::uint64_t kBarrettMu = 0x00000001f7011641ull;  // μ

[[nodiscard]] inline __m128i fold128(__m128i x, __m128i k) noexcept {
  return _mm_xor_si128(_mm_clmulepi64_si128(x, k, 0x00),
                       _mm_clmulepi64_si128(x, k, 0x11));
}

// Reduces a 16-byte fold accumulator straight to the 32-bit running state:
// fold 128→64 (k4, then k5 across the 32-bit boundary), then one Barrett
// step. Replaces feeding the accumulator through the byte table — the
// difference is ~16 table steps on every call, which dominates total cost
// for the short report-sized inputs the datapath actually hashes.
[[nodiscard]] inline std::uint32_t reduce128(__m128i x, __m128i k16) noexcept {
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  const __m128i k5 = _mm_set_epi64x(0, static_cast<long long>(kFoldTail));
  const __m128i poly = _mm_set_epi64x(static_cast<long long>(kBarrettMu),
                                      static_cast<long long>(kPolyFull));
  __m128i t = _mm_clmulepi64_si128(x, k16, 0x10);  // lo64 × k4
  x = _mm_srli_si128(x, 8);
  x = _mm_xor_si128(x, t);
  t = _mm_srli_si128(x, 4);
  x = _mm_and_si128(x, mask32);
  x = _mm_clmulepi64_si128(x, k5, 0x00);
  x = _mm_xor_si128(x, t);
  t = _mm_and_si128(x, mask32);
  t = _mm_clmulepi64_si128(t, poly, 0x10);  // × μ
  t = _mm_and_si128(t, mask32);
  t = _mm_clmulepi64_si128(t, poly, 0x00);  // × P'
  x = _mm_xor_si128(x, t);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x, 1));
}

}  // namespace

bool crc32_clmul_compiled() noexcept { return true; }

bool crc32_clmul_usable() noexcept {
  static const bool ok =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  return ok;
}

bool xxhash64_avx2_usable() noexcept {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

std::uint32_t crc32_update_clmul(std::uint32_t state, const std::byte* p,
                                 std::size_t n) noexcept {
  if (n < 16) return crc32_update_scalar(state, p, n);

  const __m128i k64 =
      _mm_set_epi64x(static_cast<long long>(kFold64Hi),
                     static_cast<long long>(kFold64Lo));
  const __m128i k16 =
      _mm_set_epi64x(static_cast<long long>(kFold16Hi),
                     static_cast<long long>(kFold16Lo));

  // The running state folds into the low 32 bits of the first block; from
  // here on the computation is pure carryless polynomial arithmetic.
  __m128i x;
  if (n >= 64) {
    __m128i x0 = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
        _mm_cvtsi32_si128(static_cast<int>(state)));
    __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
    __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
    p += 64;
    n -= 64;
    while (n >= 64) {
      x0 = _mm_xor_si128(fold128(x0, k64),
                         _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
      x1 = _mm_xor_si128(
          fold128(x1, k64),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)));
      x2 = _mm_xor_si128(
          fold128(x2, k64),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32)));
      x3 = _mm_xor_si128(
          fold128(x3, k64),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48)));
      p += 64;
      n -= 64;
    }
    x1 = _mm_xor_si128(x1, fold128(x0, k16));
    x2 = _mm_xor_si128(x2, fold128(x1, k16));
    x3 = _mm_xor_si128(x3, fold128(x2, k16));
    x = x3;
  } else {
    x = _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
                      _mm_cvtsi32_si128(static_cast<int>(state)));
    p += 16;
    n -= 16;
  }
  while (n >= 16) {
    x = _mm_xor_si128(fold128(x, k16),
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    p += 16;
    n -= 16;
  }

  // Barrett-reduce the accumulator to the running state, then the sub-16-byte
  // tail (0–15 bytes) finishes through the table kernel.
  const std::uint32_t s = reduce128(x, k16);
  return crc32_update_scalar(s, p, n);
}

namespace {

// Exact 64-bit lane arithmetic for XXH64: 4-lane multiply mod 2^64 built
// from 32×32→64 partial products, and a lane rotate.
[[nodiscard]] inline __m256i mul64(__m256i a, __m256i b) noexcept {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
                       _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

template <int R>
[[nodiscard]] inline __m256i rotl64x4(__m256i v) noexcept {
  return _mm256_or_si256(_mm256_slli_epi64(v, R), _mm256_srli_epi64(v, 64 - R));
}

constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kP3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t kP4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t kP5 = 0x27D4EB2F165667C5ull;

}  // namespace

void xxhash64_k8_avx2(const std::uint64_t* keys, const std::uint64_t* seeds,
                      std::size_t count, std::uint64_t* out) noexcept {
  const __m256i p1 = _mm256_set1_epi64x(static_cast<long long>(kP1));
  const __m256i p2 = _mm256_set1_epi64x(static_cast<long long>(kP2));
  const __m256i p3 = _mm256_set1_epi64x(static_cast<long long>(kP3));
  const __m256i p4 = _mm256_set1_epi64x(static_cast<long long>(kP4));
  // seed + kPrime5 + len, with len == 8 for every lane.
  const __m256i p5len = _mm256_set1_epi64x(static_cast<long long>(kP5 + 8));

  for (std::size_t i = 0; i + 4 <= count; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i seed =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(seeds + i));
    __m256i h = _mm256_add_epi64(seed, p5len);
    // h ^= round(0, k)  ==  rotl64(k·P2, 31)·P1
    h = _mm256_xor_si256(h, mul64(rotl64x4<31>(mul64(k, p2)), p1));
    // h = rotl64(h, 27)·P1 + P4
    h = _mm256_add_epi64(mul64(rotl64x4<27>(h), p1), p4);
    // avalanche
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
    h = mul64(h, p2);
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 29));
    h = mul64(h, p3);
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
}

}  // namespace dart::detail

#else  // !DART_SIMD_KERNELS — portable stubs; dispatch never selects these.

namespace dart::detail {

bool crc32_clmul_compiled() noexcept { return false; }
bool crc32_clmul_usable() noexcept { return false; }
bool xxhash64_avx2_usable() noexcept { return false; }

std::uint32_t crc32_update_clmul(std::uint32_t state, const std::byte* p,
                                 std::size_t n) noexcept {
  return crc32_update_scalar(state, p, n);
}

void xxhash64_k8_avx2(const std::uint64_t* keys, const std::uint64_t* seeds,
                      std::size_t count, std::uint64_t* out) noexcept {
  for (std::size_t i = 0; i < (count & ~std::size_t{3}); ++i) {
    out[i] = xxhash64(std::as_bytes(std::span{keys + i, 1}), seeds[i]);
  }
}

}  // namespace dart::detail

#endif
