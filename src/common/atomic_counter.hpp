// RelaxedCounter — a statistics counter that is safe to bump from many
// threads at once yet still reads, copies and compares like a plain
// std::uint64_t.
//
// The RNIC and QP counter structs are incremented on the ingest data path;
// with the sharded ingest pipeline several shard workers drive one
// SimulatedRnic concurrently, so the counters must be atomic. They are pure
// monotonic statistics — no ordering is ever derived from them — so every
// operation uses std::memory_order_relaxed (an uncontended `lock xadd` on
// x86, the same instruction a seq_cst increment would emit).
//
// Copy/assignment take a relaxed snapshot, which keeps counter structs
// aggregatable (summing per-shard snapshots) exactly like the plain-integer
// structs they replace.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>

namespace dart {

class RelaxedCounter {
 public:
  constexpr RelaxedCounter() noexcept = default;
  constexpr RelaxedCounter(std::uint64_t v) noexcept : v_(v) {}  // NOLINT: implicit by design

  RelaxedCounter(const RelaxedCounter& other) noexcept : v_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) noexcept {
    v_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] std::uint64_t load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return load(); }  // NOLINT: implicit by design

  RelaxedCounter& operator++() noexcept {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, const RelaxedCounter& c) {
    return os << c.load();
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

}  // namespace dart
