#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dart {

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double nt = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / nt;
  mean_ = (n1 * mean_ + n2 * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), counts_(buckets == 0 ? 1 : buckets, 0) {
  // A zero, negative, or non-finite width would make add()'s index
  // computation divide by zero and cast ±inf/NaN to an integer (UB).
  // Degrade to unit-width buckets instead.
  width_ = (hi - lo) / static_cast<double>(counts_.size());
  if (!std::isfinite(width_) || width_ <= 0.0) width_ = 1.0;
}

std::size_t Histogram::bucket_index(double x) const noexcept {
  // Clamp in the double domain: casting a value outside ptrdiff_t's range
  // (huge x, or NaN from a NaN observation) to an integer is UB.
  const double pos = (x - lo_) / width_;
  const double last = static_cast<double>(counts_.size() - 1);
  if (!(pos > 0.0)) return 0;  // negative, zero, or NaN
  if (pos >= last) return counts_.size() - 1;
  return static_cast<std::size_t>(pos);
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  counts_[bucket_index(x)] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(std::size_t bucket) const noexcept {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const noexcept {
  return bucket_lo(bucket) + width_;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  // NaN would fail every comparison below and fall through to the top
  // bucket's upper edge; treat it as the minimum like any other below-range
  // argument. Finite out-of-range q clamps to [0, 1].
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    // Only a bucket with mass can host a quantile: without the c > 0 guard,
    // q = 0 (target 0) resolved to bucket 0's lower edge even when every
    // observation sat far above it.
    if (c > 0 && cum + c >= target) {
      const double frac = (target - cum) / c;  // in [0, 1]
      return bucket_lo(i) + frac * width_;
    }
    cum += c;
  }
  return bucket_hi(counts_.size() - 1);
}

double TrialCounter::margin95() const noexcept {
  if (trials_ == 0) return 0.0;
  const double p = rate();
  const auto n = static_cast<double>(trials_);
  return 1.96 * std::sqrt(p * (1.0 - p) / n);
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1000.0 && unit < 4) {
    bytes /= 1000.0;
    ++unit;
  }
  char buf[32];
  if (bytes >= 100.0 || bytes == static_cast<double>(static_cast<long long>(bytes))) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", bytes, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, kUnits[unit]);
  }
  return buf;
}

std::string format_count(double count) {
  static constexpr const char* kUnits[] = {"", "K", "M", "B"};
  int unit = 0;
  while (count >= 1000.0 && unit < 3) {
    count /= 1000.0;
    ++unit;
  }
  char buf[32];
  if (count == static_cast<double>(static_cast<long long>(count))) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", count, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", count, kUnits[unit]);
  }
  return buf;
}

}  // namespace dart
