// Small expected-like result type (std::expected is C++23; this project is
// C++20). Used on fallible paths where exceptions would be wrong for a
// packet-rate code path: RoCEv2 parsing, RNIC execution, query resolution.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dart {

// Error with a stable code (for programmatic matching) and human message.
struct Error {
  std::string code;
  std::string message;
};

template <typename T>
class Result {
 public:
  Result(T value) : inner_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : inner_(std::move(error)) {}      // NOLINT(implicit)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(inner_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(inner_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(inner_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(inner_));
  }

  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return std::get<Error>(inner_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(inner_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> inner_;
};

// Result<void> analogue.
class Status {
 public:
  Status() = default;                                    // ok
  Status(Error error) : error_(std::move(error)) {}      // NOLINT(implicit)

  [[nodiscard]] bool ok() const noexcept { return error_.code.empty(); }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const noexcept { return error_; }

 private:
  Error error_;  // empty code == ok
};

}  // namespace dart
