// SeqCount — a seqlock-style generation counter.
//
// The epoch-rotation control plane mutates a small composite state (active
// region index, epoch number, directory row) while ingest feeders and query
// clients read it lock-free. A seqlock gives readers a consistency proof
// instead of mutual exclusion: the writer makes the counter odd for the
// duration of the update, and a reader retries whenever the counter was odd
// or changed across its read — so no reader can ever act on a torn rotation
// (e.g. the new epoch number paired with the old region's rkey).
//
// Writers are assumed serialized externally (one control plane); readers are
// unlimited and never block the writer. Fields protected by a SeqCount must
// themselves be std::atomic (relaxed is enough) or immutable: the seqlock
// proves *composite* consistency, the per-field atomicity keeps the racing
// reads defined.
#pragma once

#include <atomic>
#include <cstdint>

namespace dart {

class SeqCount {
 public:
  // Writer side: generation becomes odd while the update is in flight.
  void write_begin() noexcept {
    gen_.fetch_add(1, std::memory_order_acq_rel);
  }
  void write_end() noexcept {
    gen_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Reader side: spins past in-flight updates, returns an even generation.
  [[nodiscard]] std::uint64_t read_begin() const noexcept {
    for (;;) {
      const std::uint64_t g = gen_.load(std::memory_order_acquire);
      if ((g & 1u) == 0) return g;
    }
  }

  // True if the generation moved since read_begin — the reader must retry.
  [[nodiscard]] bool read_retry(std::uint64_t begin_gen) const noexcept {
    std::atomic_thread_fence(std::memory_order_acquire);
    return gen_.load(std::memory_order_acquire) != begin_gen;
  }

  [[nodiscard]] std::uint64_t generation() const noexcept {
    return gen_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> gen_{0};
};

// Convenience: retry `read` (which must be side-effect free) until it ran
// against a stable generation, then return its result.
template <typename Fn>
auto seq_read(const SeqCount& seq, Fn&& read) {
  for (;;) {
    const std::uint64_t g = seq.read_begin();
    auto result = read();
    if (!seq.read_retry(g)) return result;
  }
}

}  // namespace dart
