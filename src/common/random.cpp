#include "common/random.hpp"

#include <algorithm>
#include <cmath>

namespace dart {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) : skew_(skew) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

std::size_t ZipfSampler::sample(Xoshiro256& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1
                                                   : it - cdf_.begin());
}

}  // namespace dart
