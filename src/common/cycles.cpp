#include "common/cycles.hpp"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace dart {

std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

namespace {

double measure_tsc_ghz() {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const std::uint64_t c0 = rdtsc();
  // Spin ~20ms — enough for a stable estimate, cheap enough for process init.
  while (std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                               t0)
             .count() < 20000) {
  }
  const std::uint64_t c1 = rdtsc();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      clock::now() - t0)
                      .count();
  return ns > 0 ? static_cast<double>(c1 - c0) / static_cast<double>(ns) : 1.0;
}

}  // namespace

double tsc_ghz() noexcept {
  static const double ghz = measure_tsc_ghz();
  return ghz;
}

}  // namespace dart
