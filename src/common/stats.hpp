// Lightweight statistics for simulations and benches: streaming summaries
// (mean/variance via Welford), fixed-bucket histograms, and a binomial
// confidence helper used when reporting measured probabilities
// (query success rate, return-error rate) alongside §4 theory values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dart {

// Streaming mean/variance/min/max over double observations (Welford).
class Summary {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void merge(const Summary& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-width linear histogram over [lo, hi); out-of-range goes to edge bins.
//
// Degenerate bounds are tolerated: if the requested width is zero, negative,
// or non-finite (hi <= lo, denormal spans, NaN inputs) the histogram degrades
// to unit-width buckets instead of dividing by zero. This type is the bucket
// geometry behind obs::Histogram, so it must stay safe for arbitrary
// user-configured bounds.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_at(std::size_t bucket) const noexcept {
    return counts_[bucket];
  }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const noexcept;

  // Bucket an observation falls into (edge-clamped, NaN-safe). Exposed so
  // wrappers with their own (atomic) cells can share the geometry.
  [[nodiscard]] std::size_t bucket_index(double x) const noexcept;

  // Value below which `q` (0..1) of the mass falls (linear within bucket).
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Counter of Bernoulli trials with a normal-approximation confidence margin,
// used to report measured probabilities as p ± margin.
class TrialCounter {
 public:
  void record(bool success) noexcept {
    ++trials_;
    if (success) ++successes_;
  }

  [[nodiscard]] std::uint64_t trials() const noexcept { return trials_; }
  [[nodiscard]] std::uint64_t successes() const noexcept { return successes_; }
  [[nodiscard]] double rate() const noexcept {
    return trials_ ? static_cast<double>(successes_) / static_cast<double>(trials_)
                   : 0.0;
  }
  // Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double margin95() const noexcept;

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

// Human-readable byte counts: "3.0 GB", "300 B", ...
[[nodiscard]] std::string format_bytes(double bytes);

// Human-readable large counts: "100M", "1.5K", ...
[[nodiscard]] std::string format_count(double count);

}  // namespace dart
