// Hash functions used across DART.
//
// - xxhash64: fast 64-bit keyed hash. DART's address selection uses a family
//   of N independent functions h_n(key) = xxhash64(key, seed_n) % M (§3.1).
// - CRC-32 / CRC-16: the checksums a Tofino-class switch computes with its
//   CRC extern (§6). The key checksum stored in each DART slot is
//   CRC-32(key) masked to b bits; the RoCEv2 iCRC is CRC-32 over a masked
//   pseudo-header.
// - HashFamily: the deployment-wide family of N address hashes plus the
//   collector-selection hash; switches and the query path construct it from
//   the same seeds, which is what makes the mapping stateless (§3.1).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace dart {

// 64-bit xxHash (XXH64) over an arbitrary byte range with a seed.
// Reference algorithm; byte-for-byte compatible with the canonical XXH64.
[[nodiscard]] std::uint64_t xxhash64(std::span<const std::byte> data,
                                     std::uint64_t seed = 0) noexcept;

[[nodiscard]] inline std::uint64_t xxhash64(std::string_view s,
                                            std::uint64_t seed = 0) noexcept {
  return xxhash64(std::as_bytes(std::span{s.data(), s.size()}), seed);
}

// Hash a trivially copyable value (e.g. a packed key struct).
template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] std::uint64_t xxhash64_of(const T& v,
                                        std::uint64_t seed = 0) noexcept {
  return xxhash64(std::as_bytes(std::span{&v, 1}), seed);
}

// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), as used by Ethernet FCS
// and the RoCEv2 invariant CRC. `init` allows incremental computation:
// pass the previous return value XOR 0xFFFFFFFF... use the Crc32 class below
// for streaming instead.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data) noexcept;

// Streaming CRC-32 (IEEE, reflected). update() may be called repeatedly and
// runs slicing-by-8 (8 bytes per step) with a byte-wise tail. Instances are
// plain copyable values, so a partially-fed CRC can be cached and resumed —
// the report-crafter frame templates cache the state over the invariant
// masked header prefix and finish each frame's iCRC from there.
class Crc32 {
 public:
  void update(std::span<const std::byte> data) noexcept;
  void update_byte(std::uint8_t b) noexcept;
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }
  void reset() noexcept { state_ = 0xFFFF'FFFFu; }

 private:
  std::uint32_t state_ = 0xFFFF'FFFFu;
};

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, non-reflected) — one of the
// CRC externs available on Tofino; used for short key checksums when b <= 16.
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::byte> data) noexcept;

// ---------------------------------------------------------------------------
// HashFamily — the deployment-wide stateless key→address mapping (§3.1).
// ---------------------------------------------------------------------------
//
// Every switch and every query client is configured with the same `seeds`,
// so any party can compute, for a telemetry key:
//   - which collector holds the key's N slots        (collector_of)
//   - the N slot addresses within that collector      (address_of)
//   - the b-bit key checksum stored alongside values  (checksum_of)
//
// Per §3.1, all N copies of one key live on a single collector so queries
// never need inter-collector communication.
class HashFamily {
 public:
  // `n_addresses`  — N, the per-key redundancy (≥ 1).
  // `master_seed`  — deployment seed; derives per-index seeds deterministically.
  HashFamily(std::uint32_t n_addresses, std::uint64_t master_seed);

  [[nodiscard]] std::uint32_t n_addresses() const noexcept {
    return static_cast<std::uint32_t>(seeds_.size());
  }

  // Index of the collector (0..n_collectors-1) that owns this key.
  [[nodiscard]] std::uint32_t collector_of(std::span<const std::byte> key,
                                           std::uint32_t n_collectors) const noexcept;

  // Slot address for copy `n` (0..N-1) of this key in a store of `n_slots`.
  [[nodiscard]] std::uint64_t address_of(std::span<const std::byte> key,
                                         std::uint32_t n,
                                         std::uint64_t n_slots) const noexcept;

  // b-bit key checksum (CRC-32 masked). b in [1, 32].
  [[nodiscard]] std::uint32_t checksum_of(std::span<const std::byte> key,
                                          std::uint32_t bits) const noexcept;

  [[nodiscard]] std::uint64_t master_seed() const noexcept { return master_seed_; }

  // The derived per-index seeds — guaranteed pairwise distinct (and distinct
  // from the collector seed) for any master seed, including 0.
  [[nodiscard]] std::span<const std::uint64_t> address_seeds() const noexcept {
    return seeds_;
  }

 private:
  std::uint64_t master_seed_;
  std::uint64_t collector_seed_;
  std::vector<std::uint64_t> seeds_;  // one per address copy
};

// Mask for the low `bits` bits (bits in [0, 32]).
[[nodiscard]] constexpr std::uint32_t checksum_mask(std::uint32_t bits) noexcept {
  return bits >= 32 ? 0xFFFF'FFFFu : ((1u << bits) - 1u);
}

}  // namespace dart
