// Hash functions used across DART.
//
// - xxhash64: fast 64-bit keyed hash. DART's address selection uses a family
//   of N independent functions h_n(key) = xxhash64(key, seed_n) % M (§3.1).
// - CRC-32 / CRC-16: the checksums a Tofino-class switch computes with its
//   CRC extern (§6). The key checksum stored in each DART slot is
//   CRC-32(key) masked to b bits; the RoCEv2 iCRC is CRC-32 over a masked
//   pseudo-header.
// - HashFamily: the deployment-wide family of N address hashes plus the
//   collector-selection hash; switches and the query path construct it from
//   the same seeds, which is what makes the mapping stateless (§3.1).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace dart {

// 64-bit xxHash (XXH64) over an arbitrary byte range with a seed.
// Reference algorithm; byte-for-byte compatible with the canonical XXH64.
[[nodiscard]] std::uint64_t xxhash64(std::span<const std::byte> data,
                                     std::uint64_t seed = 0) noexcept;

[[nodiscard]] inline std::uint64_t xxhash64(std::string_view s,
                                            std::uint64_t seed = 0) noexcept {
  return xxhash64(std::as_bytes(std::span{s.data(), s.size()}), seed);
}

// Hash a trivially copyable value (e.g. a packed key struct).
template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] std::uint64_t xxhash64_of(const T& v,
                                        std::uint64_t seed = 0) noexcept {
  return xxhash64(std::as_bytes(std::span{&v, 1}), seed);
}

// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), as used by Ethernet FCS
// and the RoCEv2 invariant CRC. `init` allows incremental computation:
// pass the previous return value XOR 0xFFFFFFFF... use the Crc32 class below
// for streaming instead.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data) noexcept;

// Streaming CRC-32 (IEEE, reflected). update() may be called repeatedly and
// runs slicing-by-8 (8 bytes per step) with a byte-wise tail. Instances are
// plain copyable values, so a partially-fed CRC can be cached and resumed —
// the report-crafter frame templates cache the state over the invariant
// masked header prefix and finish each frame's iCRC from there.
class Crc32 {
 public:
  void update(std::span<const std::byte> data) noexcept;
  void update_byte(std::uint8_t b) noexcept;
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }
  void reset() noexcept { state_ = 0xFFFF'FFFFu; }

 private:
  std::uint32_t state_ = 0xFFFF'FFFFu;
};

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, non-reflected) — one of the
// CRC externs available on Tofino; used for short key checksums when b <= 16.
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::byte> data) noexcept;

// ---------------------------------------------------------------------------
// SIMD dispatch
// ---------------------------------------------------------------------------
//
// The datapath has two SIMD fast paths: PCLMUL carryless-multiply CRC-32
// folding (iCRC validation/refinalize and the template crafters) and an
// AVX2 4-lane XXH64 for batched N-way address hashing. Both are strictly
// optional: every kernel has a portable scalar twin producing bit-identical
// results, selected at runtime. Dispatch resolves once per process from
// (a) whether the SIMD translation unit was compiled in, (b) CPUID, (c) the
// DART_NO_SIMD environment variable (any value except "0" forces scalar),
// and (d) a startup self-check diffing each SIMD kernel against its scalar
// twin on known vectors — a mismatch quietly falls back to scalar rather
// than corrupting frames.

enum class SimdLevel : std::uint8_t { kScalar, kSimd };

// The process-wide dispatch decision (resolved on first use).
[[nodiscard]] SimdLevel active_simd_level() noexcept;

// Human-readable backend description for bench/test banners, e.g.
// "pclmul+avx2", "scalar (DART_NO_SIMD)", "scalar (self-check failed)".
[[nodiscard]] std::string_view simd_backend_name() noexcept;

namespace detail {

// Raw CRC-32 kernels over the running (non-complemented) state. Exposed so
// the parity suite can pin every implementation against the others no matter
// which one dispatch would pick.
[[nodiscard]] std::uint32_t crc32_update_scalar(std::uint32_t state,
                                                const std::byte* p,
                                                std::size_t n) noexcept;
[[nodiscard]] std::uint32_t crc32_update_bytewise(std::uint32_t state,
                                                  const std::byte* p,
                                                  std::size_t n) noexcept;
// PCLMUL fold-by-4 (64 bytes/step, 16-byte folds for the mid-range, scalar
// below 32 bytes). Call only when crc32_clmul_usable().
[[nodiscard]] std::uint32_t crc32_update_clmul(std::uint32_t state,
                                               const std::byte* p,
                                               std::size_t n) noexcept;
// The dispatched step Crc32::update runs: PCLMUL above the fold threshold
// when active, scalar otherwise. For callers holding raw state (the fused
// RNIC iCRC path).
[[nodiscard]] std::uint32_t crc32_update_dispatch(std::uint32_t state,
                                                  const std::byte* p,
                                                  std::size_t n) noexcept;
[[nodiscard]] bool crc32_clmul_compiled() noexcept;
// Compiled in AND the CPU advertises PCLMULQDQ+SSE4.1 (ignores DART_NO_SIMD;
// active_simd_level() folds the env knob in).
[[nodiscard]] bool crc32_clmul_usable() noexcept;

[[nodiscard]] bool xxhash64_avx2_usable() noexcept;
// 4-lane AVX2 XXH64 over 8-byte keys with per-lane seeds. Processes
// count & ~3 keys; the caller hashes the tail. Call only when
// xxhash64_avx2_usable().
void xxhash64_k8_avx2(const std::uint64_t* keys, const std::uint64_t* seeds,
                      std::size_t count, std::uint64_t* out) noexcept;

}  // namespace detail

// Batch XXH64: hashes `count` keys, each `key_len` bytes, laid out `stride`
// bytes apart starting at `keys` (stride 0 re-hashes one key against many
// seeds), with seeds[i] keying hash i. Results are bit-identical to calling
// xxhash64() per key; 8-byte keys ride the AVX2 kernel when active.
void xxhash64_batch(const std::byte* keys, std::size_t key_len,
                    std::size_t stride, std::size_t count,
                    const std::uint64_t* seeds, std::uint64_t* out) noexcept;

// ---------------------------------------------------------------------------
// HashFamily — the deployment-wide stateless key→address mapping (§3.1).
// ---------------------------------------------------------------------------
//
// Every switch and every query client is configured with the same `seeds`,
// so any party can compute, for a telemetry key:
//   - which collector holds the key's N slots        (collector_of)
//   - the N slot addresses within that collector      (address_of)
//   - the b-bit key checksum stored alongside values  (checksum_of)
//
// Per §3.1, all N copies of one key live on a single collector so queries
// never need inter-collector communication.
class HashFamily {
 public:
  // `n_addresses`  — N, the per-key redundancy (≥ 1).
  // `master_seed`  — deployment seed; derives per-index seeds deterministically.
  HashFamily(std::uint32_t n_addresses, std::uint64_t master_seed);

  [[nodiscard]] std::uint32_t n_addresses() const noexcept {
    return static_cast<std::uint32_t>(seeds_.size());
  }

  // Index of the collector (0..n_collectors-1) that owns this key.
  // NOTE: this is the modulo policy — it assumes a CONTIGUOUS [0,
  // n_collectors) id space. Deployments with a dynamic membership set route
  // through core::CollectorSelector, which composes collector_hash() with a
  // consistent-hash ring and never returns an absent member.
  [[nodiscard]] std::uint32_t collector_of(std::span<const std::byte> key,
                                           std::uint32_t n_collectors) const noexcept;

  // Raw 64-bit collector-selection hash — the pre-reduction input shared by
  // every selection policy: collector_of(key, n) == collector_hash(key) % n,
  // and the consistent-hash ring buckets the same value by its table height.
  [[nodiscard]] std::uint64_t collector_hash(
      std::span<const std::byte> key) const noexcept;

  // Batch collector_hash over `count` strided keys (8-byte keys ride the
  // AVX2 XXH64 kernel, like collectors_of).
  void collector_hashes(const std::byte* keys, std::size_t key_len,
                        std::size_t stride, std::size_t count,
                        std::uint64_t* out) const noexcept;

  // Slot address for copy `n` (0..N-1) of this key in a store of `n_slots`.
  [[nodiscard]] std::uint64_t address_of(std::span<const std::byte> key,
                                         std::uint32_t n,
                                         std::uint64_t n_slots) const noexcept;

  // b-bit key checksum (CRC-32 masked). b in [1, 32].
  [[nodiscard]] std::uint32_t checksum_of(std::span<const std::byte> key,
                                          std::uint32_t bits) const noexcept;

  // All N coded addresses of `key` in one call (out.size() >= n_addresses()):
  // the key hashed against every seed of the family in one interleaved batch,
  // out[n] == address_of(key, n, n_slots).
  void addresses_of(std::span<const std::byte> key, std::uint64_t n_slots,
                    std::span<std::uint64_t> out) const noexcept;

  // Batch address_of over `count` keys (each `key_len` bytes, `stride` bytes
  // apart) with per-key copy index ns[i]; out[i] == address_of(key_i, ns[i],
  // n_slots). This is the burst-crafting form: one hash kernel invocation
  // covers a whole staged batch of reports.
  void address_of_batch(const std::byte* keys, std::size_t key_len,
                        std::size_t stride, std::span<const std::uint32_t> ns,
                        std::uint64_t n_slots,
                        std::uint64_t* out) const noexcept;

  // Batch collector_of over `count` keys (each `key_len` bytes, `stride`
  // bytes apart): out[i] == collector_of(key_i, n_collectors). The switch's
  // batched ingress resolves a whole burst of telemetry keys per kernel call.
  void collectors_of(const std::byte* keys, std::size_t key_len,
                     std::size_t stride, std::size_t count,
                     std::uint32_t n_collectors,
                     std::uint32_t* out) const noexcept;

  [[nodiscard]] std::uint64_t master_seed() const noexcept { return master_seed_; }

  // The derived per-index seeds — guaranteed pairwise distinct (and distinct
  // from the collector seed) for any master seed, including 0.
  [[nodiscard]] std::span<const std::uint64_t> address_seeds() const noexcept {
    return seeds_;
  }

 private:
  std::uint64_t master_seed_;
  std::uint64_t collector_seed_;
  std::vector<std::uint64_t> seeds_;  // one per address copy
};

// Mask for the low `bits` bits (bits in [0, 32]).
[[nodiscard]] constexpr std::uint32_t checksum_mask(std::uint32_t bits) noexcept {
  return bits >= 32 ? 0xFFFF'FFFFu : ((1u << bits) - 1u);
}

}  // namespace dart
