#include "common/kvconfig.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dart {

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<KvConfig> KvConfig::parse(std::string_view text) {
  KvConfig cfg;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    // Strip comments (not inside values — values don't contain '#').
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Error{"kv_syntax",
                   "line " + std::to_string(line_no) + ": expected key = value"};
    }
    const auto key = trim(line.substr(0, eq));
    const auto value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return Error{"kv_syntax",
                   "line " + std::to_string(line_no) + ": empty key"};
    }
    cfg.set(std::string(key), std::string(value));
  }
  return cfg;
}

Result<KvConfig> KvConfig::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error{"kv_open", "cannot open config file: " + path};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void KvConfig::set(std::string key, std::string value) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const auto& e) { return e.first == key; });
  if (it != entries_.end()) {
    it->second = std::move(value);
  } else {
    entries_.emplace_back(std::move(key), std::move(value));
  }
}

std::optional<std::string> KvConfig::get(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> KvConfig::get_u64(std::string_view key) const {
  const auto v = get(key);
  if (!v) return std::nullopt;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(v->c_str(), &end, 0);
  if (end == v->c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

std::optional<double> KvConfig::get_double(std::string_view key) const {
  const auto v = get(key);
  if (!v) return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

std::string KvConfig::str() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    out += k;
    out += " = ";
    out += v;
    out += '\n';
  }
  return out;
}

Status KvConfig::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Error{"kv_open", "cannot open config file for writing: " + path};
  }
  out << str();
  if (!out) {
    return Error{"kv_write", "short write to config file: " + path};
  }
  return {};
}

}  // namespace dart
