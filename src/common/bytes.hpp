// Byte-level utilities: endianness conversion and bounds-checked buffer
// reader/writer used by every wire-format module (Ethernet/IP/UDP headers,
// RoCEv2 BTH/RETH, DART report payloads).
//
// All multi-byte fields on the wire are big-endian (network order), matching
// the RoCEv2 and IP specifications. The host is assumed little-endian (x86),
// but the helpers are correct on either endianness.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace dart {

// ---------------------------------------------------------------------------
// Endianness
// ---------------------------------------------------------------------------

[[nodiscard]] constexpr std::uint16_t byteswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

[[nodiscard]] constexpr std::uint32_t byteswap32(std::uint32_t v) noexcept {
  return ((v & 0x0000'00FFu) << 24) | ((v & 0x0000'FF00u) << 8) |
         ((v & 0x00FF'0000u) >> 8) | ((v & 0xFF00'0000u) >> 24);
}

[[nodiscard]] constexpr std::uint64_t byteswap64(std::uint64_t v) noexcept {
  return (static_cast<std::uint64_t>(byteswap32(static_cast<std::uint32_t>(v)))
          << 32) |
         byteswap32(static_cast<std::uint32_t>(v >> 32));
}

namespace detail {
constexpr bool kHostIsLittleEndian =
    std::endian::native == std::endian::little;
}  // namespace detail

// Host <-> network (big-endian) conversions.
[[nodiscard]] constexpr std::uint16_t host_to_net16(std::uint16_t v) noexcept {
  return detail::kHostIsLittleEndian ? byteswap16(v) : v;
}
[[nodiscard]] constexpr std::uint32_t host_to_net32(std::uint32_t v) noexcept {
  return detail::kHostIsLittleEndian ? byteswap32(v) : v;
}
[[nodiscard]] constexpr std::uint64_t host_to_net64(std::uint64_t v) noexcept {
  return detail::kHostIsLittleEndian ? byteswap64(v) : v;
}
[[nodiscard]] constexpr std::uint16_t net_to_host16(std::uint16_t v) noexcept {
  return host_to_net16(v);
}
[[nodiscard]] constexpr std::uint32_t net_to_host32(std::uint32_t v) noexcept {
  return host_to_net32(v);
}
[[nodiscard]] constexpr std::uint64_t net_to_host64(std::uint64_t v) noexcept {
  return host_to_net64(v);
}

// ---------------------------------------------------------------------------
// BufWriter — append-only serializer over a growable byte vector.
// ---------------------------------------------------------------------------

class BufWriter {
 public:
  explicit BufWriter(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }

  // Big-endian (network order) writers.
  void be16(std::uint16_t v) { raw(host_to_net16(v)); }
  void be32(std::uint32_t v) { raw(host_to_net32(v)); }
  void be64(std::uint64_t v) { raw(host_to_net64(v)); }

  void bytes(std::span<const std::byte> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  void zeros(std::size_t n) { out_.insert(out_.end(), n, std::byte{0}); }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  template <typename T>
  void raw(T v) {
    std::array<std::byte, sizeof(T)> tmp;
    std::memcpy(tmp.data(), &v, sizeof(T));
    out_.insert(out_.end(), tmp.begin(), tmp.end());
  }

  std::vector<std::byte>& out_;
};

// ---------------------------------------------------------------------------
// BufReader — bounds-checked deserializer over a byte span.
//
// Reads past the end do not throw; they set a sticky error flag and return
// zero, so parsers can decode a whole header and check ok() once (the idiom
// the RoCEv2 and IPv4 parsers use).
// ---------------------------------------------------------------------------

class BufReader {
 public:
  explicit BufReader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8() noexcept {
    if (!ensure(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::uint16_t be16() noexcept { return raw_be<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t be32() noexcept { return raw_be<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t be64() noexcept { return raw_be<std::uint64_t>(); }

  // Copies `n` bytes into `out`; on underflow fills with zeros and taints.
  void bytes(std::span<std::byte> out) noexcept {
    if (!ensure(out.size())) {
      std::memset(out.data(), 0, out.size());
      return;
    }
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
  }

  // Returns a view of the next `n` bytes without copying (empty on underflow).
  [[nodiscard]] std::span<const std::byte> view(std::size_t n) noexcept {
    if (!ensure(n)) return {};
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  void skip(std::size_t n) noexcept {
    if (ensure(n)) pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::span<const std::byte> rest() const noexcept {
    return data_.subspan(pos_);
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

 private:
  template <typename T>
  [[nodiscard]] T raw_be() noexcept {
    if (!ensure(sizeof(T))) return T{0};
    T v{};
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    if constexpr (sizeof(T) == 2) return net_to_host16(v);
    if constexpr (sizeof(T) == 4) return net_to_host32(v);
    if constexpr (sizeof(T) == 8) return net_to_host64(v);
  }

  [[nodiscard]] bool ensure(std::size_t n) noexcept {
    if (data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Hex dump of a byte range, e.g. "de ad be ef" — used by tests and logging.
[[nodiscard]] std::string hex_dump(std::span<const std::byte> data,
                                   std::size_t max_bytes = 64);

}  // namespace dart
