// Minimal leveled logger. Simulation components log through this instead of
// writing to stderr directly so tests can silence or capture output.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace dart {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; default Warn so tests/benches stay quiet.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

// printf-style logging. Kept out-of-line to avoid stdio includes spreading.
void log_message(LogLevel level, std::string_view component,
                 const std::string& message);

#define DART_LOG(level, component, ...)                             \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::dart::log_level())) { \
      char dart_log_buf_[512];                                       \
      std::snprintf(dart_log_buf_, sizeof(dart_log_buf_), __VA_ARGS__); \
      ::dart::log_message(level, component, dart_log_buf_);          \
    }                                                                \
  } while (0)

#define DART_LOG_DEBUG(component, ...) \
  DART_LOG(::dart::LogLevel::kDebug, component, __VA_ARGS__)
#define DART_LOG_INFO(component, ...) \
  DART_LOG(::dart::LogLevel::kInfo, component, __VA_ARGS__)
#define DART_LOG_WARN(component, ...) \
  DART_LOG(::dart::LogLevel::kWarn, component, __VA_ARGS__)
#define DART_LOG_ERROR(component, ...) \
  DART_LOG(::dart::LogLevel::kError, component, __VA_ARGS__)

}  // namespace dart
