#include "common/logging.hpp"

#include <atomic>

namespace dart {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, std::string_view component,
                 const std::string& message) {
  std::fprintf(stderr, "[%s] %.*s: %s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               message.c_str());
}

}  // namespace dart
