#include "common/hash.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/bytes.hpp"

namespace dart {

// ---------------------------------------------------------------------------
// XXH64 — reference implementation of the canonical 64-bit xxHash.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

[[nodiscard]] constexpr std::uint64_t rotl64(std::uint64_t v, int r) noexcept {
  return (v << r) | (v >> (64 - r));
}

[[nodiscard]] std::uint64_t read64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // xxHash is defined over little-endian reads; x86 hosts match.
}

[[nodiscard]] std::uint32_t read32(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

[[nodiscard]] constexpr std::uint64_t round(std::uint64_t acc,
                                            std::uint64_t input) noexcept {
  acc += input * kPrime2;
  acc = rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

[[nodiscard]] constexpr std::uint64_t merge_round(std::uint64_t acc,
                                                  std::uint64_t val) noexcept {
  val = round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

std::uint64_t xxhash64(std::span<const std::byte> data,
                       std::uint64_t seed) noexcept {
  const std::byte* p = data.data();
  const std::byte* const end = p + data.size();
  std::uint64_t h;

  if (data.size() >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed + 0;
    std::uint64_t v4 = seed - kPrime1;
    do {
      v1 = round(v1, read64(p));
      v2 = round(v2, read64(p + 8));
      v3 = round(v3, read64(p + 16));
      v4 = round(v4, read64(p + 24));
      p += 32;
    } while (p <= end - 32);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= round(0, read64(p));
    h = rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read32(p)) * kPrime1;
    h = rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint8_t>(*p)) * kPrime5;
    h = rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected), slicing-by-8 with compile-time tables.
//
// Table 0 is the classic byte-at-a-time table; table k folds a byte that
// sits k positions ahead of the state, so the hot loop consumes 8 input
// bytes with 8 independent loads and one state store per iteration — the
// standard software stand-in for the CRC engines a Tofino deparser or a
// ConnectX DMA pipeline apply per packet. The iCRC of every report frame
// and the per-key checksum both funnel through here, so this loop is the
// single hottest function in the simulated datapath.
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc32_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB8'8320u ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::uint32_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    }
  }
  return t;
}

constexpr auto kCrc32Tables = make_crc32_tables();

[[nodiscard]] std::uint32_t read32le(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (!detail::kHostIsLittleEndian) v = byteswap32(v);
  return v;
}

}  // namespace

namespace detail {

std::uint32_t crc32_update_bytewise(std::uint32_t state, const std::byte* p,
                                    std::size_t n) noexcept {
  while (n-- > 0) {
    state = kCrc32Tables[0][(state ^ static_cast<std::uint8_t>(*p++)) & 0xFFu] ^
            (state >> 8);
  }
  return state;
}

std::uint32_t crc32_update_scalar(std::uint32_t state, const std::byte* p,
                                  std::size_t n) noexcept {
  std::uint32_t crc = state;
  // Consume the unaligned head byte-wise so the slicing loop's 8-byte loads
  // all start on an 8-byte boundary — the loads go through memcpy either
  // way, but aligned access is what the hardware (and the UBSan-covered
  // offset test) wants to see on every step of the hot loop. Short runs
  // skip the fixup: they take at most two slicing steps, and aligning
  // first could eat the whole buffer byte-wise (the PCLMUL kernel hands
  // its 0–15-byte tails here, so this is a datapath-hot case).
  while (n >= 16 && (reinterpret_cast<std::uintptr_t>(p) & 0x7u) != 0) {
    crc = kCrc32Tables[0][(crc ^ static_cast<std::uint8_t>(*p++)) & 0xFFu] ^
          (crc >> 8);
    --n;
  }
  while (n >= 8) {
    const std::uint32_t lo = read32le(p) ^ crc;
    const std::uint32_t hi = read32le(p + 4);
    crc = kCrc32Tables[7][lo & 0xFFu] ^ kCrc32Tables[6][(lo >> 8) & 0xFFu] ^
          kCrc32Tables[5][(lo >> 16) & 0xFFu] ^ kCrc32Tables[4][lo >> 24] ^
          kCrc32Tables[3][hi & 0xFFu] ^ kCrc32Tables[2][(hi >> 8) & 0xFFu] ^
          kCrc32Tables[1][(hi >> 16) & 0xFFu] ^ kCrc32Tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  return crc32_update_bytewise(crc, p, n);
}

namespace {

// One dispatched CRC step. With the Barrett-reduced finalization a single
// 16-byte fold already beats the slicing tables, so the kernel takes over
// as soon as it has one full block; below that the tables are optimal.
constexpr std::size_t kClmulMinBytes = 16;

[[nodiscard]] bool use_clmul() noexcept {
  static const bool v =
      active_simd_level() == SimdLevel::kSimd && crc32_clmul_usable();
  return v;
}

}  // namespace

std::uint32_t crc32_update_dispatch(std::uint32_t state, const std::byte* p,
                                    std::size_t n) noexcept {
  if (n >= kClmulMinBytes && use_clmul()) {
    return crc32_update_clmul(state, p, n);
  }
  return crc32_update_scalar(state, p, n);
}

}  // namespace detail

void Crc32::update(std::span<const std::byte> data) noexcept {
  state_ = detail::crc32_update_dispatch(state_, data.data(), data.size());
}

void Crc32::update_byte(std::uint8_t b) noexcept {
  state_ = kCrc32Tables[0][(state_ ^ b) & 0xFFu] ^ (state_ >> 8);
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

// ---------------------------------------------------------------------------
// CRC-16/CCITT-FALSE, table-driven.
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 0x8000u) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                            : static_cast<std::uint16_t>(crc << 1);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc16Table = make_crc16_table();

}  // namespace

std::uint16_t crc16_ccitt(std::span<const std::byte> data) noexcept {
  std::uint16_t crc = 0xFFFF;
  for (const std::byte byte : data) {
    crc = static_cast<std::uint16_t>(
        (crc << 8) ^
        kCrc16Table[((crc >> 8) ^ static_cast<std::uint8_t>(byte)) & 0xFFu]);
  }
  return crc;
}

// ---------------------------------------------------------------------------
// SIMD dispatch
// ---------------------------------------------------------------------------

namespace {

struct SimdDecision {
  SimdLevel level = SimdLevel::kScalar;
  const char* name = "scalar";
};

[[nodiscard]] bool simd_disabled_by_env() noexcept {
  const char* v = std::getenv("DART_NO_SIMD");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

// Diffs the PCLMUL kernel against the scalar twin on deterministic vectors
// spanning the 16-byte-fold, 64-byte-fold, and tail regimes with a non-
// trivial running state. Any divergence (miscompiled kernel, exotic CPU)
// demotes the whole process to scalar instead of corrupting frames.
[[nodiscard]] bool clmul_self_check() noexcept {
  std::array<std::byte, 257> buf;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((i * 131u + 17u) & 0xFFu);
  }
  for (const std::size_t len : {32u, 44u, 63u, 64u, 92u, 100u, 192u, 257u}) {
    for (const std::uint32_t state : {0xFFFF'FFFFu, 0x1234'5678u}) {
      if (detail::crc32_update_scalar(state, buf.data(), len) !=
          detail::crc32_update_clmul(state, buf.data(), len)) {
        return false;
      }
    }
  }
  return true;
}

[[nodiscard]] SimdDecision resolve_simd() noexcept {
  if (simd_disabled_by_env()) return {SimdLevel::kScalar, "scalar (DART_NO_SIMD)"};
  const bool clmul = detail::crc32_clmul_usable();
  const bool avx2 = detail::xxhash64_avx2_usable();
  if (!clmul && !avx2) return {SimdLevel::kScalar, "scalar (no CPU support)"};
  if (clmul && !clmul_self_check()) {
    return {SimdLevel::kScalar, "scalar (self-check failed)"};
  }
  if (clmul && avx2) return {SimdLevel::kSimd, "pclmul+avx2"};
  return {SimdLevel::kSimd, clmul ? "pclmul" : "avx2"};
}

[[nodiscard]] const SimdDecision& simd_decision() noexcept {
  static const SimdDecision d = resolve_simd();
  return d;
}

}  // namespace

SimdLevel active_simd_level() noexcept { return simd_decision().level; }

std::string_view simd_backend_name() noexcept { return simd_decision().name; }

// ---------------------------------------------------------------------------
// Batch XXH64
// ---------------------------------------------------------------------------

void xxhash64_batch(const std::byte* keys, std::size_t key_len,
                    std::size_t stride, std::size_t count,
                    const std::uint64_t* seeds, std::uint64_t* out) noexcept {
  if (key_len == 8 && count >= 4 && detail::xxhash64_avx2_usable() &&
      active_simd_level() == SimdLevel::kSimd) {
    // Gather the (possibly strided / unaligned) keys into contiguous lanes a
    // chunk at a time, then hand full groups of 4 to the AVX2 kernel.
    constexpr std::size_t kChunk = 64;
    std::array<std::uint64_t, kChunk> lanes;
    std::size_t done = 0;
    while (count - done >= 4) {
      const std::size_t m = std::min<std::size_t>(count - done, kChunk) & ~std::size_t{3};
      for (std::size_t i = 0; i < m; ++i) {
        std::memcpy(&lanes[i], keys + (done + i) * stride, 8);
      }
      detail::xxhash64_k8_avx2(lanes.data(), seeds + done, m, out + done);
      done += m;
    }
    for (; done < count; ++done) {
      out[done] = xxhash64({keys + done * stride, key_len}, seeds[done]);
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = xxhash64({keys + i * stride, key_len}, seeds[i]);
  }
}

// ---------------------------------------------------------------------------
// HashFamily
// ---------------------------------------------------------------------------

HashFamily::HashFamily(std::uint32_t n_addresses, std::uint64_t master_seed)
    : master_seed_(master_seed) {
  if (n_addresses == 0) n_addresses = 1;
  // Derive independent seeds with SplitMix64-style mixing so that the family
  // is reproducible from a single deployment seed.
  auto mix = [](std::uint64_t z) {
    z += 0x9E37'79B9'7F4A'7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58'476D'1CE4'E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D0'49BB'1331'11EBull;
    return z ^ (z >> 31);
  };
  collector_seed_ = mix(master_seed ^ 0xC011'EC70'5EEDull);
  seeds_.reserve(n_addresses);
  std::uint64_t s = master_seed;
  for (std::uint32_t i = 0; i < n_addresses; ++i) {
    s = mix(s + i);
    // Degenerate-seed guard: the N address hashes are only independent if
    // their seeds are pairwise distinct (and distinct from the collector
    // seed). A colliding pair would silently collapse two of the N slots
    // into one, inflating return-error rates versus the §4 analysis — for
    // *every* key, not probabilistically. Re-mix until unique; for sane
    // seeds (including master_seed == 0) this loop never iterates.
    while (s == collector_seed_ ||
           std::find(seeds_.begin(), seeds_.end(), s) != seeds_.end()) {
      s = mix(s ^ 0xD15'71AC'7ull);
    }
    seeds_.push_back(s);
  }
}

std::uint32_t HashFamily::collector_of(std::span<const std::byte> key,
                                       std::uint32_t n_collectors) const noexcept {
  if (n_collectors <= 1) return 0;
  return static_cast<std::uint32_t>(xxhash64(key, collector_seed_) %
                                    n_collectors);
}

std::uint64_t HashFamily::collector_hash(
    std::span<const std::byte> key) const noexcept {
  return xxhash64(key, collector_seed_);
}

void HashFamily::collector_hashes(const std::byte* keys, std::size_t key_len,
                                  std::size_t stride, std::size_t count,
                                  std::uint64_t* out) const noexcept {
  constexpr std::size_t kChunk = 64;
  std::array<std::uint64_t, kChunk> seed_lanes;
  seed_lanes.fill(collector_seed_);
  for (std::size_t done = 0; done < count; done += kChunk) {
    const std::size_t m = std::min<std::size_t>(count - done, kChunk);
    xxhash64_batch(keys + done * stride, key_len, stride, m, seed_lanes.data(),
                   out + done);
  }
}

std::uint64_t HashFamily::address_of(std::span<const std::byte> key,
                                     std::uint32_t n,
                                     std::uint64_t n_slots) const noexcept {
  const std::uint64_t seed = seeds_[n % seeds_.size()];
  return xxhash64(key, seed) % n_slots;
}

std::uint32_t HashFamily::checksum_of(std::span<const std::byte> key,
                                      std::uint32_t bits) const noexcept {
  return crc32(key) & checksum_mask(bits);
}

void HashFamily::addresses_of(std::span<const std::byte> key,
                              std::uint64_t n_slots,
                              std::span<std::uint64_t> out) const noexcept {
  const std::size_t n = seeds_.size();
  xxhash64_batch(key.data(), key.size(), /*stride=*/0, n, seeds_.data(),
                 out.data());
  for (std::size_t i = 0; i < n; ++i) out[i] %= n_slots;
}

void HashFamily::collectors_of(const std::byte* keys, std::size_t key_len,
                               std::size_t stride, std::size_t count,
                               std::uint32_t n_collectors,
                               std::uint32_t* out) const noexcept {
  if (n_collectors <= 1) {
    for (std::size_t i = 0; i < count; ++i) out[i] = 0;
    return;
  }
  constexpr std::size_t kChunk = 64;
  std::array<std::uint64_t, kChunk> seed_lanes;
  std::array<std::uint64_t, kChunk> hashes;
  seed_lanes.fill(collector_seed_);
  for (std::size_t done = 0; done < count; done += kChunk) {
    const std::size_t m = std::min<std::size_t>(count - done, kChunk);
    xxhash64_batch(keys + done * stride, key_len, stride, m, seed_lanes.data(),
                   hashes.data());
    for (std::size_t i = 0; i < m; ++i) {
      out[done + i] = static_cast<std::uint32_t>(hashes[i] % n_collectors);
    }
  }
}

void HashFamily::address_of_batch(const std::byte* keys, std::size_t key_len,
                                  std::size_t stride,
                                  std::span<const std::uint32_t> ns,
                                  std::uint64_t n_slots,
                                  std::uint64_t* out) const noexcept {
  constexpr std::size_t kChunk = 64;
  std::array<std::uint64_t, kChunk> seed_lanes;
  const std::size_t count = ns.size();
  for (std::size_t done = 0; done < count; done += kChunk) {
    const std::size_t m = std::min<std::size_t>(count - done, kChunk);
    for (std::size_t i = 0; i < m; ++i) {
      seed_lanes[i] = seeds_[ns[done + i] % seeds_.size()];
    }
    xxhash64_batch(keys + done * stride, key_len, stride, m, seed_lanes.data(),
                   out + done);
    for (std::size_t i = 0; i < m; ++i) out[done + i] %= n_slots;
  }
}

}  // namespace dart
