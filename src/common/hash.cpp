#include "common/hash.hpp"

#include <algorithm>
#include <cstring>

namespace dart {

// ---------------------------------------------------------------------------
// XXH64 — reference implementation of the canonical 64-bit xxHash.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

[[nodiscard]] constexpr std::uint64_t rotl64(std::uint64_t v, int r) noexcept {
  return (v << r) | (v >> (64 - r));
}

[[nodiscard]] std::uint64_t read64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // xxHash is defined over little-endian reads; x86 hosts match.
}

[[nodiscard]] std::uint32_t read32(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

[[nodiscard]] constexpr std::uint64_t round(std::uint64_t acc,
                                            std::uint64_t input) noexcept {
  acc += input * kPrime2;
  acc = rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

[[nodiscard]] constexpr std::uint64_t merge_round(std::uint64_t acc,
                                                  std::uint64_t val) noexcept {
  val = round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

std::uint64_t xxhash64(std::span<const std::byte> data,
                       std::uint64_t seed) noexcept {
  const std::byte* p = data.data();
  const std::byte* const end = p + data.size();
  std::uint64_t h;

  if (data.size() >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed + 0;
    std::uint64_t v4 = seed - kPrime1;
    do {
      v1 = round(v1, read64(p));
      v2 = round(v2, read64(p + 8));
      v3 = round(v3, read64(p + 16));
      v4 = round(v4, read64(p + 24));
      p += 32;
    } while (p <= end - 32);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= round(0, read64(p));
    h = rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read32(p)) * kPrime1;
    h = rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint8_t>(*p)) * kPrime5;
    h = rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) with a compile-time table.
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB8'8320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrc32Table = make_crc32_table();

}  // namespace

void Crc32::update(std::span<const std::byte> data) noexcept {
  for (const std::byte b : data) {
    update_byte(static_cast<std::uint8_t>(b));
  }
}

void Crc32::update_byte(std::uint8_t b) noexcept {
  state_ = kCrc32Table[(state_ ^ b) & 0xFFu] ^ (state_ >> 8);
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

// ---------------------------------------------------------------------------
// CRC-16/CCITT-FALSE
// ---------------------------------------------------------------------------

std::uint16_t crc16_ccitt(std::span<const std::byte> data) noexcept {
  std::uint16_t crc = 0xFFFF;
  for (const std::byte byte : data) {
    crc ^= static_cast<std::uint16_t>(static_cast<std::uint8_t>(byte)) << 8;
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000u) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                            : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

// ---------------------------------------------------------------------------
// HashFamily
// ---------------------------------------------------------------------------

HashFamily::HashFamily(std::uint32_t n_addresses, std::uint64_t master_seed)
    : master_seed_(master_seed) {
  if (n_addresses == 0) n_addresses = 1;
  // Derive independent seeds with SplitMix64-style mixing so that the family
  // is reproducible from a single deployment seed.
  auto mix = [](std::uint64_t z) {
    z += 0x9E37'79B9'7F4A'7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58'476D'1CE4'E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D0'49BB'1331'11EBull;
    return z ^ (z >> 31);
  };
  collector_seed_ = mix(master_seed ^ 0xC011'EC70'5EEDull);
  seeds_.reserve(n_addresses);
  std::uint64_t s = master_seed;
  for (std::uint32_t i = 0; i < n_addresses; ++i) {
    s = mix(s + i);
    // Degenerate-seed guard: the N address hashes are only independent if
    // their seeds are pairwise distinct (and distinct from the collector
    // seed). A colliding pair would silently collapse two of the N slots
    // into one, inflating return-error rates versus the §4 analysis — for
    // *every* key, not probabilistically. Re-mix until unique; for sane
    // seeds (including master_seed == 0) this loop never iterates.
    while (s == collector_seed_ ||
           std::find(seeds_.begin(), seeds_.end(), s) != seeds_.end()) {
      s = mix(s ^ 0xD15'71AC'7ull);
    }
    seeds_.push_back(s);
  }
}

std::uint32_t HashFamily::collector_of(std::span<const std::byte> key,
                                       std::uint32_t n_collectors) const noexcept {
  if (n_collectors <= 1) return 0;
  return static_cast<std::uint32_t>(xxhash64(key, collector_seed_) %
                                    n_collectors);
}

std::uint64_t HashFamily::address_of(std::span<const std::byte> key,
                                     std::uint32_t n,
                                     std::uint64_t n_slots) const noexcept {
  const std::uint64_t seed = seeds_[n % seeds_.size()];
  return xxhash64(key, seed) % n_slots;
}

std::uint32_t HashFamily::checksum_of(std::span<const std::byte> key,
                                      std::uint32_t bits) const noexcept {
  return crc32(key) & checksum_mask(bits);
}

}  // namespace dart
