#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace dart {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
      os << " | ";
    }
    os << "\n";
  };
  emit(header_);
  os << "|";
  for (const auto w : widths) {
    os << std::string(w + 2, '-') << "-|";
  }
  os << "\n";
  for (const auto& r : rows_) emit(r);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace dart
