// Minimal key=value configuration file support.
//
// The deployment config (DartConfig + collector endpoints) must be
// distributed verbatim to every switch, collector and query client — a file
// format keeps that auditable. Syntax:
//
//   # comment
//   n_slots = 1048576
//   master_seed = 0xDA27000000001
//   name = spine-deployment        # trailing comments allowed
//
// Values are strings; typed getters parse integers (decimal or 0x-hex) and
// doubles. Unknown keys are preserved (forward compatibility).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace dart {

class KvConfig {
 public:
  KvConfig() = default;

  // Parses from text; fails with line diagnostics on malformed input.
  [[nodiscard]] static Result<KvConfig> parse(std::string_view text);

  // Loads a file from disk.
  [[nodiscard]] static Result<KvConfig> load(const std::string& path);

  void set(std::string key, std::string value);

  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;
  [[nodiscard]] std::optional<std::uint64_t> get_u64(std::string_view key) const;
  [[nodiscard]] std::optional<double> get_double(std::string_view key) const;

  [[nodiscard]] bool has(std::string_view key) const {
    return get(key).has_value();
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  // Serializes back to text (stable order = insertion order).
  [[nodiscard]] std::string str() const;

  // Writes to a file.
  [[nodiscard]] Status save(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace dart
