// Console table printer used by the bench harness to emit the rows/series of
// each paper figure and table in a uniform, diff-friendly format.
//
//   Table t({"load factor", "N=1", "N=2", "N=4"});
//   t.row({"0.25", "0.917", "0.988", "0.999"});
//   t.print(std::cout);
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dart {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers shared by benches.
[[nodiscard]] std::string fmt_double(double v, int precision = 4);
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 2);
[[nodiscard]] std::string fmt_sci(double v, int precision = 3);

}  // namespace dart
