#include "common/bytes.hpp"

namespace dart {

std::string hex_dump(std::span<const std::byte> data, std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<std::uint8_t>(data[i]);
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  if (data.size() > max_bytes) out += " ...";
  return out;
}

}  // namespace dart
