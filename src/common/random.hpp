// Deterministic pseudo-random generators and samplers for simulations.
//
// - SplitMix64: seeding / cheap stateless mixing.
// - Xoshiro256**: the workhorse generator (fast, high quality, 2^256 period),
//   satisfying std::uniform_random_bit_generator so it composes with <random>.
// - ZipfSampler: skewed flow popularity (datacenter traffic is heavy-tailed;
//   used by workload generators).
//
// All generators are explicitly seeded — simulations and tests are
// reproducible by construction (no global RNG state anywhere in DART).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace dart {

// SplitMix64 — tiny generator mostly used to seed Xoshiro and derive
// independent sub-seeds from one master seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E37'79B9'7F4A'7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58'476D'1CE4'E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D0'49BB'1331'11EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256** by Blackman & Vigna — the simulation RNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  // Independent per-thread stream `stream_id` derived from one master seed.
  // Each (seed, stream_id) pair seeds a fresh generator through SplitMix64,
  // so parallel workers (ingest-pipeline feeders) get decorrelated streams
  // while the whole run stays reproducible from a single seed.
  [[nodiscard]] static Xoshiro256 stream(std::uint64_t seed,
                                         std::uint64_t stream_id) noexcept {
    SplitMix64 sm(seed);
    const std::uint64_t base = sm.next();
    return Xoshiro256(base ^ ((stream_id + 1) * 0x9E37'79B9'7F4A'7C15ull));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

// Zipf(s) sampler over {0, .., n-1} using inverse-CDF on a precomputed table.
// s = 0 degenerates to uniform. Heavy flows get low ranks.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  [[nodiscard]] std::size_t sample(Xoshiro256& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double skew() const noexcept { return skew_; }

 private:
  std::vector<double> cdf_;
  double skew_;
};

}  // namespace dart
