#include "query/gateway.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/bytes.hpp"

namespace dart::query {

namespace {

// Shared header layout of every request AND response family on UDP/4800
// (query_protocol.hpp): the request id sits big-endian at [4, 12) and the
// epoch at [12, 16); responses add flags at [16] and stale_epochs at
// [17, 19). This is what lets the gateway re-stamp ids and staleness on raw
// payload bytes without re-encoding.
constexpr std::size_t kIdOffset = 4;
constexpr std::size_t kEpochOffset = 12;
constexpr std::size_t kFlagsOffset = 16;
constexpr std::size_t kStaleOffset = 17;
constexpr std::size_t kResponseHeaderBytes = 19;

// Wire magics (documented in query_protocol.hpp; the parse/is_* helpers own
// the authoritative values — these only route dispatch before parsing).
constexpr std::uint16_t kMagicQueryRequest = 0x4451;
constexpr std::uint16_t kMagicQueryResponse = 0x4452;
constexpr std::uint16_t kMagicSketchRequest = 0x4453;
constexpr std::uint16_t kMagicSketchResponse = 0x4454;
constexpr std::uint16_t kMagicSubscribeRequest = 0x4455;
constexpr std::uint16_t kMagicPrimitiveRequest = 0x4470;
constexpr std::uint16_t kMagicPrimitiveResponse = 0x4472;

[[nodiscard]] std::uint16_t read_magic(std::span<const std::byte> payload) {
  if (payload.size() < 2) return 0;
  return static_cast<std::uint16_t>(
      (std::to_integer<std::uint16_t>(payload[0]) << 8) |
      std::to_integer<std::uint16_t>(payload[1]));
}

[[nodiscard]] std::uint64_t read_request_id(std::span<const std::byte> payload) {
  if (payload.size() < kIdOffset + 8) return 0;
  std::uint64_t be = 0;
  std::memcpy(&be, payload.data() + kIdOffset, sizeof(be));
  return net_to_host64(be);
}

void patch_id_epoch(std::vector<std::byte>& payload, std::uint64_t id,
                    std::uint32_t epoch) {
  if (payload.size() < kEpochOffset + 4) return;
  const std::uint64_t id_be = host_to_net64(id);
  std::memcpy(payload.data() + kIdOffset, &id_be, sizeof(id_be));
  const std::uint32_t epoch_be = host_to_net32(epoch);
  std::memcpy(payload.data() + kEpochOffset, &epoch_be, sizeof(epoch_be));
}

// A cache hit `age` epochs old is exactly `age` epochs staler than the
// upstream answer claimed; the degraded flag rides along so the operator's
// existing staleness handling sees it.
void add_staleness(std::vector<std::byte>& payload, std::uint64_t age) {
  if (age == 0 || payload.size() < kResponseHeaderBytes) return;
  payload[kFlagsOffset] |= std::byte{core::kResponseDegraded};
  std::uint16_t be = 0;
  std::memcpy(&be, payload.data() + kStaleOffset, sizeof(be));
  const std::uint32_t sum = net_to_host16(be) + std::min<std::uint64_t>(age, 0xFFFF);
  const std::uint16_t stale =
      sum > 0xFFFF ? 0xFFFF : static_cast<std::uint16_t>(sum);
  be = host_to_net16(stale);
  std::memcpy(payload.data() + kStaleOffset, &be, sizeof(be));
}

net::UdpFrameSpec udp_spec(net::Ipv4Addr from, net::Ipv4Addr to) {
  net::UdpFrameSpec spec;
  spec.src_ip = from;
  spec.dst_ip = to;
  spec.src_port = core::kDartQueryUdpPort;
  spec.dst_port = core::kDartQueryUdpPort;
  return spec;
}

}  // namespace

// --- GatewaySession ---------------------------------------------------------

std::uint64_t GatewaySession::query(std::span<const std::byte> key,
                                    core::ReturnPolicy policy) {
  core::QueryRequest request;
  request.request_id = next_id_++;
  request.epoch = static_cast<std::uint32_t>(gateway_->gateway_epoch());
  request.policy = policy;
  request.key.assign(key.begin(), key.end());
  return gateway_->session_submit(
      *this, QueryGateway::Family::kKv, gateway_->route_key(key),
      static_cast<std::uint8_t>(policy), 0, key,
      core::encode_query_request(request), request.request_id,
      /*cacheable=*/true);
}

std::uint64_t GatewaySession::drain_ring(std::uint32_t collector_id,
                                         std::uint64_t max_entries) {
  core::PrimitiveRequest request;
  request.op = core::PrimitiveOp::kDrainRing;
  request.request_id = next_id_++;
  request.epoch = static_cast<std::uint32_t>(gateway_->gateway_epoch());
  request.max_entries = max_entries;
  // A drain is a consuming read: never cached, never coalesced — two
  // operators draining the same ring must each get their own entries.
  return gateway_->session_submit(
      *this, QueryGateway::Family::kPrimitive,
      gateway_->apply_retarget(collector_id),
      static_cast<std::uint8_t>(request.op), 0, {},
      core::encode_primitive_request(request), request.request_id,
      /*cacheable=*/false);
}

std::uint64_t GatewaySession::read_counter(std::span<const std::byte> key) {
  core::PrimitiveRequest request;
  request.op = core::PrimitiveOp::kReadCounter;
  request.request_id = next_id_++;
  request.epoch = static_cast<std::uint32_t>(gateway_->gateway_epoch());
  request.key.assign(key.begin(), key.end());
  return gateway_->session_submit(
      *this, QueryGateway::Family::kPrimitive, gateway_->route_key(key),
      static_cast<std::uint8_t>(request.op), 0, key,
      core::encode_primitive_request(request), request.request_id,
      /*cacheable=*/true);
}

std::uint64_t GatewaySession::read_postcard_group(
    std::span<const std::byte> flow_key) {
  core::PrimitiveRequest request;
  request.op = core::PrimitiveOp::kReadPostcardGroup;
  request.request_id = next_id_++;
  request.epoch = static_cast<std::uint32_t>(gateway_->gateway_epoch());
  request.key.assign(flow_key.begin(), flow_key.end());
  return gateway_->session_submit(
      *this, QueryGateway::Family::kPrimitive, gateway_->route_key(flow_key),
      static_cast<std::uint8_t>(request.op), 0, flow_key,
      core::encode_primitive_request(request), request.request_id,
      /*cacheable=*/true);
}

std::uint64_t GatewaySession::sketch_estimate(std::span<const std::byte> key) {
  core::SketchRequest request;
  request.op = core::SketchOp::kEstimate;
  request.request_id = next_id_++;
  request.epoch = static_cast<std::uint32_t>(gateway_->gateway_epoch());
  request.key.assign(key.begin(), key.end());
  return gateway_->session_submit(
      *this, QueryGateway::Family::kSketch, gateway_->route_key(key),
      static_cast<std::uint8_t>(request.op), 0, key,
      core::encode_sketch_request(request), request.request_id,
      /*cacheable=*/true);
}

std::uint64_t GatewaySession::sketch_topk(std::uint32_t collector_id,
                                          std::uint16_t k) {
  core::SketchRequest request;
  request.op = core::SketchOp::kTopK;
  request.request_id = next_id_++;
  request.epoch = static_cast<std::uint32_t>(gateway_->gateway_epoch());
  request.k = k;
  return gateway_->session_submit(
      *this, QueryGateway::Family::kSketch,
      gateway_->apply_retarget(collector_id),
      static_cast<std::uint8_t>(request.op), k, {},
      core::encode_sketch_request(request), request.request_id,
      /*cacheable=*/true);
}

std::uint64_t GatewaySession::subscribe_key_change(
    std::span<const std::byte> key) {
  core::SubscribeRequest request;
  request.op = core::SubscribeOp::kSubscribe;
  request.kind = core::StandingKind::kKeyChange;
  request.request_id = next_id_++;
  request.key.assign(key.begin(), key.end());
  return gateway_->session_subscribe(*this, request);
}

std::uint64_t GatewaySession::subscribe_counter_threshold(
    std::span<const std::byte> key, std::uint64_t threshold) {
  core::SubscribeRequest request;
  request.op = core::SubscribeOp::kSubscribe;
  request.kind = core::StandingKind::kCounterThreshold;
  request.request_id = next_id_++;
  request.threshold = threshold;
  request.key.assign(key.begin(), key.end());
  return gateway_->session_subscribe(*this, request);
}

std::uint64_t GatewaySession::subscribe_topk_delta(std::uint32_t collector_id,
                                                   std::uint16_t k) {
  core::SubscribeRequest request;
  request.op = core::SubscribeOp::kSubscribe;
  request.kind = core::StandingKind::kTopKDelta;
  request.request_id = next_id_++;
  request.collector = collector_id;
  request.k = k;
  return gateway_->session_subscribe(*this, request);
}

std::uint64_t GatewaySession::unsubscribe(std::uint64_t subscription_id) {
  core::SubscribeRequest request;
  request.op = core::SubscribeOp::kUnsubscribe;
  request.request_id = next_id_++;
  request.subscription_id = subscription_id;
  return gateway_->session_subscribe(*this, request);
}

void GatewaySession::deliver(std::uint8_t family,
                             std::span<const std::byte> payload) {
  switch (static_cast<QueryGateway::Family>(family)) {
    case QueryGateway::Family::kKv: {
      auto response = core::parse_query_response(payload);
      if (!response) return;
      if (response->degraded()) ++degraded_;
      const std::uint64_t id = response->request_id;
      responses_[id] = *std::move(response);
      break;
    }
    case QueryGateway::Family::kPrimitive: {
      auto response = core::parse_primitive_response(payload);
      if (!response) return;
      if (response->degraded()) ++degraded_;
      const std::uint64_t id = response->request_id;
      primitive_responses_[id] = *std::move(response);
      break;
    }
    case QueryGateway::Family::kSketch: {
      auto response = core::parse_sketch_response(payload);
      if (!response) return;
      if (response->degraded()) ++degraded_;
      const std::uint64_t id = response->request_id;
      sketch_responses_[id] = *std::move(response);
      break;
    }
  }
  if (pending_ > 0) --pending_;
  ++answered_;
}

void GatewaySession::deliver_ack(const core::SubscribeAck& ack) {
  subscribe_acks_[ack.request_id] = ack;
}

void GatewaySession::deliver_notification(core::StandingNotification note) {
  ++notifications_received_;
  notifications_.push_back(std::move(note));
}

std::optional<core::QueryResponse> GatewaySession::take_response(
    std::uint64_t request_id) {
  const auto it = responses_.find(request_id);
  if (it == responses_.end()) return std::nullopt;
  core::QueryResponse resp = std::move(it->second);
  responses_.erase(it);
  return resp;
}

std::optional<core::PrimitiveResponse> GatewaySession::take_primitive_response(
    std::uint64_t request_id) {
  const auto it = primitive_responses_.find(request_id);
  if (it == primitive_responses_.end()) return std::nullopt;
  core::PrimitiveResponse resp = std::move(it->second);
  primitive_responses_.erase(it);
  return resp;
}

std::optional<core::SketchResponse> GatewaySession::take_sketch_response(
    std::uint64_t request_id) {
  const auto it = sketch_responses_.find(request_id);
  if (it == sketch_responses_.end()) return std::nullopt;
  core::SketchResponse resp = std::move(it->second);
  sketch_responses_.erase(it);
  return resp;
}

std::optional<core::SubscribeAck> GatewaySession::take_subscribe_ack(
    std::uint64_t request_id) {
  const auto it = subscribe_acks_.find(request_id);
  if (it == subscribe_acks_.end()) return std::nullopt;
  core::SubscribeAck ack = it->second;
  subscribe_acks_.erase(it);
  return ack;
}

std::vector<core::StandingNotification> GatewaySession::take_notifications() {
  std::vector<core::StandingNotification> drained;
  drained.swap(notifications_);
  return drained;
}

// --- QueryGateway -----------------------------------------------------------

QueryGateway::QueryGateway(QueryGatewayConfig config,
                           const core::ReportCrafter& crafter,
                           core::IpResolver resolver)
    : config_(std::move(config)),
      crafter_(&crafter),
      resolver_(std::move(resolver)),
      cache_(config_.cache_capacity),
      hist_kv_(0.0, config_.latency_hist_max_ns, config_.latency_hist_buckets),
      hist_primitive_(0.0, config_.latency_hist_max_ns,
                      config_.latency_hist_buckets),
      hist_sketch_(0.0, config_.latency_hist_max_ns,
                   config_.latency_hist_buckets) {
  for (std::uint32_t c = 0; c < config_.virtual_ips.size(); ++c) {
    vip_index_.emplace(config_.virtual_ips[c].value, c);
  }
}

GatewaySession& QueryGateway::open_session() {
  sessions_.push_back(
      std::unique_ptr<GatewaySession>(new GatewaySession(this, sessions_.size())));
  return *sessions_.back();
}

std::uint32_t QueryGateway::apply_retarget(std::uint32_t collector) const {
  if (const auto it = retargets_.find(collector); it != retargets_.end()) {
    return it->second;
  }
  return collector;
}

std::uint32_t QueryGateway::route_key(std::span<const std::byte> key) const {
  // Ring deployments route by live consistent-hash membership (dead members
  // already excluded); modulo deployments patch deaths via the retarget map.
  const std::uint32_t collector =
      selector_ != nullptr
          ? selector_->owner_of(key)
          : crafter_->collector_of(
                key, static_cast<std::uint32_t>(config_.service_ips.size()));
  return apply_retarget(collector);
}

obs::Histogram& QueryGateway::hist_of(Family family) {
  switch (family) {
    case Family::kPrimitive: return hist_primitive_;
    case Family::kSketch: return hist_sketch_;
    case Family::kKv: break;
  }
  return hist_kv_;
}

void QueryGateway::record_latency(Family family, double ns) {
  hist_of(family).record(ns);
  obs::Histogram* mirror = family == Family::kKv          ? reg_hist_kv_
                           : family == Family::kPrimitive ? reg_hist_primitive_
                                                          : reg_hist_sketch_;
  if (mirror != nullptr) mirror->record(ns);
}

std::uint64_t QueryGateway::session_submit(GatewaySession& session,
                                           Family family,
                                           std::uint32_t collector,
                                           std::uint8_t op, std::uint16_t k,
                                           std::span<const std::byte> key,
                                           std::vector<std::byte> payload,
                                           std::uint64_t downstream_id,
                                           bool cacheable) {
  Origin origin;
  origin.kind = Origin::Kind::kSession;
  origin.session = session.index();
  origin.downstream_id = downstream_id;
  origin.epoch = static_cast<std::uint32_t>(epoch_);
  ++session.issued_;
  ++session.pending_;
  if (submit(family, collector, op, k, key, std::move(payload), origin,
             cacheable) == 0) {
    --session.issued_;
    --session.pending_;
    return 0;
  }
  return downstream_id;
}

std::uint64_t QueryGateway::session_subscribe(
    GatewaySession& session, const core::SubscribeRequest& request) {
  Origin subscriber;
  subscriber.kind = Origin::Kind::kSession;
  subscriber.session = session.index();
  core::SubscribeAck ack = do_subscribe(request, subscriber);
  session.deliver_ack(ack);
  return request.request_id;
}

core::SubscribeAck QueryGateway::do_subscribe(
    const core::SubscribeRequest& request, Origin subscriber) {
  core::SubscribeAck ack;
  ack.op = request.op;
  ack.request_id = request.request_id;
  ack.epoch = request.epoch;
  if (request.op == core::SubscribeOp::kUnsubscribe) {
    if (standing_.erase(request.subscription_id) > 0) {
      ack.subscription_id = request.subscription_id;
    } else {
      ack.flags |= core::kResponseSubscribeRejected;
      ++subscribes_rejected_;
    }
    return ack;
  }
  const auto sub_id = register_standing(request, subscriber);
  if (sub_id) {
    ack.subscription_id = *sub_id;
    ++subscribes_accepted_;
  } else {
    ack.flags |= core::kResponseSubscribeRejected;
    ++subscribes_rejected_;
  }
  return ack;
}

std::optional<std::uint64_t> QueryGateway::register_standing(
    const core::SubscribeRequest& request, Origin subscriber) {
  Standing st;
  st.kind = request.kind;
  st.subscriber = subscriber;
  st.key = request.key;
  st.threshold = request.threshold;
  st.k = request.k;
  st.collector = request.collector;
  switch (request.kind) {
    case core::StandingKind::kKeyChange:
    case core::StandingKind::kCounterThreshold:
      if (request.key.empty()) return std::nullopt;
      break;
    case core::StandingKind::kTopKDelta:
      if (!request.key.empty() || request.k == 0 ||
          request.collector >= config_.service_ips.size()) {
        return std::nullopt;
      }
      break;
    default:
      return std::nullopt;
  }
  const std::uint64_t sub_id = next_sub_id_++;
  standing_.emplace(sub_id, std::move(st));
  return sub_id;
}

std::uint64_t QueryGateway::submit(Family family, std::uint32_t collector,
                                   std::uint8_t op, std::uint16_t k,
                                   std::span<const std::byte> key,
                                   std::vector<std::byte> payload,
                                   Origin origin, bool cacheable) {
  ++requests_;
  if (collector >= config_.service_ips.size()) {
    ++unroutable_;
    return 0;
  }
  CacheKey ck;
  ck.collector = collector;
  ck.family = static_cast<std::uint8_t>(family);
  ck.op = op;
  ck.k = k;
  ck.key.assign(key.begin(), key.end());

  if (cacheable) {
    if (auto hit = cache_.get(ck, epoch_, config_.cache_max_age_epochs)) {
      // Served locally: zero collector CPU, ~zero latency. Recording the hit
      // as 0 ns keeps the SLO histograms honest about what operators see.
      record_latency(family, 0.0);
      deliver(origin, family, hit->payload, hit->age_epochs);
      return origin.downstream_id != 0 ? origin.downstream_id : 1;
    }
    if (const auto it = coalesce_.find(ck); it != coalesce_.end()) {
      upstream_[it->second].waiters.push_back(origin);
      ++coalesced_;
      return origin.downstream_id != 0 ? origin.downstream_id : 1;
    }
  }

  PendingUpstream rec;
  rec.collector = collector;
  rec.family = family;
  rec.op = op;
  rec.payload = std::move(payload);
  rec.retries_left = config_.max_retries;
  rec.waiters.push_back(origin);
  rec.first_enqueued_ns = sim_ != nullptr ? sim_->now_ns() : 0;
  rec.cacheable = cacheable;
  rec.cache_key = ck;

  const std::uint64_t logical = next_upstream_id_++;
  rec.newest_wire_id = logical;
  rec.wire_ids.push_back(logical);
  patch_id_epoch(rec.payload, logical, static_cast<std::uint32_t>(epoch_));
  upstream_alias_[logical] = logical;
  const auto [it, inserted] = upstream_.emplace(logical, std::move(rec));
  if (cacheable) coalesce_.emplace(std::move(ck), logical);
  inflight_highwater_ = std::max(inflight_highwater_, upstream_.size());
  send_upstream(it->second);
  arm_deadline(logical, logical);
  return origin.downstream_id != 0 ? origin.downstream_id : 1;
}

void QueryGateway::send_upstream(PendingUpstream& rec) {
  // Counts every upstream frame, retries included — the saturation signal
  // operators alert on (upstream_sent - upstream_retries = logical reads).
  ++upstream_sent_;
  if (sim_ == nullptr) return;
  const net::Ipv4Addr service = config_.service_ips[rec.collector];
  const auto dest = resolver_(service);
  if (!dest) return;  // dead service: the deadline machinery takes over
  auto frame =
      net::build_udp_frame(udp_spec(config_.gateway_ip, service), rec.payload);
  sim_->send(self_, *dest, net::Packet(std::move(frame)));
}

void QueryGateway::arm_deadline(std::uint64_t logical_id,
                                std::uint64_t wire_id) {
  if (config_.request_timeout_ns == 0 || sim_ == nullptr) return;
  sim_->schedule(sim_->now_ns() + config_.request_timeout_ns,
                 [this, logical_id, wire_id] { on_deadline(logical_id, wire_id); });
}

void QueryGateway::on_deadline(std::uint64_t logical_id,
                               std::uint64_t wire_id) {
  const auto it = upstream_.find(logical_id);
  if (it == upstream_.end() || it->second.newest_wire_id != wire_id) return;
  PendingUpstream& rec = it->second;
  if (rec.retries_left > 0) {
    --rec.retries_left;
    ++upstream_retries_;
    const std::uint64_t fresh = next_upstream_id_++;
    const std::uint64_t be = host_to_net64(fresh);
    std::memcpy(rec.payload.data() + kIdOffset, &be, sizeof(be));
    rec.newest_wire_id = fresh;
    rec.wire_ids.push_back(fresh);
    upstream_alias_[fresh] = logical_id;
    send_upstream(rec);
    arm_deadline(logical_id, fresh);
    return;
  }
  // Retries exhausted: every waiter gets a synthesized answer flagged
  // degraded + gateway-timeout, so downstream requests never park forever.
  // Standing reads are simply skipped — the predicate re-evaluates next tick.
  PendingUpstream dead = std::move(rec);
  for (const auto id : dead.wire_ids) upstream_alias_.erase(id);
  if (dead.cacheable) coalesce_.erase(dead.cache_key);
  upstream_.erase(it);
  ++upstream_timeouts_;
  const double waited_ns =
      sim_ != nullptr
          ? static_cast<double>(sim_->now_ns() - dead.first_enqueued_ns)
          : 0.0;
  record_latency(dead.family, waited_ns);
  const auto payload = synthesize_timeout(dead);
  for (const Origin& origin : dead.waiters) {
    if (origin.kind == Origin::Kind::kStanding) continue;
    deliver(origin, dead.family, payload, 0);
  }
}

std::vector<std::byte> QueryGateway::synthesize_timeout(
    const PendingUpstream& rec) const {
  const std::uint8_t flags =
      core::kResponseDegraded | core::kResponseGatewayTimeout;
  switch (rec.family) {
    case Family::kPrimitive: {
      core::PrimitiveResponse resp;
      resp.op = static_cast<core::PrimitiveOp>(rec.op);
      resp.flags = flags;
      return core::encode_primitive_response(resp);
    }
    case Family::kSketch: {
      core::SketchResponse resp;
      resp.op = static_cast<core::SketchOp>(rec.op);
      resp.flags = flags;
      return core::encode_sketch_response(resp);
    }
    case Family::kKv: break;
  }
  core::QueryResponse resp;
  resp.flags = flags;
  return core::encode_query_response(resp);
}

void QueryGateway::receive(net::Packet packet, std::uint64_t now_ns) {
  const auto frame = net::parse_udp_frame(packet.bytes());
  if (!frame) {
    ++malformed_;
    return;
  }
  if (frame->udp.dst_port != core::kDartQueryUdpPort) {
    ++not_for_me_;
    return;
  }
  const bool to_gateway = frame->ip.dst == config_.gateway_ip;
  const auto vip = vip_index_.find(frame->ip.dst.value);
  if (!to_gateway && vip == vip_index_.end()) {
    ++not_for_me_;
    return;
  }
  switch (read_magic(frame->payload)) {
    case kMagicQueryRequest:
    case kMagicPrimitiveRequest:
    case kMagicSketchRequest:
      handle_wire_request(*frame, to_gateway ? 0 : vip->second, !to_gateway);
      return;
    case kMagicSubscribeRequest:
      handle_subscribe(*frame);
      return;
    case kMagicQueryResponse:
      handle_upstream_response(Family::kKv, frame->payload, now_ns);
      return;
    case kMagicPrimitiveResponse:
      handle_upstream_response(Family::kPrimitive, frame->payload, now_ns);
      return;
    case kMagicSketchResponse:
      handle_upstream_response(Family::kSketch, frame->payload, now_ns);
      return;
    default:
      ++malformed_;
      return;
  }
}

void QueryGateway::handle_wire_request(const net::ParsedUdpFrame& frame,
                                       std::uint32_t collector_hint,
                                       bool hinted) {
  Origin origin;
  origin.kind = Origin::Kind::kWire;
  origin.client_ip = frame.ip.src;
  origin.reply_from = frame.ip.dst;

  Family family;
  std::uint32_t collector = 0;
  std::uint8_t op = 0;
  std::uint16_t k = 0;
  std::span<const std::byte> key;
  // The parsed request is only needed for routing + cache identity; the
  // FORWARDED payload is the client's own bytes with the id re-stamped.
  core::QueryRequest kv;
  core::PrimitiveRequest prim;
  core::SketchRequest sk;

  switch (read_magic(frame.payload)) {
    case kMagicQueryRequest: {
      auto parsed = core::parse_query_request(frame.payload);
      if (!parsed) {
        ++malformed_;
        return;
      }
      kv = *std::move(parsed);
      family = Family::kKv;
      op = static_cast<std::uint8_t>(kv.policy);
      key = kv.key;
      origin.downstream_id = kv.request_id;
      origin.epoch = kv.epoch;
      collector = hinted ? apply_retarget(collector_hint) : route_key(kv.key);
      break;
    }
    case kMagicPrimitiveRequest: {
      auto parsed = core::parse_primitive_request(frame.payload);
      if (!parsed) {
        ++malformed_;
        return;
      }
      prim = *std::move(parsed);
      family = Family::kPrimitive;
      op = static_cast<std::uint8_t>(prim.op);
      key = prim.key;
      origin.downstream_id = prim.request_id;
      origin.epoch = prim.epoch;
      if (hinted) {
        collector = apply_retarget(collector_hint);
      } else if (prim.op != core::PrimitiveOp::kDrainRing) {
        collector = route_key(prim.key);
      } else {
        // A drain names its collector by ADDRESS (the virtual IP); at the
        // gateway's own IP there is nothing to route it by.
        ++unroutable_;
        return;
      }
      break;
    }
    default: {  // kMagicSketchRequest — receive() only routes these three
      auto parsed = core::parse_sketch_request(frame.payload);
      if (!parsed) {
        ++malformed_;
        return;
      }
      sk = *std::move(parsed);
      family = Family::kSketch;
      op = static_cast<std::uint8_t>(sk.op);
      k = sk.k;
      key = sk.key;
      origin.downstream_id = sk.request_id;
      origin.epoch = sk.epoch;
      if (hinted) {
        collector = apply_retarget(collector_hint);
      } else if (sk.op == core::SketchOp::kEstimate) {
        collector = route_key(sk.key);
      } else {
        ++unroutable_;
        return;
      }
      break;
    }
  }

  const bool cacheable =
      !(family == Family::kPrimitive &&
        op == static_cast<std::uint8_t>(core::PrimitiveOp::kDrainRing));
  std::vector<std::byte> payload(frame.payload.begin(), frame.payload.end());
  (void)submit(family, collector, op, k, key, std::move(payload), origin,
               cacheable);
}

void QueryGateway::handle_subscribe(const net::ParsedUdpFrame& frame) {
  auto request = core::parse_subscribe_request(frame.payload);
  if (!request) {
    ++malformed_;
    return;
  }
  Origin subscriber;
  subscriber.kind = Origin::Kind::kWire;
  subscriber.client_ip = frame.ip.src;
  subscriber.reply_from = frame.ip.dst;
  const core::SubscribeAck ack = do_subscribe(*request, subscriber);
  if (sim_ == nullptr) return;
  const auto dest = resolver_(frame.ip.src);
  if (!dest) return;
  auto reply = net::build_udp_frame(udp_spec(frame.ip.dst, frame.ip.src),
                                    core::encode_subscribe_ack(ack));
  sim_->send(self_, *dest, net::Packet(std::move(reply)));
}

void QueryGateway::handle_upstream_response(Family family,
                                            std::span<const std::byte> payload,
                                            std::uint64_t now_ns) {
  const std::uint64_t wire_id = read_request_id(payload);
  const auto alias = upstream_alias_.find(wire_id);
  if (alias == upstream_alias_.end()) {
    // Duplicate, replay, or an answer that outlived its timeout synthesis.
    ++upstream_unexpected_;
    return;
  }
  const std::uint64_t logical = alias->second;
  const auto it = upstream_.find(logical);
  if (it == upstream_.end() || it->second.family != family) {
    ++upstream_unexpected_;
    return;
  }
  PendingUpstream rec = std::move(it->second);
  for (const auto id : rec.wire_ids) upstream_alias_.erase(id);
  if (rec.cacheable) coalesce_.erase(rec.cache_key);
  upstream_.erase(it);

  record_latency(family,
                 static_cast<double>(now_ns - rec.first_enqueued_ns));
  // Only clean answers are worth replaying: degraded / unavailable /
  // timed-out responses must be re-asked, not amplified by the cache.
  if (rec.cacheable && payload.size() >= kResponseHeaderBytes &&
      payload[kFlagsOffset] == std::byte{0}) {
    cache_.put(rec.cache_key,
               std::vector<std::byte>(payload.begin(), payload.end()), epoch_);
  }
  for (const Origin& origin : rec.waiters) {
    deliver(origin, family, payload, 0);
  }
}

void QueryGateway::deliver(const Origin& origin, Family family,
                           std::span<const std::byte> payload,
                           std::uint64_t age_epochs) {
  if (origin.kind == Origin::Kind::kStanding) {
    evaluate_standing(origin.sub_id, family, payload);
    return;
  }
  std::vector<std::byte> copy(payload.begin(), payload.end());
  patch_id_epoch(copy, origin.downstream_id, origin.epoch);
  add_staleness(copy, age_epochs);
  if (origin.kind == Origin::Kind::kSession) {
    if (origin.session < sessions_.size()) {
      sessions_[origin.session]->deliver(static_cast<std::uint8_t>(family),
                                         copy);
    }
    return;
  }
  if (sim_ == nullptr) return;
  const auto dest = resolver_(origin.client_ip);
  if (!dest) return;  // requester unreachable — drop, like real UDP
  auto reply =
      net::build_udp_frame(udp_spec(origin.reply_from, origin.client_ip), copy);
  sim_->send(self_, *dest, net::Packet(std::move(reply)));
}

void QueryGateway::on_epoch(std::uint64_t epoch) {
  epoch_ = epoch;
  // Evaluate every standing predicate through the SAME submit pipeline
  // operators use: standing reads coalesce with operator reads and with each
  // other, so a thousand subscriptions on one hot key cost one upstream read.
  for (auto& [sub_id, st] : standing_) {
    Origin origin;
    origin.kind = Origin::Kind::kStanding;
    origin.sub_id = sub_id;
    switch (st.kind) {
      case core::StandingKind::kKeyChange: {
        core::QueryRequest req;
        req.epoch = static_cast<std::uint32_t>(epoch_);
        req.key = st.key;
        (void)submit(Family::kKv, route_key(st.key),
                     static_cast<std::uint8_t>(req.policy), 0, st.key,
                     core::encode_query_request(req), origin,
                     /*cacheable=*/true);
        break;
      }
      case core::StandingKind::kCounterThreshold: {
        core::PrimitiveRequest req;
        req.op = core::PrimitiveOp::kReadCounter;
        req.epoch = static_cast<std::uint32_t>(epoch_);
        req.key = st.key;
        (void)submit(Family::kPrimitive, route_key(st.key),
                     static_cast<std::uint8_t>(req.op), 0, st.key,
                     core::encode_primitive_request(req), origin,
                     /*cacheable=*/true);
        break;
      }
      case core::StandingKind::kTopKDelta: {
        core::SketchRequest req;
        req.op = core::SketchOp::kTopK;
        req.epoch = static_cast<std::uint32_t>(epoch_);
        req.k = st.k;
        (void)submit(Family::kSketch, apply_retarget(st.collector),
                     static_cast<std::uint8_t>(req.op), st.k, {},
                     core::encode_sketch_request(req), origin,
                     /*cacheable=*/true);
        break;
      }
    }
  }
}

void QueryGateway::evaluate_standing(std::uint64_t sub_id, Family family,
                                     std::span<const std::byte> payload) {
  const auto it = standing_.find(sub_id);
  if (it == standing_.end()) return;  // unsubscribed while the read flew
  Standing& st = it->second;
  switch (st.kind) {
    case core::StandingKind::kKeyChange: {
      if (family != Family::kKv) return;
      const auto resp = core::parse_query_response(payload);
      if (!resp) return;
      const bool changed = !st.has_last || resp->outcome != st.last_outcome ||
                           resp->value != st.last_value;
      if (changed) {
        core::StandingNotification note;
        note.kind = st.kind;
        note.value = resp->outcome == core::QueryOutcome::kFound ? 1 : 0;
        note.key = st.key;
        note.aux = resp->value;
        note.flags = resp->flags & core::kResponseDegraded;
        push_notification(sub_id, st, std::move(note));
      }
      st.has_last = true;
      st.last_outcome = resp->outcome;
      st.last_value = resp->value;
      return;
    }
    case core::StandingKind::kCounterThreshold: {
      if (family != Family::kPrimitive) return;
      const auto resp = core::parse_primitive_response(payload);
      if (!resp || resp->op != core::PrimitiveOp::kReadCounter) return;
      if (resp->counter_value >= st.threshold) {
        if (st.armed) {
          st.armed = false;
          core::StandingNotification note;
          note.kind = st.kind;
          note.value = resp->counter_value;
          note.key = st.key;
          note.flags = resp->flags & core::kResponseDegraded;
          push_notification(sub_id, st, std::move(note));
        }
      } else {
        st.armed = true;  // dropped below: re-arm for the next crossing
      }
      return;
    }
    case core::StandingKind::kTopKDelta: {
      if (family != Family::kSketch) return;
      const auto resp = core::parse_sketch_response(payload);
      if (!resp || resp->op != core::SketchOp::kTopK) return;
      std::set<std::vector<std::byte>> members;
      for (const core::HeavyHitterWire& hh : resp->hitters) {
        members.insert(hh.key);
        if (!st.members.contains(hh.key)) {
          core::StandingNotification note;
          note.kind = st.kind;
          note.value = hh.count;
          note.key = hh.key;
          note.flags = resp->flags & core::kResponseDegraded;
          push_notification(sub_id, st, std::move(note));
        }
      }
      st.members = std::move(members);
      return;
    }
  }
}

void QueryGateway::push_notification(std::uint64_t sub_id, Standing& st,
                                     core::StandingNotification note) {
  note.subscription_id = sub_id;
  note.seq = ++st.seq;
  note.gateway_epoch = epoch_;
  ++notifications_sent_;
  const Origin& to = st.subscriber;
  if (to.kind == Origin::Kind::kSession) {
    if (to.session < sessions_.size()) {
      sessions_[to.session]->deliver_notification(std::move(note));
    }
    return;
  }
  if (sim_ == nullptr) return;
  const auto dest = resolver_(to.client_ip);
  if (!dest) return;
  auto frame = net::build_udp_frame(udp_spec(to.reply_from, to.client_ip),
                                    core::encode_notification(note));
  sim_->send(self_, *dest, net::Packet(std::move(frame)));
}

void QueryGateway::bind_metrics(obs::MetricRegistry& registry,
                                const std::string& prefix) {
  registry.counter_fn(prefix + "_gateway_requests_total",
                      [this] { return requests_; },
                      "downstream requests accepted (wire + session)");
  registry.counter_fn(prefix + "_gateway_cache_hits_total",
                      [this] { return cache_.hits(); },
                      "reads served from the result cache");
  registry.counter_fn(prefix + "_gateway_cache_misses_total",
                      [this] { return cache_.misses(); },
                      "cacheable reads that went upstream");
  registry.counter_fn(prefix + "_gateway_cache_inserts_total",
                      [this] { return cache_.inserts(); },
                      "clean upstream answers cached");
  registry.counter_fn(prefix + "_gateway_cache_evictions_total",
                      [this] { return cache_.evictions(); },
                      "entries dropped by LRU capacity or epoch expiry");
  registry.counter_fn(prefix + "_gateway_coalesced_total",
                      [this] { return coalesced_; },
                      "requests coalesced onto an in-flight upstream read");
  registry.counter_fn(prefix + "_gateway_upstream_sent_total",
                      [this] { return upstream_sent_; },
                      "upstream reads issued to collector services");
  registry.counter_fn(prefix + "_gateway_upstream_retries_total",
                      [this] { return upstream_retries_; },
                      "upstream resends under fresh wire ids");
  registry.counter_fn(prefix + "_gateway_upstream_timeouts_total",
                      [this] { return upstream_timeouts_; },
                      "upstream reads failed after exhausting retries");
  registry.counter_fn(prefix + "_gateway_upstream_unexpected_total",
                      [this] { return upstream_unexpected_; },
                      "duplicate/replayed/unknown upstream responses");
  registry.counter_fn(prefix + "_gateway_notifications_total",
                      [this] { return notifications_sent_; },
                      "standing-query notifications pushed");
  registry.counter_fn(prefix + "_gateway_subscribes_total",
                      [this] { return subscribes_accepted_; },
                      "standing-query registrations accepted");
  registry.counter_fn(prefix + "_gateway_subscribes_rejected_total",
                      [this] { return subscribes_rejected_; },
                      "subscribe requests refused (bad predicate)");
  registry.counter_fn(prefix + "_gateway_malformed_total",
                      [this] { return malformed_; },
                      "unparsable frames or unknown magics");
  registry.counter_fn(prefix + "_gateway_not_for_me_total",
                      [this] { return not_for_me_; },
                      "well-formed frames addressed to another node");
  registry.counter_fn(prefix + "_gateway_unroutable_total",
                      [this] { return unroutable_; },
                      "requests with no routable collector");
  registry.gauge_fn(prefix + "_gateway_sessions",
                    [this] { return static_cast<double>(sessions_.size()); },
                    "open in-process operator sessions");
  registry.gauge_fn(prefix + "_gateway_inflight",
                    [this] { return static_cast<double>(upstream_.size()); },
                    "upstream reads currently in flight");
  registry.gauge_fn(prefix + "_gateway_inflight_highwater",
                    [this] { return static_cast<double>(inflight_highwater_); },
                    "high-water mark of in-flight upstream reads");
  registry.gauge_fn(prefix + "_gateway_standing",
                    [this] { return static_cast<double>(standing_.size()); },
                    "registered standing queries");
  reg_hist_kv_ = &registry.histogram(
      prefix + "_gateway_latency_kv_ns", 0.0, config_.latency_hist_max_ns,
      config_.latency_hist_buckets, "KV query latency through the gateway (ns)");
  reg_hist_primitive_ = &registry.histogram(
      prefix + "_gateway_latency_primitive_ns", 0.0,
      config_.latency_hist_max_ns, config_.latency_hist_buckets,
      "primitive query latency through the gateway (ns)");
  reg_hist_sketch_ = &registry.histogram(
      prefix + "_gateway_latency_sketch_ns", 0.0, config_.latency_hist_max_ns,
      config_.latency_hist_buckets,
      "sketch query latency through the gateway (ns)");
}

}  // namespace dart::query
