#include "query/result_cache.hpp"

#include <algorithm>
#include <utility>

#include "common/hash.hpp"

namespace dart::query {

std::size_t CacheKeyHash::operator()(const CacheKey& k) const noexcept {
  // Seed the byte hash with the fixed-width identity fields so two ops over
  // the same key bytes never collide by construction.
  const std::uint64_t seed = (std::uint64_t{k.collector} << 32) |
                             (std::uint64_t{k.family} << 24) |
                             (std::uint64_t{k.op} << 16) | k.k;
  return static_cast<std::size_t>(xxhash64(k.key, seed));
}

ResultCache::ResultCache(std::size_t capacity)
    : per_shard_capacity_(std::max<std::size_t>(1, capacity / kShards)) {}

ResultCache::Shard& ResultCache::shard_of(const CacheKey& key) noexcept {
  return shards_[CacheKeyHash{}(key) % kShards];
}

std::optional<CacheHit> ResultCache::get(const CacheKey& key,
                                         std::uint64_t now_epoch,
                                         std::uint64_t max_age_epochs) {
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++misses_;
    return std::nullopt;
  }
  // A rotation can regress now_epoch only in broken harnesses; clamp rather
  // than underflow into "maximally fresh".
  const std::uint64_t age =
      now_epoch >= it->second.fill_epoch ? now_epoch - it->second.fill_epoch : 0;
  if (age > max_age_epochs) {
    // Expired — evict now so dead entries don't crowd the LRU.
    shard.lru.erase(it->second.lru_pos);
    shard.map.erase(it);
    ++evictions_;
    ++misses_;
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  ++hits_;
  return CacheHit{it->second.payload, age};
}

void ResultCache::put(const CacheKey& key, std::vector<std::byte> payload,
                      std::uint64_t epoch) {
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mu);
  if (const auto it = shard.map.find(key); it != shard.map.end()) {
    it->second.payload = std::move(payload);
    it->second.fill_epoch = epoch;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    ++inserts_;
    return;
  }
  if (shard.map.size() >= per_shard_capacity_) {
    const CacheKey& victim = shard.lru.back();
    shard.map.erase(victim);
    shard.lru.pop_back();
    ++evictions_;
  }
  shard.lru.push_front(key);
  Entry entry;
  entry.payload = std::move(payload);
  entry.fill_epoch = epoch;
  entry.lru_pos = shard.lru.begin();
  shard.map.emplace(key, std::move(entry));
  ++inserts_;
}

std::size_t ResultCache::invalidate_collector(std::uint32_t collector) {
  std::size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->first.collector == collector) {
        shard.lru.erase(it->second.lru_pos);
        it = shard.map.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  evictions_ += dropped;
  return dropped;
}

std::size_t ResultCache::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

}  // namespace dart::query
