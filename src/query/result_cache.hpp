// Read-side result cache for the query gateway (docs/QUERY_PLANE.md).
//
// The collector pool's whole CPU budget is the query plane (§3.2), so the
// gateway avoids spending it twice on the same answer: responses to
// idempotent reads are cached under (collector, family, op, policy/k, key)
// and served locally while they are still fresh. Freshness is defined by the
// SAME epoch machinery that bounds staleness everywhere else in the system:
// every entry remembers the gateway epoch it was filled in, a hit older than
// `max_age_epochs` is a miss, and the age of a served hit is added to the
// response's `stale_epochs` so the operator sees exactly how old the answer
// is. With the default max age of 0, a rotation invalidates the entire cache
// at once — no TTL guessing.
//
// Entries hold the ENCODED upstream response payload. All three response
// families share the header prefix (id at [4,12), epoch at [12,16), flags at
// [16], stale_epochs at [17,19)), so the gateway re-stamps a cached copy for
// each downstream waiter without re-parsing it.
//
// The map is sharded 16 ways with per-shard mutexes and LRU order; the
// gateway itself is single-threaded (a simulator node), but the cache is
// shared state the sanitizer matrix hammers from many threads, and striping
// keeps that honest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/atomic_counter.hpp"

namespace dart::query {

// Identity of one cacheable read. `family` discriminates the protocol
// (1 = KV query-v2, 2 = primitive v1, 3 = sketch v1); `op` is the policy
// byte for KV and the op byte otherwise; `k` matters only for sketch top-k.
struct CacheKey {
  std::uint32_t collector = 0;
  std::uint8_t family = 0;
  std::uint8_t op = 0;
  std::uint16_t k = 0;
  std::vector<std::byte> key;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const noexcept;
};

// A served hit: the cached payload plus how many epochs old it is.
struct CacheHit {
  std::vector<std::byte> payload;
  std::uint64_t age_epochs = 0;
};

class ResultCache {
 public:
  // `capacity` is the total entry budget across all shards (LRU per shard).
  explicit ResultCache(std::size_t capacity);

  // Fresh copy of the entry, if present and at most `max_age_epochs` old at
  // `now_epoch`. Expired entries are evicted on the spot.
  [[nodiscard]] std::optional<CacheHit> get(const CacheKey& key,
                                            std::uint64_t now_epoch,
                                            std::uint64_t max_age_epochs);

  // Inserts/overwrites the entry, stamped with the filling epoch.
  void put(const CacheKey& key, std::vector<std::byte> payload,
           std::uint64_t epoch);

  // Drops every entry cached under `collector`, returning how many were
  // evicted. The fault plane calls this when a membership change retargets
  // keys away from (failover) or back to (failback) a collector — cached
  // answers under the old route must not outlive the route.
  std::size_t invalidate_collector(std::uint32_t collector);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.load(); }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_.load(); }
  [[nodiscard]] std::uint64_t inserts() const noexcept { return inserts_.load(); }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load();
  }
  [[nodiscard]] std::size_t size() const;

 private:
  static constexpr std::size_t kShards = 16;

  struct Entry {
    std::vector<std::byte> payload;
    std::uint64_t fill_epoch = 0;
    std::list<CacheKey>::iterator lru_pos;  // into the shard's LRU list
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<CacheKey, Entry, CacheKeyHash> map;
    std::list<CacheKey> lru;  // front = most recent
  };

  [[nodiscard]] Shard& shard_of(const CacheKey& key) noexcept;

  std::size_t per_shard_capacity_;
  Shard shards_[kShards];
  RelaxedCounter hits_;
  RelaxedCounter misses_;
  RelaxedCounter inserts_;
  RelaxedCounter evictions_;
};

}  // namespace dart::query
