// QueryGateway — the production query plane in front of the collector pool
// (docs/QUERY_PLANE.md).
//
// DTA moves the collector CPU budget from ingest to query answering (§3.2),
// which makes the query path the thing that saturates first in production.
// The gateway multiplexes thousands of operator sessions over the pool:
//
//  - Pipelining: every session can keep many requests in flight; the gateway
//    tracks each downstream request independently under the same
//    outstanding-request-id discipline OperatorClient uses, re-stamping ids
//    at the boundary so upstream and downstream id spaces never mix.
//  - Coalescing: concurrent identical reads (same collector, op, key) ride
//    ONE upstream request; every waiter gets a copy of the single answer
//    with its own id and epoch patched back in.
//  - Caching: answers to idempotent reads are kept in a ResultCache bounded
//    by the epoch machinery — a hit's age in epochs is added to the
//    response's stale_epochs, so cached answers are exactly as honest about
//    staleness as live ones (result_cache.hpp).
//  - Standing queries (Sonata-style): operators register a predicate once —
//    key-change, counter-threshold, or top-k-delta — and the gateway
//    evaluates all predicates on every epoch tick, PUSHING a notification
//    frame when one fires instead of being polled.
//  - SLOs: per-family latency histograms (p50/p99 via HistogramSnapshot) and
//    saturation gauges (inflight, high-water, sessions, standing) are
//    exported through obs::MetricRegistry.
//
// Deployment shape: the gateway is one net::Node holding the gateway IP plus
// one VIRTUAL IP per collector. Wire clients (unmodified OperatorClient)
// are pointed at the virtual IPs — the dst address names the target
// collector, so collector-addressed ops (drain-ring, top-k) need no wire
// change — while keyed ops may also target the gateway IP directly and be
// hash-routed. In-process GatewaySession handles carry the same traffic
// without per-client simulator nodes, which is what lets the scaling bench
// drive 4096 concurrent clients.
//
// Upstream timeouts reuse the deadline+retry discipline: a lost upstream
// response is retried under a fresh upstream id, and when retries are
// exhausted every waiter receives a synthesized response flagged
// kResponseDegraded | kResponseGatewayTimeout — requests never park forever.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query_protocol.hpp"
#include "net/headers.hpp"
#include "core/query_service.hpp"
#include "core/report_crafter.hpp"
#include "net/netsim.hpp"
#include "obs/metric.hpp"
#include "query/result_cache.hpp"

namespace dart::query {

struct QueryGatewayConfig {
  net::Ipv4Addr gateway_ip{};                // subscribe + keyed-op front door
  std::vector<net::Ipv4Addr> virtual_ips;    // per-collector wire front, [c]
  std::vector<net::Ipv4Addr> service_ips;    // upstream query services, [c]
  std::uint64_t request_timeout_ns = 2'000'000;  // per upstream try
  std::uint32_t max_retries = 2;                 // upstream resends per request
  std::size_t cache_capacity = 4096;             // ResultCache entries
  std::uint64_t cache_max_age_epochs = 0;        // 0 = same-epoch hits only
  double latency_hist_max_ns = 20'000'000.0;     // SLO histogram upper bound
  std::size_t latency_hist_buckets = 200;
};

class QueryGateway;

// One operator's in-process handle on the gateway: the same five read ops
// and four subscribe ops OperatorClient offers, minus the wire. Requests
// return a session-local id; answers arrive via the take_* accessors after
// the simulator has run. Sessions are created by QueryGateway::open_session
// and owned by the gateway.
class GatewaySession {
 public:
  std::uint64_t query(std::span<const std::byte> key,
                      core::ReturnPolicy policy = core::ReturnPolicy::kPlurality);
  std::uint64_t drain_ring(std::uint32_t collector_id,
                           std::uint64_t max_entries = 0);
  std::uint64_t read_counter(std::span<const std::byte> key);
  std::uint64_t read_postcard_group(std::span<const std::byte> flow_key);
  std::uint64_t sketch_estimate(std::span<const std::byte> key);
  std::uint64_t sketch_topk(std::uint32_t collector_id, std::uint16_t k);

  std::uint64_t subscribe_key_change(std::span<const std::byte> key);
  std::uint64_t subscribe_counter_threshold(std::span<const std::byte> key,
                                            std::uint64_t threshold);
  std::uint64_t subscribe_topk_delta(std::uint32_t collector_id,
                                     std::uint16_t k);
  std::uint64_t unsubscribe(std::uint64_t subscription_id);

  [[nodiscard]] std::optional<core::QueryResponse> take_response(
      std::uint64_t request_id);
  [[nodiscard]] std::optional<core::PrimitiveResponse> take_primitive_response(
      std::uint64_t request_id);
  [[nodiscard]] std::optional<core::SketchResponse> take_sketch_response(
      std::uint64_t request_id);
  [[nodiscard]] std::optional<core::SubscribeAck> take_subscribe_ack(
      std::uint64_t request_id);
  [[nodiscard]] std::vector<core::StandingNotification> take_notifications();

  // Requests issued and not yet answered.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }
  [[nodiscard]] std::uint64_t answered() const noexcept { return answered_; }
  // Answers that carried the degraded flag (includes gateway timeouts).
  [[nodiscard]] std::uint64_t degraded() const noexcept { return degraded_; }
  [[nodiscard]] std::uint64_t notifications_received() const noexcept {
    return notifications_received_;
  }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

 private:
  friend class QueryGateway;
  GatewaySession(QueryGateway* gateway, std::size_t index)
      : gateway_(gateway), index_(index) {}

  // Called by the gateway when this session's answer is ready. `payload` is
  // the encoded response, already re-stamped with this session's id/epoch.
  void deliver(std::uint8_t family, std::span<const std::byte> payload);
  void deliver_ack(const core::SubscribeAck& ack);
  void deliver_notification(core::StandingNotification note);

  QueryGateway* gateway_;
  std::size_t index_;
  std::uint64_t next_id_ = 1;
  std::size_t pending_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t answered_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t notifications_received_ = 0;
  std::unordered_map<std::uint64_t, core::QueryResponse> responses_;
  std::unordered_map<std::uint64_t, core::PrimitiveResponse> primitive_responses_;
  std::unordered_map<std::uint64_t, core::SketchResponse> sketch_responses_;
  std::unordered_map<std::uint64_t, core::SubscribeAck> subscribe_acks_;
  std::vector<core::StandingNotification> notifications_;
};

class QueryGateway final : public net::Node {
 public:
  // `crafter` supplies the deployment hash for key→collector routing (the
  // same family switches and clients use, so routing agrees everywhere).
  QueryGateway(QueryGatewayConfig config, const core::ReportCrafter& crafter,
               core::IpResolver resolver);

  void receive(net::Packet packet, std::uint64_t now_ns) override;

  // Opens an in-process operator session (owned by the gateway; stable
  // address for the gateway's lifetime).
  [[nodiscard]] GatewaySession& open_session();
  [[nodiscard]] std::size_t n_sessions() const noexcept {
    return sessions_.size();
  }

  // Epoch tick from the rotation machinery: advances the staleness anchor
  // the cache ages against and evaluates every standing predicate (which may
  // push notifications once the resulting upstream reads complete).
  void on_epoch(std::uint64_t epoch);
  [[nodiscard]] std::uint64_t gateway_epoch() const noexcept { return epoch_; }

  // Failover redirect, mirroring OperatorClient::retarget: requests routed
  // at dead collector `owner_id` — by key hash or by virtual IP — go to
  // `backup_id`'s service instead.
  void retarget(std::uint32_t owner_id, std::uint32_t backup_id) {
    retargets_[owner_id] = backup_id;
  }
  void clear_retarget(std::uint32_t owner_id) { retargets_.erase(owner_id); }

  // Ring deployments: key-hashed routing consults the live consistent-hash
  // selector instead of crafter->collector_of, so a membership change
  // re-routes exactly the moved keys — standing queries included, since
  // every epoch's predicate evaluation re-resolves through route_key. The
  // caller keeps ownership and must invalidate_collector() on the cache when
  // it changes the membership (the fault plane does; see RecoveryManager).
  void set_selector(const core::CollectorSelector* selector) noexcept {
    selector_ = selector;
  }

  // Registers `<prefix>_gateway_*` counters/gauges and the per-family
  // latency histograms `<prefix>_gateway_latency_{kv,primitive,sketch}_ns`.
  void bind_metrics(obs::MetricRegistry& registry, const std::string& prefix);

  [[nodiscard]] const QueryGatewayConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] std::size_t inflight() const noexcept {
    return upstream_.size();
  }
  [[nodiscard]] std::size_t inflight_highwater() const noexcept {
    return inflight_highwater_;
  }
  [[nodiscard]] std::size_t n_standing() const noexcept {
    return standing_.size();
  }
  [[nodiscard]] std::uint64_t requests_total() const noexcept {
    return requests_;
  }
  [[nodiscard]] std::uint64_t coalesced_total() const noexcept {
    return coalesced_;
  }
  [[nodiscard]] std::uint64_t upstream_sent() const noexcept {
    return upstream_sent_;
  }
  [[nodiscard]] std::uint64_t upstream_retries() const noexcept {
    return upstream_retries_;
  }
  [[nodiscard]] std::uint64_t upstream_timeouts() const noexcept {
    return upstream_timeouts_;
  }
  [[nodiscard]] std::uint64_t upstream_unexpected() const noexcept {
    return upstream_unexpected_;
  }
  [[nodiscard]] std::uint64_t notifications_sent() const noexcept {
    return notifications_sent_;
  }
  [[nodiscard]] std::uint64_t subscribes_accepted() const noexcept {
    return subscribes_accepted_;
  }
  [[nodiscard]] std::uint64_t subscribes_rejected() const noexcept {
    return subscribes_rejected_;
  }
  // Per-family latency snapshot (sim-time ns, cache hits recorded as 0).
  [[nodiscard]] obs::HistogramSnapshot latency_kv() const {
    return hist_kv_.snapshot();
  }
  [[nodiscard]] obs::HistogramSnapshot latency_primitive() const {
    return hist_primitive_.snapshot();
  }
  [[nodiscard]] obs::HistogramSnapshot latency_sketch() const {
    return hist_sketch_.snapshot();
  }

 private:
  friend class GatewaySession;

  // Protocol family of one request/response, used for cache keys, latency
  // attribution, and timeout synthesis.
  enum class Family : std::uint8_t { kKv = 1, kPrimitive = 2, kSketch = 3 };

  // Who is waiting on an upstream answer.
  struct Origin {
    enum class Kind : std::uint8_t { kWire, kSession, kStanding };
    Kind kind = Kind::kSession;
    net::Ipv4Addr client_ip{};   // kWire: reply destination
    net::Ipv4Addr reply_from{};  // kWire: source IP of the reply frame
    std::size_t session = 0;     // kSession
    std::uint64_t sub_id = 0;    // kStanding
    std::uint64_t downstream_id = 0;  // id to re-stamp into the answer
    std::uint32_t epoch = 0;          // epoch to re-stamp into the answer
  };

  // One upstream read in flight, with every downstream waiter coalesced onto
  // it. Retries alias fresh upstream wire ids onto the same record, exactly
  // like OperatorClient::PendingRequest.
  struct PendingUpstream {
    std::uint32_t collector = 0;
    Family family = Family::kKv;
    std::uint8_t op = 0;  // policy byte (KV) / op byte (primitive, sketch)
    std::vector<std::byte> payload;  // upstream encoding; id at [4, 12)
    std::uint64_t newest_wire_id = 0;
    std::uint32_t retries_left = 0;
    std::vector<std::uint64_t> wire_ids;
    std::vector<Origin> waiters;
    std::uint64_t first_enqueued_ns = 0;
    bool cacheable = false;
    CacheKey cache_key;
  };

  // One registered standing predicate plus its evaluation state.
  struct Standing {
    core::StandingKind kind = core::StandingKind::kKeyChange;
    Origin subscriber;  // kWire (client addr) or kSession; downstream unused
    std::vector<std::byte> key;
    std::uint64_t threshold = 0;
    std::uint16_t k = 0;
    std::uint32_t collector = 0;  // kTopKDelta
    std::uint64_t seq = 0;        // notifications pushed so far
    // kKeyChange state.
    bool has_last = false;
    core::QueryOutcome last_outcome = core::QueryOutcome::kEmpty;
    std::vector<std::byte> last_value;
    // kCounterThreshold state: fires on upward crossing, re-arms below.
    bool armed = true;
    // kTopKDelta state: current membership.
    std::set<std::vector<std::byte>> members;
  };

  // Downstream entry points (wire + session share them).
  std::uint64_t submit(Family family, std::uint32_t collector, std::uint8_t op,
                       std::uint16_t k, std::span<const std::byte> key,
                       std::vector<std::byte> payload, Origin origin,
                       bool cacheable);
  std::uint64_t session_submit(GatewaySession& session, Family family,
                               std::uint32_t collector, std::uint8_t op,
                               std::uint16_t k, std::span<const std::byte> key,
                               std::vector<std::byte> payload,
                               std::uint64_t downstream_id, bool cacheable);
  std::uint64_t session_subscribe(GatewaySession& session,
                                  const core::SubscribeRequest& request);
  [[nodiscard]] core::SubscribeAck do_subscribe(
      const core::SubscribeRequest& request, Origin subscriber);
  void handle_wire_request(const net::ParsedUdpFrame& frame,
                           std::uint32_t collector_hint, bool hinted);
  void handle_subscribe(const net::ParsedUdpFrame& frame);
  std::optional<std::uint64_t> register_standing(const core::SubscribeRequest& req,
                                                 Origin subscriber);

  // Upstream half.
  void send_upstream(PendingUpstream& rec);
  void handle_upstream_response(Family family,
                                std::span<const std::byte> payload,
                                std::uint64_t now_ns);
  void arm_deadline(std::uint64_t logical_id, std::uint64_t wire_id);
  void on_deadline(std::uint64_t logical_id, std::uint64_t wire_id);
  [[nodiscard]] std::vector<std::byte> synthesize_timeout(
      const PendingUpstream& rec) const;

  // Fan-out: copy `payload`, patch the waiter's id/epoch (and optional cache
  // age) into the shared response header, and deliver.
  void deliver(const Origin& origin, Family family,
               std::span<const std::byte> payload, std::uint64_t age_epochs);
  void push_notification(std::uint64_t sub_id, Standing& st,
                         core::StandingNotification note);

  // Standing evaluation (driven by on_epoch via internal upstream reads).
  void evaluate_standing(std::uint64_t sub_id, Family family,
                         std::span<const std::byte> payload);

  [[nodiscard]] std::uint32_t apply_retarget(std::uint32_t collector) const;
  [[nodiscard]] std::uint32_t route_key(std::span<const std::byte> key) const;
  void record_latency(Family family, double ns);
  [[nodiscard]] obs::Histogram& hist_of(Family family);

  QueryGatewayConfig config_;
  const core::ReportCrafter* crafter_;
  const core::CollectorSelector* selector_ = nullptr;
  core::IpResolver resolver_;
  // dst-IP → collector index (virtual IPs); the gateway IP maps to "hash it".
  std::unordered_map<std::uint32_t, std::uint32_t> vip_index_;
  std::unordered_map<std::uint32_t, std::uint32_t> retargets_;
  ResultCache cache_;
  std::deque<std::unique_ptr<GatewaySession>> sessions_;

  std::unordered_map<std::uint64_t, PendingUpstream> upstream_;
  std::unordered_map<std::uint64_t, std::uint64_t> upstream_alias_;
  std::unordered_map<CacheKey, std::uint64_t, CacheKeyHash> coalesce_;
  std::unordered_map<std::uint64_t, Standing> standing_;

  std::uint64_t epoch_ = 0;
  std::uint64_t next_upstream_id_ = 1;
  std::uint64_t next_sub_id_ = 1;
  std::size_t inflight_highwater_ = 0;

  std::uint64_t requests_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t upstream_sent_ = 0;
  std::uint64_t upstream_retries_ = 0;
  std::uint64_t upstream_timeouts_ = 0;
  std::uint64_t upstream_unexpected_ = 0;
  std::uint64_t notifications_sent_ = 0;
  std::uint64_t subscribes_accepted_ = 0;
  std::uint64_t subscribes_rejected_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t not_for_me_ = 0;
  std::uint64_t unroutable_ = 0;

  // Owned SLO histograms (also exposed through bind_metrics as gauges over
  // these instances would race registration; instead bind_metrics registers
  // pull adapters over the counters and separate registry histograms mirror
  // these via record_latency).
  obs::Histogram hist_kv_;
  obs::Histogram hist_primitive_;
  obs::Histogram hist_sketch_;
  obs::Histogram* reg_hist_kv_ = nullptr;        // registry mirrors (optional)
  obs::Histogram* reg_hist_primitive_ = nullptr;
  obs::Histogram* reg_hist_sketch_ = nullptr;
};

}  // namespace dart::query
