// ConfluoLike — an atomic-multilog telemetry store in the style of Confluo
// (NSDI'19), the storage half of Fig. 1b's DPDK-based baseline.
//
// Confluo ingests a telemetry record by (1) appending its raw bytes to an
// append-only data log and (2) inserting the record's offset into one index
// per indexed attribute, so that the data is immediately *queryable* — the
// property the paper contrasts with pure packet I/O ("the actual insertion
// of the telemetry data into queryable storage … requires an astounding
// 114x as many CPU cycles as the costly packet I/O"). This model indexes
// three attributes of each report (flow id, switch id, timestamp bucket)
// with hash indexes of offset posting lists; queries read the postings and
// materialize records from the log.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace dart::baseline {

struct ConfluoStats {
  std::uint64_t records = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t index_inserts = 0;
};

class ConfluoLike {
 public:
  struct Config {
    std::size_t log_capacity_bytes = 256 << 20;
    std::uint64_t time_bucket_ns = 1'000'000;  // 1 ms index granularity
  };

  explicit ConfluoLike(const Config& config);

  // Appends one report (its full data section) and indexes it. Returns the
  // record's log offset.
  std::uint64_t append(std::span<const std::byte> record,
                       std::uint64_t flow_id, std::uint32_t switch_id,
                       std::uint64_t timestamp_ns);

  // Point lookups over the attribute indexes (offset posting lists).
  [[nodiscard]] std::span<const std::uint64_t> offsets_for_flow(
      std::uint64_t flow_id) const;
  [[nodiscard]] std::span<const std::uint64_t> offsets_for_switch(
      std::uint32_t switch_id) const;
  [[nodiscard]] std::span<const std::uint64_t> offsets_for_time_bucket(
      std::uint64_t timestamp_ns) const;

  // Materializes the record at `offset` (view into the log).
  [[nodiscard]] std::span<const std::byte> read(std::uint64_t offset,
                                                std::size_t len) const;

  [[nodiscard]] const ConfluoStats& stats() const noexcept { return stats_; }

 private:
  using PostingIndex = std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>;

  [[nodiscard]] static std::span<const std::uint64_t> postings(
      const PostingIndex& index, std::uint64_t key);

  Config config_;
  std::vector<std::byte> log_;
  PostingIndex flow_index_;
  PostingIndex switch_index_;
  PostingIndex time_index_;
  ConfluoStats stats_;
};

}  // namespace dart::baseline
