#include "baseline/report_gen.hpp"

#include <cassert>
#include <cstring>

namespace dart::baseline {

namespace {

// Data-section layout (after the 28 header bytes):
//   [0..8)   flow id        (little-endian)
//   [8..12)  switch id
//   [12..20) timestamp ns
//   [20..)   opaque measurement bytes
constexpr std::size_t kFlowOff = 0;
constexpr std::size_t kSwitchOff = 8;
constexpr std::size_t kTimeOff = 12;
constexpr std::size_t kMeasureOff = 20;

template <typename T>
void put(std::span<std::byte> out, std::size_t off, T v) {
  std::memcpy(out.data() + off, &v, sizeof(T));
}

template <typename T>
[[nodiscard]] T get(std::span<const std::byte> in, std::size_t off) {
  T v;
  std::memcpy(&v, in.data() + off, sizeof(T));
  return v;
}

}  // namespace

ReportGenerator::ReportGenerator(const ReportSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  assert(spec.packet_bytes >= kReportHeaderBytes + kMeasureOff);
}

void ReportGenerator::next(std::span<std::byte> out) {
  assert(out.size() == spec_.packet_bytes);
  // Header bytes: plausible but constant (the baselines only look at the
  // data section; parsing cost is modeled by the I/O stacks themselves).
  std::memset(out.data(), 0x45, kReportHeaderBytes);

  auto data = out.subspan(kReportHeaderBytes);
  t_ns_ += 1 + rng_.below(1000);
  put(data, kFlowOff, rng_.below(spec_.n_flows));
  put(data, kSwitchOff, static_cast<std::uint32_t>(rng_.below(spec_.n_switches)));
  put(data, kTimeOff, t_ns_);
  // Opaque measurements: fill with generator noise.
  for (std::size_t i = kMeasureOff; i < data.size(); i += 8) {
    const std::uint64_t v = rng_();
    std::memcpy(data.data() + i, &v, std::min<std::size_t>(8, data.size() - i));
  }
}

ReportView ReportGenerator::parse(std::span<const std::byte> packet) {
  ReportView view;
  const auto data = packet.subspan(kReportHeaderBytes);
  view.flow_id = get<std::uint64_t>(data, kFlowOff);
  view.switch_id = get<std::uint32_t>(data, kSwitchOff);
  view.timestamp_ns = get<std::uint64_t>(data, kTimeOff);
  view.measurements = data.subspan(kMeasureOff);
  return view;
}

}  // namespace dart::baseline
