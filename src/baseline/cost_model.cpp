#include "baseline/cost_model.hpp"

#include <cmath>

namespace dart::baseline {

double CollectionCostModel::io_cores(double n_switches,
                                     std::size_t packet_bytes) const noexcept {
  const double pps = n_switches * reports_per_switch_per_sec * sampling;
  return std::ceil(pps / per_core.pps_for(packet_bytes));
}

double CollectionCostModel::total_cores(double n_switches,
                                        std::size_t packet_bytes,
                                        double storage_io_ratio) const noexcept {
  return io_cores(n_switches, packet_bytes) * (1.0 + storage_io_ratio);
}

}  // namespace dart::baseline
