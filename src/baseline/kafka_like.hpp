// KafkaLike — a partitioned commit-log broker in the style of Apache Kafka,
// the storage half of Fig. 1b's socket-based baseline.
//
// Per produced record, the broker performs the real algorithmic work of a
// log broker: record framing (length + CRC32 + timestamp), partition
// selection by key hash, append into the active segment, sparse offset-index
// maintenance, segment rolling, and an in-memory replica copy (acks>1).
// No compression, no page-cache flushes — omissions all *favor* the
// baseline, so the measured Kafka-vs-I/O ratio is a lower bound on the
// paper's 11.5×.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

namespace dart::baseline {

struct KafkaStats {
  std::uint64_t records = 0;
  std::uint64_t bytes_appended = 0;   // leader + replica
  std::uint64_t segments_rolled = 0;
  std::uint64_t index_entries = 0;
};

class KafkaLike {
 public:
  struct Config {
    std::uint32_t n_partitions = 8;
    std::size_t segment_bytes = 16 << 20;  // roll at 16 MB
    std::uint32_t index_interval = 64;     // sparse index every k records
    std::uint32_t replicas = 1;            // extra copies beyond the leader
  };

  explicit KafkaLike(const Config& config);

  // Appends one record; `key` drives partitioning. Returns the record's
  // offset within its partition.
  std::uint64_t produce(std::span<const std::byte> key,
                        std::span<const std::byte> payload,
                        std::uint64_t timestamp_ns);

  // Sequential scan of one partition's live segment, invoking `fn(payload)`
  // per record (the consumer path). Returns records visited.
  template <typename F>
  std::size_t consume(std::uint32_t partition, F&& fn) const;

  [[nodiscard]] const KafkaStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t n_partitions() const noexcept {
    return static_cast<std::uint32_t>(partitions_.size());
  }
  [[nodiscard]] std::uint64_t partition_offset(std::uint32_t p) const noexcept {
    return partitions_[p].next_offset;
  }

 private:
  struct Partition {
    std::vector<std::byte> segment;          // active segment
    std::vector<std::byte> replica_segment;  // follower copy
    // Sparse index: (offset, byte position) pairs.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> index;
    std::uint64_t next_offset = 0;
    std::uint64_t records_since_index = 0;
  };

  Config config_;
  std::vector<Partition> partitions_;
  KafkaStats stats_;
};

template <typename F>
std::size_t KafkaLike::consume(std::uint32_t partition, F&& fn) const {
  const auto& seg = partitions_[partition].segment;
  std::size_t pos = 0;
  std::size_t count = 0;
  while (pos + 16 <= seg.size()) {
    std::uint32_t len;
    std::memcpy(&len, seg.data() + pos, 4);
    if (pos + 16 + len > seg.size()) break;
    fn(std::span<const std::byte>(seg.data() + pos + 16, len));
    pos += 16 + len;
    ++count;
  }
  return count;
}

}  // namespace dart::baseline
