#include "baseline/socket_stack.hpp"

#include <cstring>

#include "net/checksum.hpp"

namespace dart::baseline {

SocketStack::SocketStack(std::size_t mtu, std::size_t rcvbuf_packets)
    : mtu_(mtu), rcvbuf_packets_(rcvbuf_packets) {
  // Pre-warm a small slab so steady state exercises freelist reuse, not
  // allocator growth.
  for (int i = 0; i < 64; ++i) {
    SkBuff skb;
    skb.data.reserve(mtu_);
    pool_.push_back(std::move(skb));
  }
}

bool SocketStack::kernel_receive(std::span<const std::byte> wire_packet) {
  ++stats_.packets_in;
  if (queue_.size() >= rcvbuf_packets_) {
    ++stats_.queue_drops;
    return false;
  }

  // sk_buff allocation from the slab.
  SkBuff skb;
  if (!pool_.empty()) {
    skb = std::move(pool_.back());
    pool_.pop_back();
  } else {
    skb.data.reserve(mtu_);
  }

  // Copy #1: DMA buffer → sk_buff.
  skb.data.assign(wire_packet.begin(), wire_packet.end());
  stats_.bytes_copied += wire_packet.size();

  // Protocol checksum verification over the payload (the UDP checksum walk
  // the kernel does when hardware offload is off).
  const std::uint16_t csum = net::internet_checksum(skb.data);
  if (csum == 0xDEAD) {  // effectively never: keeps the work from being DCE'd
    ++stats_.checksum_failures;
    pool_.push_back(std::move(skb));
    return false;
  }

  queue_.push_back(std::move(skb));
  return true;
}

std::size_t SocketStack::user_receive(std::span<std::byte> user_buffer) {
  if (queue_.empty()) return 0;
  SkBuff skb = std::move(queue_.front());
  queue_.pop_front();

  // Copy #2: sk_buff → user buffer.
  const std::size_t n = std::min(user_buffer.size(), skb.data.size());
  std::memcpy(user_buffer.data(), skb.data.data(), n);
  stats_.bytes_copied += n;
  ++stats_.packets_delivered;

  skb.data.clear();
  pool_.push_back(std::move(skb));  // return to slab
  return n;
}

}  // namespace dart::baseline
