#include "baseline/kafka_like.hpp"

#include <cstring>

#include "common/hash.hpp"

namespace dart::baseline {

KafkaLike::KafkaLike(const Config& config)
    : config_(config), partitions_(config.n_partitions) {
  for (auto& p : partitions_) {
    p.segment.reserve(config_.segment_bytes);
    if (config_.replicas > 0) p.replica_segment.reserve(config_.segment_bytes);
  }
}

std::uint64_t KafkaLike::produce(std::span<const std::byte> key,
                                 std::span<const std::byte> payload,
                                 std::uint64_t timestamp_ns) {
  // Partition by key hash (Kafka's default partitioner).
  const auto part = static_cast<std::uint32_t>(
      xxhash64(key, 0x6B61'666Bull) % partitions_.size());
  Partition& p = partitions_[part];

  // Segment roll.
  if (p.segment.size() + 16 + payload.size() > config_.segment_bytes) {
    p.segment.clear();           // "closed" segment handed to retention
    p.replica_segment.clear();
    p.index.clear();
    ++stats_.segments_rolled;
  }

  // Record framing: [len:4][crc:4][timestamp:8][payload]. CRC over the
  // payload, as Kafka's record batches carry.
  const std::uint64_t record_pos = p.segment.size();
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);

  auto append_frame = [&](std::vector<std::byte>& seg) {
    const std::size_t base = seg.size();
    seg.resize(base + 16 + payload.size());
    std::memcpy(seg.data() + base, &len, 4);
    std::memcpy(seg.data() + base + 4, &crc, 4);
    std::memcpy(seg.data() + base + 8, &timestamp_ns, 8);
    std::memcpy(seg.data() + base + 16, payload.data(), payload.size());
    stats_.bytes_appended += 16 + payload.size();
  };

  append_frame(p.segment);
  for (std::uint32_t r = 0; r < config_.replicas; ++r) {
    append_frame(p.replica_segment);
  }

  // Sparse offset index.
  const std::uint64_t offset = p.next_offset++;
  if (++p.records_since_index >= config_.index_interval) {
    p.index.emplace_back(offset, record_pos);
    p.records_since_index = 0;
    ++stats_.index_entries;
  }

  ++stats_.records;
  return offset;
}

}  // namespace dart::baseline
