// Analytic collection-cost model behind Fig. 1a.
//
// The paper computes the figure from published constants, not measurement:
//   "I/O performance and sampling in (a) are based on official DPDK PMD
//    performance numbers [47] and generated events per second in 6.5 Tbps
//    switches [56]."
// Inputs:
//   - per-core DPDK PMD receive rate at a given packet size (DPDK 20.11
//     Intel NIC performance report, [47]): tens of Mpps for small packets;
//   - per-switch telemetry event rate: event-triggered reporting on a
//     6.5 Tbps switch generates up to a few million reports/s ([56]);
//   - an event sampling fraction (Fig. 1a plots sampled collection too).
// Output: CPU cores a collection cluster dedicates to *pure packet I/O*,
//   cores = ceil(switches × rate × sampling / per-core pps).
//
// The defaults encode the constants used in our reproduction; they are
// configurable so EXPERIMENTS.md can show sensitivity.
#pragma once

#include <cstdint>

namespace dart::baseline {

struct DpdkPerCoreRate {
  // Per-core packet rates from the DPDK 20.11 report's small-packet rows.
  // 64B line-rate-limited forwarding on a 100GbE port is ~42 Mpps/core; at
  // 128B wire efficiency allows fewer pps per core in the official tables.
  double pps_64b = 42.0e6;
  double pps_128b = 33.8e6;

  [[nodiscard]] double pps_for(std::size_t packet_bytes) const noexcept {
    return packet_bytes <= 64 ? pps_64b : pps_128b;
  }
};

struct CollectionCostModel {
  DpdkPerCoreRate per_core{};
  double reports_per_switch_per_sec = 2.0e6;  // event-triggered, 6.5 Tbps [56]
  double sampling = 1.0;                      // fraction of events reported

  // CPU cores needed for pure packet I/O of `n_switches` switches' reports
  // at the given packet size.
  [[nodiscard]] double io_cores(double n_switches,
                                std::size_t packet_bytes) const noexcept;

  // Cores needed when storage insertion costs `storage_io_ratio` × the I/O
  // work per report (Fig. 1b measured 114× for Confluo over DPDK I/O).
  [[nodiscard]] double total_cores(double n_switches, std::size_t packet_bytes,
                                   double storage_io_ratio) const noexcept;
};

// RDMA NIC reference rate for the comparison in §2: ConnectX-6 class NICs
// process >200M messages/s [48].
inline constexpr double kRnicMessagesPerSec = 200.0e6;

}  // namespace dart::baseline
