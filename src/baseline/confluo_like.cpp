#include "baseline/confluo_like.hpp"

#include <cstring>

namespace dart::baseline {

ConfluoLike::ConfluoLike(const Config& config) : config_(config) {
  log_.reserve(config.log_capacity_bytes);
}

std::uint64_t ConfluoLike::append(std::span<const std::byte> record,
                                  std::uint64_t flow_id,
                                  std::uint32_t switch_id,
                                  std::uint64_t timestamp_ns) {
  // Wrap the log when full (telemetry retention window) — steady-state
  // ingest cost is what Fig. 1b measures, not growth.
  if (log_.size() + record.size() > config_.log_capacity_bytes) {
    log_.clear();
    flow_index_.clear();
    switch_index_.clear();
    time_index_.clear();
  }

  const std::uint64_t offset = log_.size();
  log_.insert(log_.end(), record.begin(), record.end());
  stats_.log_bytes += record.size();

  flow_index_[flow_id].push_back(offset);
  switch_index_[switch_id].push_back(offset);
  time_index_[timestamp_ns / config_.time_bucket_ns].push_back(offset);
  stats_.index_inserts += 3;

  ++stats_.records;
  return offset;
}

std::span<const std::uint64_t> ConfluoLike::postings(const PostingIndex& index,
                                                     std::uint64_t key) {
  const auto it = index.find(key);
  if (it == index.end()) return {};
  return it->second;
}

std::span<const std::uint64_t> ConfluoLike::offsets_for_flow(
    std::uint64_t flow_id) const {
  return postings(flow_index_, flow_id);
}

std::span<const std::uint64_t> ConfluoLike::offsets_for_switch(
    std::uint32_t switch_id) const {
  return postings(switch_index_, switch_id);
}

std::span<const std::uint64_t> ConfluoLike::offsets_for_time_bucket(
    std::uint64_t timestamp_ns) const {
  return postings(time_index_, timestamp_ns / config_.time_bucket_ns);
}

std::span<const std::byte> ConfluoLike::read(std::uint64_t offset,
                                             std::size_t len) const {
  if (offset + len > log_.size()) return {};
  return std::span<const std::byte>(log_.data() + offset, len);
}

}  // namespace dart::baseline
