// DpdkStack — a poll-mode-driver (PMD) style receive path.
//
// Fig. 1b's "DPDK-based packet I/O" baseline: a preallocated mbuf pool, a
// descriptor ring filled by the "NIC" (here: the report generator), and a
// burst-polling consumer that receives packets zero-copy as pointers. The
// per-packet work is what a PMD actually does — descriptor read, mbuf
// pointer handoff, header touch — which is why it measures an order of
// magnitude cheaper than the socket path, matching the paper's 2.7% figure
// in spirit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dart::baseline {

struct Mbuf {
  std::byte* data = nullptr;
  std::uint32_t len = 0;
};

struct DpdkStats {
  std::uint64_t enqueued = 0;
  std::uint64_t polled_bursts = 0;
  std::uint64_t received = 0;
  std::uint64_t ring_full_drops = 0;
};

class DpdkStack {
 public:
  // `ring_slots` must be a power of two. `mbuf_size` bounds packet length.
  DpdkStack(std::size_t ring_slots = 1024, std::size_t mbuf_size = 2048);

  // NIC side: places a packet into the next free mbuf + ring descriptor.
  // (In hardware this is DMA; the copy happens *off* the measured consumer
  // path, exactly as it does for a real PMD.)
  bool nic_enqueue(std::span<const std::byte> wire_packet);

  // PMD side: burst-receives up to `out.size()` packets as mbuf views.
  // Returns the number received. Zero-copy: mbufs remain valid until the
  // slot is reused by nic_enqueue.
  std::size_t rx_burst(std::span<Mbuf> out);

  [[nodiscard]] const DpdkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t pending() const noexcept { return head_ - tail_; }

 private:
  std::size_t ring_slots_;
  std::size_t mbuf_size_;
  std::vector<std::byte> mbuf_pool_;     // ring_slots × mbuf_size
  std::vector<std::uint32_t> lengths_;   // descriptor ring (length per slot)
  std::uint64_t head_ = 0;  // next slot the NIC writes
  std::uint64_t tail_ = 0;  // next slot the PMD reads
  DpdkStats stats_;
};

}  // namespace dart::baseline
