// Telemetry report generator for the Fig. 1b baseline measurements.
//
// The paper: "We uniformly generate two different report types that are 64
// and 128 bytes. A 64 or 128 bytes report would consist of 36 bytes and 100
// bytes of report data (without 28 bytes of header)." We reproduce exactly
// that framing: 28 header bytes (IPv4 20 + UDP 8) + report data, with the
// data carrying a telemetry key (flow id, switch id) and opaque measurements
// so the storage baselines have realistic fields to index.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.hpp"

namespace dart::baseline {

inline constexpr std::size_t kReportHeaderBytes = 28;  // IPv4 + UDP

struct ReportSpec {
  std::size_t packet_bytes = 64;  // 64 → 36B data, 128 → 100B data
  std::uint64_t n_flows = 1 << 20;
  std::uint64_t n_switches = 10000;
  std::uint64_t seed = 42;
};

// Parsed view of a report's data section.
struct ReportView {
  std::uint64_t flow_id = 0;
  std::uint32_t switch_id = 0;
  std::uint64_t timestamp_ns = 0;
  std::span<const std::byte> measurements;  // remainder of the data section
};

class ReportGenerator {
 public:
  explicit ReportGenerator(const ReportSpec& spec);

  [[nodiscard]] std::size_t packet_bytes() const noexcept {
    return spec_.packet_bytes;
  }
  [[nodiscard]] std::size_t data_bytes() const noexcept {
    return spec_.packet_bytes - kReportHeaderBytes;
  }

  // Writes the next report packet into `out` (exactly packet_bytes long).
  void next(std::span<std::byte> out);

  // Parses the data section of a generated packet.
  [[nodiscard]] static ReportView parse(std::span<const std::byte> packet);

 private:
  ReportSpec spec_;
  Xoshiro256 rng_;
  std::uint64_t t_ns_ = 0;
};

}  // namespace dart::baseline
