// SocketStack — a faithful-work emulation of the kernel socket receive path.
//
// Fig. 1b's "socket-based packet I/O" baseline. Per received packet, a
// kernel socket path performs (at minimum): NIC-buffer → sk_buff copy,
// protocol checksum verification, socket receive-queue insertion, and a
// recvmsg() copy into the user buffer, with per-call bookkeeping. This class
// performs that *actual work* on real memory — no sleeps, no fudge factors —
// so cycle measurements reflect a genuine (if favorable to the kernel:
// no syscall trap, no softirq) lower bound of the socket cost per report.
// The paper's absolute numbers come from a real kernel; we reproduce the
// ordering and the I/O-vs-storage split, and EXPERIMENTS.md records both.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace dart::baseline {

struct SocketStats {
  std::uint64_t packets_in = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t checksum_failures = 0;
  std::uint64_t queue_drops = 0;
};

class SocketStack {
 public:
  // `rcvbuf_packets` models SO_RCVBUF: the receive queue drops when full.
  explicit SocketStack(std::size_t mtu = 2048, std::size_t rcvbuf_packets = 4096);

  // "Interrupt path": the NIC hands a packet to the kernel. Copies into an
  // sk_buff from the buffer pool, verifies a checksum over the payload, and
  // queues it. Returns false on queue overflow (packet dropped).
  bool kernel_receive(std::span<const std::byte> wire_packet);

  // "recvmsg()": copies the oldest queued packet into `user_buffer`.
  // Returns bytes delivered, 0 if the queue is empty.
  std::size_t user_receive(std::span<std::byte> user_buffer);

  [[nodiscard]] const SocketStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }

 private:
  struct SkBuff {
    std::vector<std::byte> data;
  };

  std::size_t mtu_;
  std::size_t rcvbuf_packets_;
  std::deque<SkBuff> queue_;
  std::vector<SkBuff> pool_;  // sk_buff freelist (kernel slab emulation)
  SocketStats stats_;
};

}  // namespace dart::baseline
