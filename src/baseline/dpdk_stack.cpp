#include "baseline/dpdk_stack.hpp"

#include <cassert>
#include <cstring>

namespace dart::baseline {

DpdkStack::DpdkStack(std::size_t ring_slots, std::size_t mbuf_size)
    : ring_slots_(ring_slots),
      mbuf_size_(mbuf_size),
      mbuf_pool_(ring_slots * mbuf_size),
      lengths_(ring_slots, 0) {
  assert((ring_slots & (ring_slots - 1)) == 0 && "ring size must be 2^k");
}

bool DpdkStack::nic_enqueue(std::span<const std::byte> wire_packet) {
  assert(wire_packet.size() <= mbuf_size_);
  if (head_ - tail_ >= ring_slots_) {
    ++stats_.ring_full_drops;
    return false;
  }
  const std::size_t slot = head_ & (ring_slots_ - 1);
  std::memcpy(mbuf_pool_.data() + slot * mbuf_size_, wire_packet.data(),
              wire_packet.size());
  lengths_[slot] = static_cast<std::uint32_t>(wire_packet.size());
  ++head_;
  ++stats_.enqueued;
  return true;
}

std::size_t DpdkStack::rx_burst(std::span<Mbuf> out) {
  ++stats_.polled_bursts;
  std::size_t n = 0;
  while (n < out.size() && tail_ < head_) {
    const std::size_t slot = tail_ & (ring_slots_ - 1);
    out[n].data = mbuf_pool_.data() + slot * mbuf_size_;
    out[n].len = lengths_[slot];
    ++tail_;
    ++n;
  }
  stats_.received += n;
  return n;
}

}  // namespace dart::baseline
