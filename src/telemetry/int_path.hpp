// In-band Network Telemetry (INT) path tracing — the paper's running example.
//
// In-band mode (Table 1, row 1): each switch on the path pushes its metadata
// into the packet; the last hop (the INT sink) extracts the accumulated
// stack and reports it to DART keyed by the flow 5-tuple. Fig. 4 uses
// 32 bits per hop over 5 fat-tree hops = a 160-bit value.
//
// Postcard mode (Table 1, row 2): every switch reports its own hop metadata
// immediately, keyed by (switch id, 5-tuple).
//
// IntStack models the packet-carried metadata stack (bounded, like the INT
// spec's hop count limit); encode/decode fix the byte layout of the DART
// value so switches, collectors and queriers agree.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dart::telemetry {

// Per-hop INT metadata. The paper's Fig. 4 carries just the switch id
// (32 bits/hop); richer modes also carry queue depth + latency.
struct IntHopMetadata {
  std::uint32_t switch_id = 0;
  std::uint32_t queue_depth = 0;
  std::uint32_t hop_latency_ns = 0;
};

// What each hop contributes to the packet (and to the DART value).
enum class IntInstruction : std::uint8_t {
  kSwitchId,                   // 4 B/hop — Fig. 4's configuration
  kSwitchIdQueueLatency,       // 12 B/hop
};

[[nodiscard]] constexpr std::uint32_t int_bytes_per_hop(
    IntInstruction ins) noexcept {
  return ins == IntInstruction::kSwitchId ? 4 : 12;
}

// The packet-carried metadata stack.
class IntStack {
 public:
  explicit IntStack(IntInstruction instruction = IntInstruction::kSwitchId,
                    std::uint32_t max_hops = 16)
      : instruction_(instruction), max_hops_(max_hops) {}

  // Returns false (and drops the metadata) once max_hops is reached — the
  // INT spec's hop-limit behaviour.
  bool push_hop(const IntHopMetadata& hop);

  [[nodiscard]] std::span<const IntHopMetadata> hops() const noexcept {
    return hops_;
  }
  [[nodiscard]] std::uint32_t hop_count() const noexcept {
    return static_cast<std::uint32_t>(hops_.size());
  }
  [[nodiscard]] IntInstruction instruction() const noexcept {
    return instruction_;
  }

  // Fixed-width DART value: hop data packed big-endian in path order, zero
  // padded to `value_bytes`. Fails (nullopt) if the stack doesn't fit.
  [[nodiscard]] std::optional<std::vector<std::byte>> encode_value(
      std::uint32_t value_bytes) const;

  // Inverse of encode_value for kSwitchId: extracts leading non-zero switch
  // ids. `expected_hops` bounds the scan (0 = until a zero id).
  [[nodiscard]] static std::vector<std::uint32_t> decode_switch_ids(
      std::span<const std::byte> value, std::uint32_t expected_hops = 0);

 private:
  IntInstruction instruction_;
  std::uint32_t max_hops_;
  std::vector<IntHopMetadata> hops_;
};

}  // namespace dart::telemetry
