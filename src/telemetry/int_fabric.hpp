// IntFabric — the end-to-end system of the paper's running example: INT path
// tracing on a fat tree, collected by DART with zero collector-CPU ingest.
//
// Wiring: one DartSwitchPipeline per fat-tree switch (each loaded with the
// full collector directory), a CollectorCluster of RNIC-fronted stores, and
// an optional Bernoulli report-loss process between switches and collectors.
//
//   trace_flow():   in-band INT — per-hop metadata accumulates in the packet;
//                   the egress edge switch (INT sink) extracts the stack and
//                   emits DART report frames keyed by the flow 5-tuple.
//   postcard_flow(): every switch on the path reports its own hop record
//                   keyed by (switch id, 5-tuple).
//
// Reports are real RoCEv2 frames produced by the switch pipeline model and
// ingested by the simulated RNIC — the same bytes a hardware deployment
// would put on the wire. Queries then recover the path from store memory.
//
// INT switch ids on the wire are topology ids + 1, so id 0 never appears in
// a value and zero-padding in slots stays unambiguous.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "core/cluster.hpp"
#include "switchsim/dart_switch.hpp"
#include "switchsim/topology.hpp"
#include "telemetry/backends.hpp"
#include "telemetry/flow.hpp"
#include "telemetry/workload.hpp"

namespace dart::telemetry {

struct IntFabricConfig {
  std::uint32_t fat_tree_k = 4;
  core::DartConfig dart;             // value_bytes must fit the hop stack
  std::uint32_t n_collectors = 1;
  core::WriteMode switch_write_mode = core::WriteMode::kAllSlots;
  double report_loss_rate = 0.0;     // Bernoulli loss switch→collector
  std::uint64_t seed = 1;
  IntInstruction instruction = IntInstruction::kSwitchId;
};

struct IntFabricStats {
  std::uint64_t flows_traced = 0;
  std::uint64_t reports_emitted = 0;
  std::uint64_t reports_lost = 0;
  std::uint64_t reports_delivered = 0;
};

class IntFabric {
 public:
  explicit IntFabric(const IntFabricConfig& config);

  [[nodiscard]] const switchsim::FatTree& topology() const noexcept {
    return topo_;
  }
  [[nodiscard]] core::CollectorCluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] const IntFabricStats& stats() const noexcept { return stats_; }

  // In-band INT: traces one packet of `flow`, reports at the sink.
  // Returns the path (topology switch ids) the packet took.
  std::vector<std::uint32_t> trace_flow(const FlowEndpoints& flow);

  // Postcard INT: every switch on the path reports its own record.
  std::vector<std::uint32_t> postcard_flow(const FlowEndpoints& flow);

  // Query the traced path of a flow (in-band mode). nullopt = empty return.
  [[nodiscard]] std::optional<std::vector<std::uint32_t>> query_path(
      const FiveTuple& flow,
      core::ReturnPolicy policy = core::ReturnPolicy::kPlurality) const;

  // Query one switch's postcard for a flow (postcard mode).
  [[nodiscard]] std::optional<IntHopMetadata> query_postcard(
      std::uint32_t switch_id, const FiveTuple& flow,
      core::ReturnPolicy policy = core::ReturnPolicy::kPlurality) const;

  // INT-id mapping (wire id = topo id + 1).
  [[nodiscard]] static constexpr std::uint32_t int_id(std::uint32_t topo_id) noexcept {
    return topo_id + 1;
  }
  [[nodiscard]] static constexpr std::uint32_t topo_id(std::uint32_t int_id) noexcept {
    return int_id - 1;
  }

 private:
  // Synthetic per-hop measurements (queue depth, latency) for richer INT
  // instructions; deterministic per (switch, flow).
  [[nodiscard]] IntHopMetadata hop_metadata(std::uint32_t switch_id,
                                            const FiveTuple& flow) const;

  // Sends crafted frames to the owning collector's RNIC, applying loss.
  void deliver(const std::vector<std::vector<std::byte>>& frames);

  IntFabricConfig config_;
  switchsim::FatTree topo_;
  core::CollectorCluster cluster_;
  std::vector<std::unique_ptr<switchsim::DartSwitchPipeline>> switches_;
  Xoshiro256 loss_rng_;
  IntFabricStats stats_;
};

}  // namespace dart::telemetry
