#include "telemetry/workload.hpp"

namespace dart::telemetry {

FlowEndpoints FlowGenerator::make_flow(std::uint64_t nonce) const {
  // Derive all choices from a SplitMix stream keyed by the nonce so
  // flow_at(i) is stateless and next_flow() shares the same distribution.
  SplitMix64 sm(nonce);
  const std::uint32_t n_hosts = topo_->n_hosts();

  FlowEndpoints fe;
  fe.src_host = static_cast<std::uint32_t>(sm.next() % n_hosts);
  fe.dst_host = static_cast<std::uint32_t>(sm.next() % n_hosts);
  if (fe.dst_host == fe.src_host) {
    fe.dst_host = (fe.dst_host + 1) % n_hosts;
  }
  fe.tuple.src_ip = topo_->host_ip(fe.src_host);
  fe.tuple.dst_ip = topo_->host_ip(fe.dst_host);
  // Ephemeral source port + service port; fold the nonce in so distinct
  // nonces give distinct tuples even between the same host pair.
  fe.tuple.src_port =
      static_cast<std::uint16_t>(49152 + (sm.next() ^ nonce) % 16384);
  fe.tuple.dst_port = static_cast<std::uint16_t>(1024 + sm.next() % 8192);
  fe.tuple.protocol = (sm.next() & 0x7) == 0 ? 17 : 6;  // mostly TCP
  return fe;
}

FlowEndpoints FlowGenerator::next_flow() {
  const std::uint64_t nonce = rng_() ^ (counter_++ * 0x9E37'79B9'7F4A'7C15ull);
  return make_flow(nonce);
}

FlowEndpoints FlowGenerator::flow_at(std::uint64_t index) const {
  // Stateless: mix the generator's identity (first rng draw is seed-derived;
  // instead use the topology size and index) — key by index only so callers
  // can regenerate the i-th flow.
  return make_flow(0xF10D'0000'0000'0000ull ^ index);
}

FlowSampler::FlowSampler(const switchsim::FatTree& topo, std::size_t population,
                         double zipf_skew, std::uint64_t seed)
    : zipf_(population, zipf_skew), rng_(seed ^ 0x5A5A) {
  FlowGenerator gen(topo, seed);
  flows_.reserve(population);
  for (std::size_t i = 0; i < population; ++i) {
    flows_.push_back(gen.next_flow());
  }
}

const FlowEndpoints& FlowSampler::sample() {
  return flows_[zipf_.sample(rng_)];
}

}  // namespace dart::telemetry
