#include "telemetry/int_fabric.hpp"

#include <algorithm>
#include <cassert>

#include "common/hash.hpp"

namespace dart::telemetry {

IntFabric::IntFabric(const IntFabricConfig& config)
    : config_(config),
      topo_(config.fat_tree_k),
      cluster_(config.dart, config.n_collectors),
      loss_rng_(config.seed ^ 0x1055) {
  switches_.reserve(topo_.n_switches());
  for (std::uint32_t sw = 0; sw < topo_.n_switches(); ++sw) {
    switchsim::DartSwitchPipeline::Config sc;
    sc.dart = config.dart;
    sc.mac = {0x02, 0x5A, 0x00, 0x00, static_cast<std::uint8_t>(sw >> 8),
              static_cast<std::uint8_t>(sw & 0xFF)};
    sc.ip = net::Ipv4Addr::from_octets(10, 255, static_cast<std::uint8_t>(sw >> 8),
                                       static_cast<std::uint8_t>(sw & 0xFF));
    sc.max_collectors = std::max<std::uint32_t>(config.n_collectors, 1);
    sc.rng_seed = config.seed * 1000003ull + sw;
    sc.write_mode = config.switch_write_mode;
    switches_.push_back(std::make_unique<switchsim::DartSwitchPipeline>(sc));
    for (const auto& info : cluster_.directory()) {
      switches_.back()->load_collector(info);
    }
  }
}

IntHopMetadata IntFabric::hop_metadata(std::uint32_t switch_id,
                                       const FiveTuple& flow) const {
  IntHopMetadata hop;
  hop.switch_id = int_id(switch_id);
  // Deterministic synthetic congestion state per (switch, flow).
  const auto key = flow.key_bytes();
  const std::uint64_t h = xxhash64(key, 0xBEEF'0000ull + switch_id);
  hop.queue_depth = static_cast<std::uint32_t>(h % 128);
  hop.hop_latency_ns = 500 + static_cast<std::uint32_t>((h >> 32) % 20000);
  return hop;
}

void IntFabric::deliver(const std::vector<std::vector<std::byte>>& frames) {
  for (const auto& frame : frames) {
    ++stats_.reports_emitted;
    if (config_.report_loss_rate > 0.0 &&
        loss_rng_.chance(config_.report_loss_rate)) {
      ++stats_.reports_lost;
      continue;
    }
    // Route the report to the collector owning the frame's destination IP.
    const auto parsed = net::parse_udp_frame(frame);
    assert(parsed.has_value());
    bool routed = false;
    for (const auto& info : cluster_.directory()) {
      if (info.ip == parsed->ip.dst) {
        cluster_.collector(info.collector_id).rnic().process_frame(frame);
        routed = true;
        break;
      }
    }
    assert(routed && "report addressed to unknown collector");
    (void)routed;
    ++stats_.reports_delivered;
  }
}

std::vector<std::uint32_t> IntFabric::trace_flow(const FlowEndpoints& flow) {
  ++stats_.flows_traced;
  const auto key = flow.tuple.key_bytes();
  const std::uint64_t flow_hash = xxhash64(key, 0xECB9);
  const auto path = topo_.path(flow.src_host, flow.dst_host, flow_hash);

  // In-band: the packet accumulates one stack entry per hop...
  IntStack stack(config_.instruction, /*max_hops=*/16);
  for (const std::uint32_t sw : path) {
    const bool pushed = stack.push_hop(hop_metadata(sw, flow.tuple));
    assert(pushed);
    (void)pushed;
  }

  // ...and the INT sink (last hop) extracts it and reports to DART.
  const auto record =
      make_inband_record(flow.tuple, stack, config_.dart.value_bytes);
  auto& sink = *switches_[path.back()];
  deliver(sink.on_telemetry(record.key, record.value));
  return path;
}

std::vector<std::uint32_t> IntFabric::postcard_flow(const FlowEndpoints& flow) {
  ++stats_.flows_traced;
  const auto key = flow.tuple.key_bytes();
  const std::uint64_t flow_hash = xxhash64(key, 0xECB9);
  const auto path = topo_.path(flow.src_host, flow.dst_host, flow_hash);

  for (const std::uint32_t sw : path) {
    const auto record =
        make_postcard_record(int_id(sw), flow.tuple, hop_metadata(sw, flow.tuple),
                             config_.dart.value_bytes);
    deliver(switches_[sw]->on_telemetry(record.key, record.value));
  }
  return path;
}

std::optional<std::vector<std::uint32_t>> IntFabric::query_path(
    const FiveTuple& flow, core::ReturnPolicy policy) const {
  const auto key = flow.key_bytes();
  const auto result = cluster_.query(key, policy);
  if (result.outcome != core::QueryOutcome::kFound) return std::nullopt;
  auto wire_ids = IntStack::decode_switch_ids(result.value);
  for (auto& id : wire_ids) id = topo_id(id);
  return wire_ids;
}

std::optional<IntHopMetadata> IntFabric::query_postcard(
    std::uint32_t switch_id, const FiveTuple& flow,
    core::ReturnPolicy policy) const {
  const auto key = postcard_key(int_id(switch_id), flow);
  const auto result = cluster_.query(key, policy);
  if (result.outcome != core::QueryOutcome::kFound) return std::nullopt;
  if (result.value.size() < 12) return std::nullopt;
  IntHopMetadata hop;
  auto be32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v = (v << 8) |
          static_cast<std::uint8_t>(result.value[off + static_cast<std::size_t>(i)]);
    }
    return v;
  };
  hop.switch_id = be32(0);
  hop.queue_depth = be32(4);
  hop.hop_latency_ns = be32(8);
  return hop;
}

}  // namespace dart::telemetry
