// Workload generation for simulations and benches.
//
// FlowGenerator produces distinct flow 5-tuples between fat-tree hosts (the
// "100 million flows" of Fig. 4 are distinct keys appearing over time).
// FlowSampler adds a Zipf popularity skew on top for traffic-driven
// experiments (datacenter flow popularity is heavy-tailed [44]).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "switchsim/topology.hpp"
#include "telemetry/flow.hpp"

namespace dart::telemetry {

struct FlowEndpoints {
  std::uint32_t src_host = 0;
  std::uint32_t dst_host = 0;
  FiveTuple tuple;
};

class FlowGenerator {
 public:
  FlowGenerator(const switchsim::FatTree& topo, std::uint64_t seed)
      : topo_(&topo), rng_(seed) {}

  // A fresh flow between two distinct, uniformly chosen hosts. Ephemeral
  // ports make repeats astronomically unlikely; `sequence` folds a counter
  // into the ports so even colliding picks stay distinct.
  [[nodiscard]] FlowEndpoints next_flow();

  // Deterministic i-th flow (pure function of seed+i, no state) — lets
  // multi-million-key sweeps regenerate key i without storing it.
  [[nodiscard]] FlowEndpoints flow_at(std::uint64_t index) const;

 private:
  [[nodiscard]] FlowEndpoints make_flow(std::uint64_t nonce) const;

  const switchsim::FatTree* topo_;
  Xoshiro256 rng_;
  std::uint64_t counter_ = 0;
};

// Zipf-popularity sampler over a fixed population of flows.
class FlowSampler {
 public:
  FlowSampler(const switchsim::FatTree& topo, std::size_t population,
              double zipf_skew, std::uint64_t seed);

  [[nodiscard]] const FlowEndpoints& sample();
  [[nodiscard]] std::size_t population() const noexcept { return flows_.size(); }
  [[nodiscard]] const FlowEndpoints& flow(std::size_t i) const noexcept {
    return flows_[i];
  }

 private:
  std::vector<FlowEndpoints> flows_;
  ZipfSampler zipf_;
  Xoshiro256 rng_;
};

}  // namespace dart::telemetry
