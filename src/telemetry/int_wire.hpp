// Wire-level In-band Network Telemetry headers (INT-MD over UDP).
//
// The abstract IntFabric (int_fabric.hpp) models INT as metadata attached to
// flows; this module puts INT *on the wire*, closely following the P4.org
// INT specification's INT-MD mode [15]:
//
//   UDP payload = [ INT shim ][ INT-MD header ][ metadata stack ][ inner payload ]
//
//   shim   (4 B): type, npt, length (4-byte words incl. shim), reserved
//   MD hdr (8 B): ver, flags, hop metadata length (words/hop),
//                 remaining-hop-count, instruction bitmap, domain id
//   stack       : newest hop first; each hop pushes hop_words × 4 bytes
//
// The INT source (first switch) inserts shim+MD header, transits push their
// metadata and decrement remaining-hop-count, the INT sink strips the INT
// headers, restores the inner payload, and hands the accumulated stack to
// the DART reporting pipeline (§3's in-band row of Table 1).
//
// Telemetry-enabled packets are identified by a dedicated UDP destination
// port carried in the shim's "next protocol" field so the sink can restore
// the original port (the spec's NPT=1 "original dest port" mode).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "telemetry/int_path.hpp"

namespace dart::telemetry {

// UDP destination port marking INT-carrying packets in this deployment.
inline constexpr std::uint16_t kIntUdpPort = 5123;

inline constexpr std::size_t kIntShimLen = 4;
inline constexpr std::size_t kIntMdLen = 8;

// Instruction bitmap bits (subset of the spec's bit assignments).
inline constexpr std::uint16_t kIntInsSwitchId = 0x8000;   // bit 0
inline constexpr std::uint16_t kIntInsQueueDepth = 0x1000; // bit 3
inline constexpr std::uint16_t kIntInsHopLatency = 0x2000; // bit 2

struct IntMdHeader {
  std::uint8_t version = 2;
  bool exceeded = false;          // M bit: hop limit exceeded en route
  std::uint8_t hop_words = 1;     // metadata words pushed per hop
  std::uint8_t remaining_hops = 16;
  std::uint16_t instructions = kIntInsSwitchId;
  std::uint16_t domain_id = 0;
};

// Parsed view of an INT-carrying UDP payload.
struct IntWirePacket {
  IntMdHeader md;
  std::uint16_t original_dst_port = 0;  // restored by the sink
  std::vector<IntHopMetadata> hops;     // in path order (oldest first)
  std::span<const std::byte> inner_payload;
};

// Source: wraps `inner_payload` with INT shim + MD header (empty stack).
// `original_dst_port` is preserved in the shim for sink restoration.
[[nodiscard]] std::vector<std::byte> int_source_encap(
    const IntMdHeader& md, std::uint16_t original_dst_port,
    std::span<const std::byte> inner_payload);

// Transit: pushes one hop's metadata onto the stack of an INT UDP payload
// in place (the payload grows). Returns false — and sets the M bit — when
// remaining-hop-count is exhausted (metadata not pushed), matching the spec.
bool int_transit_push(std::vector<std::byte>& udp_payload,
                      const IntHopMetadata& hop);

// Sink/parser: decodes shim + MD + stack; hops are returned oldest-first
// (path order). Returns nullopt on malformed input.
[[nodiscard]] std::optional<IntWirePacket> int_parse(
    std::span<const std::byte> udp_payload);

// Sink: strips INT headers, returning the restored inner payload bytes.
[[nodiscard]] std::optional<std::vector<std::byte>> int_sink_decap(
    std::span<const std::byte> udp_payload);

// Bytes of INT overhead currently carried by an INT UDP payload.
[[nodiscard]] std::optional<std::size_t> int_overhead_bytes(
    std::span<const std::byte> udp_payload);

// Words each hop pushes for an instruction bitmap (1 word per set field we
// support: switch id, queue depth, hop latency).
[[nodiscard]] constexpr std::uint8_t int_hop_words(std::uint16_t instructions) noexcept {
  std::uint8_t words = 0;
  if (instructions & kIntInsSwitchId) ++words;
  if (instructions & kIntInsQueueDepth) ++words;
  if (instructions & kIntInsHopLatency) ++words;
  return words;
}

}  // namespace dart::telemetry
