// Flow identity: the 5-tuple every Table-1 backend keys on.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "net/headers.hpp"

namespace dart::telemetry {

struct FiveTuple {
  net::Ipv4Addr src_ip{};
  net::Ipv4Addr dst_ip{};
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;  // TCP

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;

  // Canonical 13-byte packed encoding (big-endian fields) — the exact bytes
  // hashed by switches and query clients; any divergence here would break
  // the stateless mapping, so this is the only serializer.
  [[nodiscard]] std::array<std::byte, 13> key_bytes() const noexcept;

  [[nodiscard]] std::string str() const;
};

// Hash for unordered containers (simulation bookkeeping only — the DART data
// path uses HashFamily, not this).
struct FiveTupleHash {
  [[nodiscard]] std::size_t operator()(const FiveTuple& t) const noexcept;
};

}  // namespace dart::telemetry
