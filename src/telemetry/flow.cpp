#include "telemetry/flow.hpp"

#include <cstdio>

#include "common/hash.hpp"

namespace dart::telemetry {

std::array<std::byte, 13> FiveTuple::key_bytes() const noexcept {
  std::array<std::byte, 13> out;
  auto put32 = [&](std::size_t off, std::uint32_t v) {
    out[off + 0] = static_cast<std::byte>((v >> 24) & 0xFF);
    out[off + 1] = static_cast<std::byte>((v >> 16) & 0xFF);
    out[off + 2] = static_cast<std::byte>((v >> 8) & 0xFF);
    out[off + 3] = static_cast<std::byte>(v & 0xFF);
  };
  auto put16 = [&](std::size_t off, std::uint16_t v) {
    out[off + 0] = static_cast<std::byte>((v >> 8) & 0xFF);
    out[off + 1] = static_cast<std::byte>(v & 0xFF);
  };
  put32(0, src_ip.value);
  put32(4, dst_ip.value);
  put16(8, src_port);
  put16(10, dst_port);
  out[12] = static_cast<std::byte>(protocol);
  return out;
}

std::string FiveTuple::str() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s:%u->%s:%u/%u", src_ip.str().c_str(),
                src_port, dst_ip.str().c_str(), dst_port, protocol);
  return buf;
}

std::size_t FiveTupleHash::operator()(const FiveTuple& t) const noexcept {
  const auto k = t.key_bytes();
  return static_cast<std::size_t>(xxhash64(k, 0x5717'F10Dull));
}

}  // namespace dart::telemetry
