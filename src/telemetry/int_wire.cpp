#include "telemetry/int_wire.hpp"

#include <cstring>

namespace dart::telemetry {

namespace {

// Shim layout (4 B): [type:1][npt:1][length_words:1][reserved:1] followed by
// our NPT=1 extension: the original dst port stored in the first 2 bytes of
// the MD header's domain-specific slot... To stay self-contained we carry
// the original port in shim bytes 2..3 and keep the stack length in the MD
// header's remaining/words fields plus an explicit stack word count.
//
// Concretely:
//   shim[0] = type (0x01 = INT-MD)
//   shim[1] = stack_words (number of 4-byte metadata words present)
//   shim[2..3] = original destination UDP port (big-endian)
//
//   md[0] = version << 4 | (exceeded ? 0x1 : 0)
//   md[1] = hop_words
//   md[2] = remaining_hops
//   md[3] = reserved
//   md[4..5] = instruction bitmap (big-endian)
//   md[6..7] = domain id (big-endian)
constexpr std::uint8_t kShimTypeIntMd = 0x01;

void put_be16(std::byte* p, std::uint16_t v) {
  p[0] = static_cast<std::byte>(v >> 8);
  p[1] = static_cast<std::byte>(v & 0xFF);
}

[[nodiscard]] std::uint16_t get_be16(const std::byte* p) {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[0])) << 8) |
      static_cast<std::uint8_t>(p[1]));
}

void put_be32(std::byte* p, std::uint32_t v) {
  put_be16(p, static_cast<std::uint16_t>(v >> 16));
  put_be16(p + 2, static_cast<std::uint16_t>(v & 0xFFFF));
}

[[nodiscard]] std::uint32_t get_be32(const std::byte* p) {
  return (static_cast<std::uint32_t>(get_be16(p)) << 16) | get_be16(p + 2);
}

}  // namespace

std::vector<std::byte> int_source_encap(const IntMdHeader& md,
                                        std::uint16_t original_dst_port,
                                        std::span<const std::byte> inner_payload) {
  std::vector<std::byte> out(kIntShimLen + kIntMdLen + inner_payload.size());
  out[0] = static_cast<std::byte>(kShimTypeIntMd);
  out[1] = std::byte{0};  // empty stack
  put_be16(out.data() + 2, original_dst_port);

  out[4] = static_cast<std::byte>((md.version << 4) | (md.exceeded ? 1 : 0));
  out[5] = static_cast<std::byte>(md.hop_words);
  out[6] = static_cast<std::byte>(md.remaining_hops);
  out[7] = std::byte{0};
  put_be16(out.data() + 8, md.instructions);
  put_be16(out.data() + 10, md.domain_id);

  if (!inner_payload.empty()) {
    // memcpy forbids a null source even for size 0, and an empty span's
    // data() may be null.
    std::memcpy(out.data() + kIntShimLen + kIntMdLen, inner_payload.data(),
                inner_payload.size());
  }
  return out;
}

bool int_transit_push(std::vector<std::byte>& udp_payload,
                      const IntHopMetadata& hop) {
  if (udp_payload.size() < kIntShimLen + kIntMdLen) return false;
  if (static_cast<std::uint8_t>(udp_payload[0]) != kShimTypeIntMd) return false;
  // A transit switch only operates on structurally valid INT packets: a
  // payload that fails to parse (inconsistent stack length, unsupported
  // instruction bitmap, truncation) is left untouched.
  if (!int_parse(udp_payload).has_value()) return false;
  if (int_hop_words(get_be16(udp_payload.data() + 8)) == 0) return false;

  const std::uint8_t remaining =
      static_cast<std::uint8_t>(udp_payload[6]);
  if (remaining == 0) {
    // Hop limit exceeded: set the M bit, push nothing (spec behaviour).
    udp_payload[4] = static_cast<std::byte>(
        static_cast<std::uint8_t>(udp_payload[4]) | 0x1);
    return false;
  }
  udp_payload[6] = static_cast<std::byte>(remaining - 1);

  const std::uint16_t instructions = get_be16(udp_payload.data() + 8);
  const std::uint8_t hop_words = int_hop_words(instructions);

  // Push newest-first: insert directly after the MD header.
  std::vector<std::byte> words(static_cast<std::size_t>(hop_words) * 4);
  std::size_t off = 0;
  if (instructions & kIntInsSwitchId) {
    put_be32(words.data() + off, hop.switch_id);
    off += 4;
  }
  if (instructions & kIntInsHopLatency) {
    put_be32(words.data() + off, hop.hop_latency_ns);
    off += 4;
  }
  if (instructions & kIntInsQueueDepth) {
    put_be32(words.data() + off, hop.queue_depth);
    off += 4;
  }
  udp_payload.insert(
      udp_payload.begin() + static_cast<std::ptrdiff_t>(kIntShimLen + kIntMdLen),
      words.begin(), words.end());

  // Stack word count in the shim.
  udp_payload[1] = static_cast<std::byte>(
      static_cast<std::uint8_t>(udp_payload[1]) + hop_words);
  return true;
}

std::optional<IntWirePacket> int_parse(std::span<const std::byte> udp_payload) {
  if (udp_payload.size() < kIntShimLen + kIntMdLen) return std::nullopt;
  if (static_cast<std::uint8_t>(udp_payload[0]) != kShimTypeIntMd) {
    return std::nullopt;
  }
  IntWirePacket pkt;
  const std::uint8_t stack_words = static_cast<std::uint8_t>(udp_payload[1]);
  pkt.original_dst_port = get_be16(udp_payload.data() + 2);

  const std::uint8_t ver_flags = static_cast<std::uint8_t>(udp_payload[4]);
  pkt.md.version = ver_flags >> 4;
  pkt.md.exceeded = (ver_flags & 0x1) != 0;
  pkt.md.hop_words = static_cast<std::uint8_t>(udp_payload[5]);
  pkt.md.remaining_hops = static_cast<std::uint8_t>(udp_payload[6]);
  pkt.md.instructions = get_be16(udp_payload.data() + 8);
  pkt.md.domain_id = get_be16(udp_payload.data() + 10);

  const std::size_t stack_bytes = static_cast<std::size_t>(stack_words) * 4;
  if (udp_payload.size() < kIntShimLen + kIntMdLen + stack_bytes) {
    return std::nullopt;
  }
  const std::uint8_t hop_words = int_hop_words(pkt.md.instructions);
  if (hop_words == 0 || stack_words % hop_words != 0) {
    if (stack_words != 0) return std::nullopt;
  }

  // Stack is newest-first on the wire; return oldest-first (path order).
  const std::byte* stack = udp_payload.data() + kIntShimLen + kIntMdLen;
  const std::size_t n_hops = hop_words ? stack_words / hop_words : 0;
  for (std::size_t h = n_hops; h-- > 0;) {
    const std::byte* entry = stack + h * hop_words * 4;
    IntHopMetadata hop;
    std::size_t off = 0;
    if (pkt.md.instructions & kIntInsSwitchId) {
      hop.switch_id = get_be32(entry + off);
      off += 4;
    }
    if (pkt.md.instructions & kIntInsHopLatency) {
      hop.hop_latency_ns = get_be32(entry + off);
      off += 4;
    }
    if (pkt.md.instructions & kIntInsQueueDepth) {
      hop.queue_depth = get_be32(entry + off);
      off += 4;
    }
    pkt.hops.push_back(hop);
  }
  pkt.inner_payload = udp_payload.subspan(kIntShimLen + kIntMdLen + stack_bytes);
  return pkt;
}

std::optional<std::vector<std::byte>> int_sink_decap(
    std::span<const std::byte> udp_payload) {
  const auto pkt = int_parse(udp_payload);
  if (!pkt) return std::nullopt;
  return std::vector<std::byte>(pkt->inner_payload.begin(),
                                pkt->inner_payload.end());
}

std::optional<std::size_t> int_overhead_bytes(
    std::span<const std::byte> udp_payload) {
  const auto pkt = int_parse(udp_payload);
  if (!pkt) return std::nullopt;
  return udp_payload.size() - pkt->inner_payload.size();
}

}  // namespace dart::telemetry
