#include "telemetry/backends.hpp"

#include <cassert>

namespace dart::telemetry {

namespace {

void put_be16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::byte>(v & 0xFF));
}

void put_be32(std::vector<std::byte>& out, std::uint32_t v) {
  put_be16(out, static_cast<std::uint16_t>(v >> 16));
  put_be16(out, static_cast<std::uint16_t>(v & 0xFFFF));
}

void put_be64(std::vector<std::byte>& out, std::uint64_t v) {
  put_be32(out, static_cast<std::uint32_t>(v >> 32));
  put_be32(out, static_cast<std::uint32_t>(v & 0xFFFF'FFFFull));
}

[[nodiscard]] std::uint32_t get_be32(std::span<const std::byte> in,
                                     std::size_t off) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<std::uint8_t>(in[off + static_cast<std::size_t>(i)]);
  }
  return v;
}

[[nodiscard]] std::uint64_t get_be64(std::span<const std::byte> in,
                                     std::size_t off) noexcept {
  return (static_cast<std::uint64_t>(get_be32(in, off)) << 32) |
         get_be32(in, off + 4);
}

// Pads/truncation guard for values: every record must be exactly the
// deployment's value width so slot writes are well-formed.
std::vector<std::byte> fit(std::vector<std::byte> v, std::uint32_t value_bytes) {
  assert(v.size() <= value_bytes && "value exceeds deployment value width");
  v.resize(value_bytes, std::byte{0});
  return v;
}

}  // namespace

// --- in-band INT -------------------------------------------------------------

TelemetryRecord make_inband_record(const FiveTuple& flow, const IntStack& stack,
                                   std::uint32_t value_bytes) {
  TelemetryRecord rec;
  const auto key = flow.key_bytes();
  rec.key.assign(key.begin(), key.end());
  auto value = stack.encode_value(value_bytes);
  assert(value.has_value() && "INT stack exceeds deployment value width");
  rec.value = std::move(*value);
  return rec;
}

// --- postcards -----------------------------------------------------------------

std::vector<std::byte> postcard_key(std::uint32_t switch_id,
                                    const FiveTuple& flow) {
  std::vector<std::byte> key;
  key.reserve(4 + 13);
  put_be32(key, switch_id);
  const auto fk = flow.key_bytes();
  key.insert(key.end(), fk.begin(), fk.end());
  return key;
}

TelemetryRecord make_postcard_record(std::uint32_t switch_id,
                                     const FiveTuple& flow,
                                     const IntHopMetadata& hop,
                                     std::uint32_t value_bytes) {
  TelemetryRecord rec;
  rec.key = postcard_key(switch_id, flow);
  std::vector<std::byte> v;
  put_be32(v, hop.switch_id);
  put_be32(v, hop.queue_depth);
  put_be32(v, hop.hop_latency_ns);
  rec.value = fit(std::move(v), value_bytes);
  return rec;
}

// --- query-based mirroring --------------------------------------------------------

std::vector<std::byte> query_mirror_key(std::uint32_t query_id) {
  std::vector<std::byte> key;
  key.reserve(6);
  // Domain tag avoids cross-backend key collisions when several backends
  // share one store.
  put_be16(key, 0x5133);  // "Q3" — query-mirroring domain
  put_be32(key, query_id);
  return key;
}

TelemetryRecord make_query_mirror_record(std::uint32_t query_id,
                                         std::span<const std::byte> answer,
                                         std::uint32_t value_bytes) {
  TelemetryRecord rec;
  rec.key = query_mirror_key(query_id);
  std::vector<std::byte> v(answer.begin(), answer.end());
  rec.value = fit(std::move(v), value_bytes);
  return rec;
}

// --- trace analysis ----------------------------------------------------------------

std::vector<std::byte> trace_analysis_key(std::uint32_t analysis_id,
                                          std::uint64_t object_id) {
  std::vector<std::byte> key;
  key.reserve(14);
  put_be16(key, 0x7261);  // "ra" — trace-analysis domain
  put_be32(key, analysis_id);
  put_be64(key, object_id);
  return key;
}

TelemetryRecord make_trace_analysis_record(std::uint32_t analysis_id,
                                           std::uint64_t object_id,
                                           std::span<const std::byte> output,
                                           std::uint32_t value_bytes) {
  TelemetryRecord rec;
  rec.key = trace_analysis_key(analysis_id, object_id);
  std::vector<std::byte> v(output.begin(), output.end());
  rec.value = fit(std::move(v), value_bytes);
  return rec;
}

// --- flow anomalies ------------------------------------------------------------------

std::vector<std::byte> anomaly_key(const FiveTuple& flow, AnomalyKind kind) {
  std::vector<std::byte> key;
  key.reserve(15);
  const auto fk = flow.key_bytes();
  key.insert(key.end(), fk.begin(), fk.end());
  put_be16(key, static_cast<std::uint16_t>(kind));
  return key;
}

TelemetryRecord make_anomaly_record(const FlowAnomalyEvent& event,
                                    std::uint32_t value_bytes) {
  TelemetryRecord rec;
  rec.key = anomaly_key(event.flow, event.kind);
  std::vector<std::byte> v;
  put_be64(v, event.timestamp_ns);
  put_be32(v, event.magnitude);
  rec.value = fit(std::move(v), value_bytes);
  return rec;
}

AnomalyData decode_anomaly_value(std::span<const std::byte> value) {
  AnomalyData d;
  if (value.size() >= 12) {
    d.timestamp_ns = get_be64(value, 0);
    d.magnitude = get_be32(value, 8);
  }
  return d;
}

// --- network failures ------------------------------------------------------------------

std::vector<std::byte> failure_key(std::uint32_t failure_id,
                                   std::uint32_t location) {
  std::vector<std::byte> key;
  key.reserve(10);
  put_be16(key, 0xFA11);  // failure domain
  put_be32(key, failure_id);
  put_be32(key, location);
  return key;
}

TelemetryRecord make_failure_record(const NetworkFailureEvent& event,
                                    std::uint32_t value_bytes) {
  TelemetryRecord rec;
  rec.key = failure_key(event.failure_id, event.location);
  std::vector<std::byte> v;
  put_be64(v, event.timestamp_ns);
  put_be32(v, event.debug_code);
  rec.value = fit(std::move(v), value_bytes);
  return rec;
}

FailureData decode_failure_value(std::span<const std::byte> value) {
  FailureData d;
  if (value.size() >= 12) {
    d.timestamp_ns = get_be64(value, 0);
    d.debug_code = get_be32(value, 8);
  }
  return d;
}

}  // namespace dart::telemetry
