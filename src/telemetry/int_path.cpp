#include "telemetry/int_path.hpp"

namespace dart::telemetry {

bool IntStack::push_hop(const IntHopMetadata& hop) {
  if (hops_.size() >= max_hops_) return false;
  hops_.push_back(hop);
  return true;
}

namespace {

void put_be32(std::vector<std::byte>& out, std::uint32_t v) {
  out.push_back(static_cast<std::byte>((v >> 24) & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::byte>(v & 0xFF));
}

[[nodiscard]] std::uint32_t get_be32(std::span<const std::byte> in,
                                     std::size_t off) noexcept {
  return (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[off])) << 24) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[off + 1]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[off + 2]))
          << 8) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[off + 3]));
}

}  // namespace

std::optional<std::vector<std::byte>> IntStack::encode_value(
    std::uint32_t value_bytes) const {
  const std::uint32_t per_hop = int_bytes_per_hop(instruction_);
  if (hops_.size() * per_hop > value_bytes) return std::nullopt;

  std::vector<std::byte> out;
  out.reserve(value_bytes);
  for (const auto& hop : hops_) {
    put_be32(out, hop.switch_id);
    if (instruction_ == IntInstruction::kSwitchIdQueueLatency) {
      put_be32(out, hop.queue_depth);
      put_be32(out, hop.hop_latency_ns);
    }
  }
  out.resize(value_bytes, std::byte{0});
  return out;
}

std::vector<std::uint32_t> IntStack::decode_switch_ids(
    std::span<const std::byte> value, std::uint32_t expected_hops) {
  std::vector<std::uint32_t> ids;
  const std::size_t max_hops =
      expected_hops != 0 ? expected_hops : value.size() / 4;
  for (std::size_t h = 0; h < max_hops && (h + 1) * 4 <= value.size(); ++h) {
    const std::uint32_t id = get_be32(value, h * 4);
    if (expected_hops == 0 && id == 0) break;  // zero padding reached
    ids.push_back(id);
  }
  return ids;
}

}  // namespace dart::telemetry
