#include "telemetry/heavy_hitters.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace dart::telemetry {

HeavyHitterCollector::HeavyHitterCollector(const HeavyHitterConfig& config)
    : config_(config),
      memory_(static_cast<std::size_t>(config.sketch_rows) *
                  config.sketch_cols * 8,
              std::byte{0}),
      rnic_(config.hash_seed ^ 0x99),
      index_(config.sketch_rows, config.sketch_cols, config.hash_seed) {
  const auto pd = rnic_.alloc_pd();
  auto mr = rnic_.register_mr(pd, memory_, config.base_vaddr,
                              rdma::Access::kRemoteAtomic);
  assert(mr.ok());
  const auto qp =
      rnic_.create_qp(config.qpn, rdma::QpType::kRc, pd,
                      rdma::PsnPolicy::kIgnore);  // many switches, one QP
  assert(qp.ok());
  (void)qp;

  info_.collector_id = 0;
  info_.ip = net::Ipv4Addr::from_octets(10, 0, 102, 1);
  info_.mac = {0x02, 0x44, 0, 0, 0, 1};
  info_.qpn = config.qpn;
  info_.rkey = mr.value().rkey;
  info_.base_vaddr = config.base_vaddr;
  info_.n_slots = static_cast<std::uint64_t>(config.sketch_rows) *
                  config.sketch_cols;
  info_.slot_bytes = 8;
}

std::vector<std::uint64_t> HeavyHitterCollector::cell_indices(
    const FiveTuple& flow) const {
  const auto key = flow.key_bytes();
  return index_.cell_indices(key);
}

std::uint64_t HeavyHitterCollector::estimate(const FiveTuple& flow) const {
  std::uint64_t best = UINT64_MAX;
  for (const auto cell : cell_indices(flow)) {
    std::uint64_t v;
    std::memcpy(&v, memory_.data() + cell * 8, 8);
    best = std::min(best, v);
  }
  return best == UINT64_MAX ? 0 : best;
}

std::vector<std::pair<FiveTuple, std::uint64_t>>
HeavyHitterCollector::heavy_hitters(std::span<const FiveTuple> candidates,
                                    std::uint64_t threshold) const {
  std::vector<std::pair<FiveTuple, std::uint64_t>> out;
  for (const auto& flow : candidates) {
    const auto est = estimate(flow);
    if (est >= threshold) out.emplace_back(flow, est);
  }
  return out;
}

HeavyHitterSwitch::HeavyHitterSwitch(const HeavyHitterCollector& collector,
                                     const core::ReporterEndpoint& endpoint)
    : collector_(&collector), endpoint_(endpoint),
      crafter_([&] {
        core::DartConfig cfg;  // crafter only needs framing defaults here
        cfg.n_slots = collector.remote_info().n_slots;
        cfg.value_bytes = 8;
        return cfg;
      }()) {}

std::vector<std::vector<std::byte>> HeavyHitterSwitch::observe(
    const FiveTuple& flow, std::uint64_t count) {
  std::vector<std::vector<std::byte>> frames;
  const auto info = collector_->remote_info();
  for (const auto cell : collector_->cell_indices(flow)) {
    frames.push_back(crafter_.craft_fetch_add(
        info, endpoint_, info.base_vaddr + cell * 8, count, psn_++));
    ++frames_;
  }
  return frames;
}

}  // namespace dart::telemetry
