// Network-wide heavy-hitter detection on collector memory (§7).
//
//   "Fetch & Add can be used to implement flow-counters directly in
//    collectors' memory (saving resources at switches) or to perform
//    network-wide aggregation of sketches."
//
// HeavyHitterMonitor is the deployable form of that idea: every switch
// observes packets and emits FETCH_ADD frames against a count-min sketch
// living in one collector's registered memory. Switches keep ZERO counting
// state; the sketch in collector DRAM is automatically the network-wide sum
// of all switches' contributions (addition commutes — no merge step, no
// coordination). The operator estimates any flow's count by reading d cells
// from collector memory and reports flows above a threshold.
//
// The monitor also tracks candidate keys on the operator side (a real
// deployment learns candidates from flow logs or sampled headers; the
// sketch itself is one-directional).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/atomics_store.hpp"
#include "core/collector.hpp"
#include "core/report_crafter.hpp"
#include "telemetry/flow.hpp"

namespace dart::telemetry {

struct HeavyHitterConfig {
  std::uint32_t sketch_rows = 4;
  std::uint64_t sketch_cols = 4096;
  std::uint64_t base_vaddr = 0x0000'3000'0000'0000ull;
  std::uint32_t qpn = 0x300;
  std::uint64_t hash_seed = 0x5E7C;
};

// Collector-side state: sketch memory registered as an RDMA MR.
class HeavyHitterCollector {
 public:
  explicit HeavyHitterCollector(const HeavyHitterConfig& config);

  [[nodiscard]] rdma::SimulatedRnic& rnic() noexcept { return rnic_; }
  [[nodiscard]] core::RemoteStoreInfo remote_info() const noexcept {
    return info_;
  }

  // Operator read path: count estimate for a flow (min over d cells).
  [[nodiscard]] std::uint64_t estimate(const FiveTuple& flow) const;

  // Flows among `candidates` whose estimate meets `threshold`.
  [[nodiscard]] std::vector<std::pair<FiveTuple, std::uint64_t>> heavy_hitters(
      std::span<const FiveTuple> candidates, std::uint64_t threshold) const;

  [[nodiscard]] const HeavyHitterConfig& config() const noexcept {
    return config_;
  }

 private:
  friend class HeavyHitterSwitch;
  [[nodiscard]] std::vector<std::uint64_t> cell_indices(
      const FiveTuple& flow) const;

  HeavyHitterConfig config_;
  std::vector<std::byte> memory_;
  rdma::SimulatedRnic rnic_;
  core::RemoteStoreInfo info_;
  core::CountMinSketch index_;  // index geometry only; cells live in memory_
};

// Switch-side: stateless observation → FETCH_ADD frames.
class HeavyHitterSwitch {
 public:
  HeavyHitterSwitch(const HeavyHitterCollector& collector,
                    const core::ReporterEndpoint& endpoint);

  // Frames to emit for one observed packet (one FETCH_ADD per sketch row).
  [[nodiscard]] std::vector<std::vector<std::byte>> observe(
      const FiveTuple& flow, std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t frames_emitted() const noexcept {
    return frames_;
  }

 private:
  const HeavyHitterCollector* collector_;
  core::ReporterEndpoint endpoint_;
  core::ReportCrafter crafter_;
  std::uint32_t psn_ = 0;
  std::uint64_t frames_ = 0;
};

}  // namespace dart::telemetry
