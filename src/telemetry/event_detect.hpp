// Switch-side event-triggered reporting (§2).
//
//   "a non-sampled INT telemetry system requires the collection of telemetry
//    data from every single packet, which would result in an excessive
//    amount of reports. Because of this, event detection is typically
//    implemented at switches in an effort to send reports to a collector
//    only when things change [25]. This helps in reducing the rate of
//    switch-to-collector communication down to a few million telemetry
//    reports per second per switch [56]."
//
// ChangeDetector models that filter under real P4 constraints: per-flow
// state lives in a fixed-size register table (no dynamic allocation, §3.1),
// direct-mapped by key hash with a tag to detect collisions. A packet's
// measurement triggers a report iff:
//   - its flow is new to the table (includes collision evictions), or
//   - the measured value moved by more than `threshold` since the last
//     report, AND the per-flow rate limit `min_interval_ns` has elapsed.
//
// The suppression factor this achieves on skewed traffic is what turns
// per-packet INT into the "few million reports/s" rate Fig. 1 assumes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dart::telemetry {

struct ChangeDetectorConfig {
  std::uint32_t table_size = 1 << 16;   // register array entries (2^k)
  std::uint32_t threshold = 0;          // report if |value - last| > threshold
  std::uint64_t min_interval_ns = 0;    // per-flow report rate limit
  std::uint64_t seed = 0xDE7EC7;
};

struct ChangeDetectorStats {
  std::uint64_t observations = 0;
  std::uint64_t reports = 0;             // triggered reports
  std::uint64_t new_flows = 0;           // first sight (incl. after eviction)
  std::uint64_t suppressed_unchanged = 0;
  std::uint64_t suppressed_ratelimited = 0;
  std::uint64_t evictions = 0;           // tag mismatch overwrote a flow

  [[nodiscard]] double report_fraction() const noexcept {
    return observations
               ? static_cast<double>(reports) / static_cast<double>(observations)
               : 0.0;
  }
};

class ChangeDetector {
 public:
  explicit ChangeDetector(const ChangeDetectorConfig& config);

  // Observes one packet's measurement for `key`; returns true iff a report
  // should be sent (and updates the per-flow state accordingly).
  [[nodiscard]] bool observe(std::span<const std::byte> key,
                             std::uint32_t value, std::uint64_t now_ns);

  [[nodiscard]] const ChangeDetectorStats& stats() const noexcept {
    return stats_;
  }

  // Register-array SRAM footprint (the switch resource this consumes).
  [[nodiscard]] std::size_t sram_bytes() const noexcept;

 private:
  struct Entry {
    std::uint32_t tag = 0;          // key checksum; 0 = empty
    std::uint32_t last_value = 0;
    std::uint64_t last_report_ns = 0;
  };

  ChangeDetectorConfig config_;
  std::vector<Entry> table_;
  ChangeDetectorStats stats_;
};

}  // namespace dart::telemetry
