// WireFabric — a fully packet-forwarding fat-tree datacenter with wire-level
// INT and DART collection, built on the event-driven network simulator.
//
// Where IntFabric (int_fabric.hpp) walks abstract paths, WireFabric moves
// real Ethernet/IPv4/UDP frames hop by hop:
//
//   host ──frame──▶ edge (INT source: encap + push hop)
//                    │ ECMP uplink
//                   agg (INT transit: push hop)
//                    │
//                   core (INT transit) ─▶ agg ─▶ edge (INT sink:
//                        push hop, strip INT, deliver inner frame to host,
//                        craft DART RoCEv2 reports → collector RNIC)
//
// Every switch is a ForwardingSwitch (a net::Node) with hash-based ECMP that
// provably matches FatTree::path (tests assert it); collectors terminate a
// dedicated monitoring underlay (one link per switch), which is where report
// loss is injected. INT telemetry rides the *data* packets, exactly as
// in-band telemetry does (§3, Table 1 row 1).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/cluster.hpp"
#include "core/query_service.hpp"
#include "net/netsim.hpp"
#include "obs/metric.hpp"
#include "query/gateway.hpp"
#include "switchsim/dart_switch.hpp"
#include "switchsim/topology.hpp"
#include "telemetry/event_detect.hpp"
#include "telemetry/flow.hpp"
#include "telemetry/int_wire.hpp"

namespace dart::telemetry {

struct WireFabricConfig {
  std::uint32_t fat_tree_k = 4;
  core::DartConfig dart;
  std::uint32_t n_collectors = 1;
  core::WriteMode switch_write_mode = core::WriteMode::kAllSlots;
  double report_loss_rate = 0.0;       // on the monitoring underlay
  std::uint64_t link_latency_ns = 1000;
  // Data-link shaping: finite bandwidth serializes packets and builds real
  // egress queues, which INT's queue-depth metadata then reports. Default:
  // ideal links (no queuing).
  net::LinkShape data_link_shape{};
  std::uint8_t int_max_hops = 8;
  std::uint16_t int_instructions = kIntInsSwitchId;
  // Postcard mode (Table 1 row 2): every switch on the path reports its own
  // (switch, flow) hop record, gated by a per-switch ChangeDetector on the
  // observed queue depth (§2's event filter) so stable flows stay quiet.
  bool postcards = false;
  ChangeDetectorConfig postcard_detector{};
  std::uint64_t seed = 1;
};

struct WireFabricStats {
  std::uint64_t host_packets_sent = 0;
  std::uint64_t host_packets_received = 0;
  std::uint64_t switch_hops = 0;          // per-switch forwarding events
  std::uint64_t int_sources = 0;          // encapsulations at ingress edges
  std::uint64_t int_sinks = 0;            // decapsulations at egress edges
  std::uint64_t int_overhead_bytes = 0;   // INT bytes removed at sinks
  std::uint64_t reports_emitted = 0;      // RoCEv2 frames toward collectors
  std::uint32_t max_reported_queue_depth = 0;  // deepest queue seen by INT
  std::uint64_t postcard_observations = 0;  // per-switch per-packet checks
  std::uint64_t postcard_reports = 0;       // postcards that fired
};

// Node id directory shared by all switches (who is where in the simulator).
struct FabricDirectory {
  std::vector<net::NodeId> switch_nodes;    // by topology switch id
  std::vector<net::NodeId> host_nodes;      // by host id
  std::vector<net::NodeId> collector_nodes; // by collector id
};

class HostNode;
class ForwardingSwitch;

class WireFabric {
 public:
  explicit WireFabric(const WireFabricConfig& config);
  ~WireFabric();

  WireFabric(const WireFabric&) = delete;
  WireFabric& operator=(const WireFabric&) = delete;

  [[nodiscard]] const switchsim::FatTree& topology() const noexcept {
    return topo_;
  }
  [[nodiscard]] core::CollectorCluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] net::Simulator& simulator() noexcept { return sim_; }

  // Sends `count` UDP packets of `payload_bytes` for the given flow from its
  // source host; INT is added/stripped by the fabric. Call run() to drain.
  void send_flow(const FiveTuple& flow, std::uint32_t src_host,
                 std::uint32_t count = 1, std::size_t payload_bytes = 64);

  // Drains all in-flight events.
  void run() { sim_.run(); }

  // The DART-recorded path of a flow (topology switch ids, path order).
  [[nodiscard]] std::optional<std::vector<std::uint32_t>> query_path(
      const FiveTuple& flow) const;

  // Postcard mode: one switch's latest hop record for a flow.
  [[nodiscard]] std::optional<IntHopMetadata> query_postcard(
      std::uint32_t switch_id, const FiveTuple& flow) const;

  // Packets delivered to a given host (inner frames, post-INT-strip).
  [[nodiscard]] std::uint64_t host_received(std::uint32_t host) const;

  [[nodiscard]] WireFabricStats stats() const;

  // Host id owning an IP, if any (used by tests).
  [[nodiscard]] std::optional<std::uint32_t> host_of_ip(net::Ipv4Addr ip) const;

  // Completes Fig. 2 inside this one simulator: brings up a QueryServiceNode
  // per collector and an OperatorClient, all joined to the management
  // network. Call once; returns the operator (owned by the fabric). Queries
  // then flow as real UDP/4800 frames: operator → service → response.
  [[nodiscard]] core::OperatorClient& attach_operator(
      std::uint64_t mgmt_latency_ns = 50'000);

  // Fronts the query plane with a QueryGateway (docs/QUERY_PLANE.md): the
  // gateway joins the management network holding one virtual IP per
  // collector (10.9.2.c) plus its own front door (10.9.2.254), and a second,
  // gateway-fronted OperatorClient is created whose "service" addresses are
  // those virtual IPs — every one of its queries transparently rides the
  // gateway's pipeline/cache/coalescing. Calls attach_operator() first if
  // needed (the gateway needs the services up). Idempotent.
  [[nodiscard]] query::QueryGateway& attach_gateway(
      std::uint64_t mgmt_latency_ns = 50'000);

  // Query gateway plane, nullptr before attach_gateway().
  [[nodiscard]] query::QueryGateway* gateway() noexcept {
    return gateway_.get();
  }
  [[nodiscard]] core::OperatorClient* gateway_operator_client() noexcept {
    return gateway_operator_.get();
  }

  // --- fault & recovery hooks (src/fault, docs/FAULTS.md) ------------------

  [[nodiscard]] std::uint32_t n_collectors() const noexcept;
  [[nodiscard]] std::uint32_t n_switches() const noexcept;

  // Switch `s`'s egress pipeline (tests: assert the per-switch selection
  // replicas agree with the fabric-wide selector after membership churn).
  [[nodiscard]] switchsim::DartSwitchPipeline& switch_pipeline(std::uint32_t s);

  // The deployment's collector-selection policy (config.dart.selection).
  [[nodiscard]] core::CollectorSelection selection() const noexcept {
    return config_.dart.selection;
  }
  // The fabric-wide live selector (key→collector for the query plane), or
  // nullptr under kModulo. Switch pipelines hold their own replicas built
  // from the same config — determinism makes them agree.
  [[nodiscard]] core::CollectorSelector* selector() noexcept {
    return selector_.get();
  }

  // Ring-mode failover: drops collector `c` from the fabric selector and
  // from every switch pipeline's selection planes (KV + primitives), so
  // reports AND queries for its ~K/N key range re-route to the survivors
  // the ring picks. Any gateway cache entries under `c` are invalidated —
  // answers cached under the old route must not outlive it. No switch row
  // is touched (the ring never selects the dead member). kModulo: no-op.
  void ring_remove_member(std::uint32_t c);

  // Failback undo: re-admits `c` everywhere, restoring the exact pre-death
  // mapping (ring minimal-movement contract), and invalidates cached
  // entries under `c` again — they predate the death.
  void ring_add_member(std::uint32_t c);

  // The monitoring-underlay link switch `s` → collector `c` (the partition /
  // corruption target for report-path faults).
  [[nodiscard]] net::LinkId monitoring_link(std::uint32_t s,
                                            std::uint32_t c) const;

  // Query plane, nullptr before attach_operator().
  [[nodiscard]] core::QueryServiceNode* query_service(std::uint32_t c) noexcept;
  [[nodiscard]] core::OperatorClient* operator_client() noexcept;

  // Failover: re-points every switch's lookup-table row for dead collector
  // `dead` at `backup`'s store — the backup first adopts the dead stream's
  // well-known QPN (Collector::adopt_takeover_qp, fresh PSN window), then
  // each switch rebuilds the row and resets its PSN register
  // (DartSwitchPipeline::retarget_collector). Reports for the dead key range
  // then land in the backup's store at the same slot indices the keys hash
  // to everywhere (the address hash is collector-independent).
  void retarget_collector(std::uint32_t dead, std::uint32_t backup);

  // Recovery undo: collector `c` reconnects its report QP at a fresh PSN and
  // takes its switch rows back.
  void restore_collector(std::uint32_t c);

  // Collector-local QP error recovery: drain-and-reconnect `c`'s report QP
  // and zero every switch's PSN register for `c` (rows stay untouched).
  void reconnect_collector_qp(std::uint32_t c);

  // Registers every component's counters with a MetricRegistry (pull-based;
  // zero cost until snapshot()): per-switch pipeline counters plus fabric
  // sums, per-collector RNIC/QP counters, simulator totals, the monitoring
  // underlay's delivered/dropped link set, and — when attach_operator has
  // already run — the query services and the operator client. Call after
  // attach_operator to cover the query plane; the registry must not outlive
  // this fabric.
  void register_metrics(obs::MetricRegistry& registry,
                        const std::string& prefix = "dart");

 private:
  [[nodiscard]] net::NodeId sim_node_of(net::Ipv4Addr ip) const;

  WireFabricConfig config_;
  switchsim::FatTree topo_;
  net::Simulator sim_;
  std::unique_ptr<core::CollectorCluster> cluster_;
  // Live selection state for the query plane (kRing only; see selector()).
  std::unique_ptr<core::CollectorSelector> selector_;
  std::shared_ptr<FabricDirectory> directory_;
  std::vector<std::unique_ptr<HostNode>> hosts_;
  std::vector<std::unique_ptr<ForwardingSwitch>> switches_;
  std::vector<net::LinkId> monitoring_links_;  // switch→collector underlay

  // Management plane (created by attach_operator).
  std::unique_ptr<core::ReportCrafter> operator_crafter_;
  std::vector<std::unique_ptr<core::QueryServiceNode>> query_services_;
  std::unique_ptr<core::OperatorClient> operator_;
  std::shared_ptr<std::vector<std::pair<net::Ipv4Addr, net::NodeId>>> mgmt_arp_;

  // Gateway plane (created by attach_gateway).
  std::unique_ptr<query::QueryGateway> gateway_;
  std::unique_ptr<core::OperatorClient> gateway_operator_;
};

}  // namespace dart::telemetry
