#include "telemetry/event_detect.hpp"

#include <cstdlib>

#include "common/hash.hpp"

namespace dart::telemetry {

ChangeDetector::ChangeDetector(const ChangeDetectorConfig& config)
    : config_(config),
      table_(config.table_size == 0 ? 1 : config.table_size) {}

bool ChangeDetector::observe(std::span<const std::byte> key,
                             std::uint32_t value, std::uint64_t now_ns) {
  ++stats_.observations;

  const std::uint64_t h = xxhash64(key, config_.seed);
  const std::size_t idx = h % table_.size();
  // Tag from independent bits of the hash; avoid 0 (the empty marker).
  std::uint32_t tag = static_cast<std::uint32_t>(h >> 32);
  if (tag == 0) tag = 1;

  Entry& entry = table_[idx];

  if (entry.tag != tag) {
    // New flow, or a collision evicting the previous occupant — either way
    // the switch has no state for this key and must report.
    if (entry.tag != 0) ++stats_.evictions;
    ++stats_.new_flows;
    entry.tag = tag;
    entry.last_value = value;
    entry.last_report_ns = now_ns;
    ++stats_.reports;
    return true;
  }

  const std::uint32_t delta = value > entry.last_value
                                  ? value - entry.last_value
                                  : entry.last_value - value;
  if (delta <= config_.threshold) {
    ++stats_.suppressed_unchanged;
    return false;
  }
  if (now_ns - entry.last_report_ns < config_.min_interval_ns) {
    ++stats_.suppressed_ratelimited;
    return false;
  }
  entry.last_value = value;
  entry.last_report_ns = now_ns;
  ++stats_.reports;
  return true;
}

std::size_t ChangeDetector::sram_bytes() const noexcept {
  return table_.size() * sizeof(Entry);
}

}  // namespace dart::telemetry
