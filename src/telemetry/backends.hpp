// Table 1 of the paper: measurement techniques mapped onto DART's key-value
// collection structure. One adapter per row turns a backend-specific event
// into the canonical TelemetryRecord {key bytes, value bytes} that any
// DartStore / switch pipeline can carry — DART itself "does not place any
// specific restriction on the underlying measurement framework" (§3).
//
//   Backend                  Key                          Data
//   In-band INT              flow 5-tuple                 packet-carried data
//   Postcards                (switch id, 5-tuple)         local measurement
//   Query-based mirroring    query id                     query answer
//   Trace analysis           (analysis id, object id)     analysis output
//   Flow anomalies           (5-tuple, anomaly id)        time + event data
//   Network failures         (failure id, location)       time + debug info
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "telemetry/flow.hpp"
#include "telemetry/int_path.hpp"

namespace dart::telemetry {

struct TelemetryRecord {
  std::vector<std::byte> key;
  std::vector<std::byte> value;
};

// --- row 1: in-band INT -----------------------------------------------------

// Key = flow 5-tuple; value = the packet-carried INT stack.
[[nodiscard]] TelemetryRecord make_inband_record(const FiveTuple& flow,
                                                 const IntStack& stack,
                                                 std::uint32_t value_bytes);

// --- row 2: postcards --------------------------------------------------------

// Key = (switch id ‖ 5-tuple); value = this switch's local measurement.
[[nodiscard]] TelemetryRecord make_postcard_record(std::uint32_t switch_id,
                                                   const FiveTuple& flow,
                                                   const IntHopMetadata& hop,
                                                   std::uint32_t value_bytes);
[[nodiscard]] std::vector<std::byte> postcard_key(std::uint32_t switch_id,
                                                  const FiveTuple& flow);

// --- row 3: query-based mirroring --------------------------------------------

[[nodiscard]] TelemetryRecord make_query_mirror_record(
    std::uint32_t query_id, std::span<const std::byte> answer,
    std::uint32_t value_bytes);
[[nodiscard]] std::vector<std::byte> query_mirror_key(std::uint32_t query_id);

// --- row 4: trace analysis ----------------------------------------------------

[[nodiscard]] TelemetryRecord make_trace_analysis_record(
    std::uint32_t analysis_id, std::uint64_t object_id,
    std::span<const std::byte> output, std::uint32_t value_bytes);
[[nodiscard]] std::vector<std::byte> trace_analysis_key(
    std::uint32_t analysis_id, std::uint64_t object_id);

// --- row 5: flow anomalies -----------------------------------------------------

enum class AnomalyKind : std::uint16_t {
  kRetransmissionBurst = 1,
  kRttSpike = 2,
  kPacketDropRun = 3,
  kPathChange = 4,
};

struct FlowAnomalyEvent {
  FiveTuple flow;
  AnomalyKind kind = AnomalyKind::kRetransmissionBurst;
  std::uint64_t timestamp_ns = 0;
  std::uint32_t magnitude = 0;  // event-specific (drops, µs spike, ...)
};

[[nodiscard]] TelemetryRecord make_anomaly_record(const FlowAnomalyEvent& event,
                                                  std::uint32_t value_bytes);
[[nodiscard]] std::vector<std::byte> anomaly_key(const FiveTuple& flow,
                                                 AnomalyKind kind);

// Decoded form of an anomaly value (for query clients).
struct AnomalyData {
  std::uint64_t timestamp_ns = 0;
  std::uint32_t magnitude = 0;
};
[[nodiscard]] AnomalyData decode_anomaly_value(std::span<const std::byte> value);

// --- row 6: network failures -----------------------------------------------------

struct NetworkFailureEvent {
  std::uint32_t failure_id = 0;   // e.g. Pingmesh-style probe id
  std::uint32_t location = 0;     // switch / link id
  std::uint64_t timestamp_ns = 0;
  std::uint32_t debug_code = 0;
};

[[nodiscard]] TelemetryRecord make_failure_record(
    const NetworkFailureEvent& event, std::uint32_t value_bytes);
[[nodiscard]] std::vector<std::byte> failure_key(std::uint32_t failure_id,
                                                 std::uint32_t location);

struct FailureData {
  std::uint64_t timestamp_ns = 0;
  std::uint32_t debug_code = 0;
};
[[nodiscard]] FailureData decode_failure_value(std::span<const std::byte> value);

}  // namespace dart::telemetry
