#include "telemetry/wire_fabric.hpp"

#include <cassert>
#include <cstring>

#include "common/hash.hpp"
#include "obs/adapters.hpp"
#include "telemetry/backends.hpp"

namespace dart::telemetry {

namespace {

// The ECMP flow hash every switch derives from the packet's inner 5-tuple.
// For INT packets the *original* destination port (preserved in the shim)
// is used, so the hash — and therefore the path — is stable across the
// encapsulation, and matches FatTree::path for the original flow.
std::uint64_t flow_hash_of(const net::ParsedUdpFrame& frame) {
  FiveTuple tuple;
  tuple.src_ip = frame.ip.src;
  tuple.dst_ip = frame.ip.dst;
  tuple.src_port = frame.udp.src_port;
  tuple.dst_port = frame.udp.dst_port;
  tuple.protocol = frame.ip.protocol;
  if (frame.udp.dst_port == kIntUdpPort) {
    if (const auto pkt = int_parse(frame.payload)) {
      tuple.dst_port = pkt->original_dst_port;
    }
  }
  const auto key = tuple.key_bytes();
  return xxhash64(key, 0xECB9);
}

// Rebuilds an Ethernet+IPv4+UDP frame around a new UDP payload / dst port,
// keeping addressing intact (what a switch's deparser does after INT edits).
std::vector<std::byte> rebuild_frame(const net::ParsedUdpFrame& frame,
                                     std::span<const std::byte> new_payload,
                                     std::uint16_t new_dst_port) {
  net::UdpFrameSpec spec;
  spec.src_mac = frame.eth.src;
  spec.dst_mac = frame.eth.dst;
  spec.src_ip = frame.ip.src;
  spec.dst_ip = frame.ip.dst;
  spec.src_port = frame.udp.src_port;
  spec.dst_port = new_dst_port;
  spec.ttl = static_cast<std::uint8_t>(frame.ip.ttl > 0 ? frame.ip.ttl - 1
                                                        : 0);
  spec.dscp = frame.ip.dscp;
  spec.protocol = frame.ip.protocol;
  return net::build_udp_frame(spec, new_payload);
}

}  // namespace

// ---------------------------------------------------------------------------
// HostNode
// ---------------------------------------------------------------------------

class HostNode final : public net::Node {
 public:
  HostNode(std::uint32_t host_id, net::Ipv4Addr ip,
           std::shared_ptr<const FabricDirectory> directory,
           const switchsim::FatTree* topo)
      : host_id_(host_id), ip_(ip), directory_(std::move(directory)),
        topo_(topo) {}

  void receive(net::Packet packet, std::uint64_t) override {
    const auto parsed = net::parse_udp_frame(packet.bytes());
    if (parsed && parsed->ip.dst == ip_) ++received_;
  }

  void send_udp(const FiveTuple& flow, std::span<const std::byte> payload) {
    net::UdpFrameSpec spec;
    spec.src_mac = mac();
    spec.dst_mac = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};  // next-hop rewrites
    spec.src_ip = flow.src_ip;
    spec.dst_ip = flow.dst_ip;
    spec.src_port = flow.src_port;
    spec.dst_port = flow.dst_port;
    spec.protocol = flow.protocol;
    const auto frame = net::build_udp_frame(spec, payload);
    const auto edge = topo_->host_edge(host_id_);
    sim_->send(self_, directory_->switch_nodes[edge],
               net::Packet(std::vector<std::byte>(frame.begin(), frame.end())));
    ++sent_;
  }

  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }

 private:
  [[nodiscard]] net::MacAddr mac() const noexcept {
    return {0x02, 0x0A, 0, 0, static_cast<std::uint8_t>(host_id_ >> 8),
            static_cast<std::uint8_t>(host_id_ & 0xFF)};
  }

  std::uint32_t host_id_;
  net::Ipv4Addr ip_;
  std::shared_ptr<const FabricDirectory> directory_;
  const switchsim::FatTree* topo_;
  std::uint64_t received_ = 0;
  std::uint64_t sent_ = 0;
};

// ---------------------------------------------------------------------------
// ForwardingSwitch
// ---------------------------------------------------------------------------

class ForwardingSwitch final : public net::Node {
 public:
  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t int_sources = 0;
    std::uint64_t int_sinks = 0;
    std::uint64_t int_overhead_bytes = 0;
    std::uint64_t reports_emitted = 0;
    std::uint64_t routing_drops = 0;
    std::uint32_t max_reported_queue_depth = 0;
    std::uint64_t postcard_observations = 0;
    std::uint64_t postcard_reports = 0;
  };

  ForwardingSwitch(const WireFabricConfig& config,
                   const switchsim::FatTree* topo, std::uint32_t switch_id,
                   std::shared_ptr<const FabricDirectory> directory,
                   const std::vector<core::RemoteStoreInfo>& collectors)
      : config_(config), topo_(topo), self_ref_(topo->describe(switch_id)),
        directory_(std::move(directory)), rng_(config.seed * 7919 + switch_id) {
    switchsim::DartSwitchPipeline::Config sc;
    sc.dart = config.dart;
    sc.mac = {0x02, 0x5A, 0, 0, static_cast<std::uint8_t>(switch_id >> 8),
              static_cast<std::uint8_t>(switch_id & 0xFF)};
    sc.ip = net::Ipv4Addr::from_octets(
        10, 254, static_cast<std::uint8_t>(switch_id >> 8),
        static_cast<std::uint8_t>(switch_id & 0xFF));
    sc.max_collectors = std::max<std::uint32_t>(config.n_collectors, 1);
    sc.rng_seed = config.seed * 104729 + switch_id;
    sc.write_mode = config.switch_write_mode;
    pipeline_ = std::make_unique<switchsim::DartSwitchPipeline>(sc);
    for (const auto& info : collectors) pipeline_->load_collector(info);
    if (config.postcards) {
      auto det_cfg = config.postcard_detector;
      det_cfg.seed ^= switch_id;  // independent tag hashing per switch
      postcard_detector_ = std::make_unique<ChangeDetector>(det_cfg);
    }
  }

  void receive(net::Packet packet, std::uint64_t now_ns) override;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const switchsim::SwitchCounters& pipeline_counters()
      const noexcept {
    return pipeline_->counters();
  }
  // Mutable pipeline access for the failover control plane (retarget /
  // restore / PSN reset — see WireFabric::retarget_collector).
  [[nodiscard]] switchsim::DartSwitchPipeline& pipeline() noexcept {
    return *pipeline_;
  }

 private:
  [[nodiscard]] std::uint32_t host_id_of(net::Ipv4Addr ip) const noexcept {
    // 10.pod.edge.(2+idx) — inverse of FatTree::host_ip.
    const std::uint32_t pod = (ip.value >> 16) & 0xFF;
    const std::uint32_t edge = (ip.value >> 8) & 0xFF;
    const std::uint32_t idx = (ip.value & 0xFF) - 2;
    const std::uint32_t half = topo_->k() / 2;
    return pod * half * half + edge * half + idx;
  }

  // Hop metadata sampled against the packet's actual egress link: the
  // queue depth is the link's real instantaneous egress queue (non-zero
  // only when links are bandwidth-shaped), as INT-MD specifies.
  [[nodiscard]] IntHopMetadata my_hop_metadata(std::uint64_t now_ns,
                                               net::NodeId egress) noexcept {
    IntHopMetadata hop;
    hop.switch_id = self_ref_.id + 1;  // wire ids are topo id + 1
    hop.queue_depth = sim_->link_queue_depth(self_, egress);
    hop.hop_latency_ns =
        static_cast<std::uint32_t>(config_.link_latency_ns +
                                   rng_.below(500)) +
        static_cast<std::uint32_t>(now_ns % 2);
    return hop;
  }

  // Next-hop switch for a transit packet (hash-based ECMP, mirrors
  // FatTree::path); only valid when this switch is not the destination edge.
  [[nodiscard]] std::uint32_t next_hop_switch(
      const net::ParsedUdpFrame& parsed) const;

  void deliver_reports(std::span<const std::byte> key,
                       std::span<const std::byte> value);

  // Postcard mode: report this switch's hop record for the packet's flow,
  // gated by the change detector on the observed queue depth.
  void maybe_emit_postcard(const net::ParsedUdpFrame& parsed,
                           const IntHopMetadata& hop);

  WireFabricConfig config_;
  const switchsim::FatTree* topo_;
  switchsim::SwitchRef self_ref_;
  std::shared_ptr<const FabricDirectory> directory_;
  Xoshiro256 rng_;
  std::unique_ptr<switchsim::DartSwitchPipeline> pipeline_;
  std::unique_ptr<ChangeDetector> postcard_detector_;
  Stats stats_;
};

void ForwardingSwitch::deliver_reports(std::span<const std::byte> key,
                                       std::span<const std::byte> value) {
  for (auto& frame : pipeline_->on_telemetry(key, value)) {
    ++stats_.reports_emitted;
    const auto parsed = net::parse_udp_frame(frame);
    assert(parsed.has_value());
    // Monitoring underlay: a direct link to each collector.
    for (std::uint32_t c = 0; c < directory_->collector_nodes.size(); ++c) {
      if (net::Ipv4Addr::from_octets(10, 0, 100,
                                     static_cast<std::uint8_t>(c & 0xFF)) ==
          parsed->ip.dst) {
        sim_->send(self_, directory_->collector_nodes[c],
                   net::Packet(std::move(frame)));
        break;
      }
    }
  }
}

void ForwardingSwitch::maybe_emit_postcard(const net::ParsedUdpFrame& parsed,
                                           const IntHopMetadata& hop) {
  // Key the postcard by the flow's ORIGINAL 5-tuple (restore the port the
  // INT shim preserved), so queries use the same key at every hop.
  FiveTuple tuple;
  tuple.src_ip = parsed.ip.src;
  tuple.dst_ip = parsed.ip.dst;
  tuple.src_port = parsed.udp.src_port;
  tuple.dst_port = parsed.udp.dst_port;
  tuple.protocol = parsed.ip.protocol;
  if (parsed.udp.dst_port == kIntUdpPort) {
    if (const auto pkt = int_parse(parsed.payload)) {
      tuple.dst_port = pkt->original_dst_port;
    }
  }

  ++stats_.postcard_observations;
  const auto key = postcard_key(hop.switch_id, tuple);
  if (!postcard_detector_->observe(key, hop.queue_depth, sim_->now_ns())) {
    return;  // suppressed: nothing changed for this (switch, flow)
  }
  ++stats_.postcard_reports;
  const auto record = make_postcard_record(hop.switch_id, tuple, hop,
                                           config_.dart.value_bytes);
  deliver_reports(record.key, record.value);
}

void ForwardingSwitch::receive(net::Packet packet, std::uint64_t now_ns) {
  auto parsed = net::parse_udp_frame(packet.bytes());
  if (!parsed) {
    ++stats_.routing_drops;
    return;
  }
  ++stats_.forwarded;

  const bool is_int = parsed->udp.dst_port == kIntUdpPort;
  const std::uint32_t dst_host = host_id_of(parsed->ip.dst);
  const bool i_am_dst_edge = self_ref_.tier == switchsim::SwitchTier::kEdge &&
                             topo_->host_edge(dst_host) == self_ref_.id;

  // The packet's egress (needed up front: hop metadata samples the real
  // queue depth of the link it is about to cross).
  const net::NodeId egress =
      i_am_dst_edge ? directory_->host_nodes[dst_host]
                    : directory_->switch_nodes[next_hop_switch(*parsed)];

  // --- INT source: first edge switch on the path encapsulates -------------
  if (!is_int && self_ref_.tier == switchsim::SwitchTier::kEdge) {
    IntMdHeader md;
    md.remaining_hops = config_.int_max_hops;
    md.instructions = config_.int_instructions;
    md.hop_words = int_hop_words(md.instructions);
    auto payload = int_source_encap(md, parsed->udp.dst_port, parsed->payload);
    (void)int_transit_push(payload, my_hop_metadata(now_ns, egress));
    ++stats_.int_sources;
    auto frame = rebuild_frame(*parsed, payload, kIntUdpPort);
    packet.assign(std::move(frame));
    parsed = net::parse_udp_frame(packet.bytes());
    assert(parsed.has_value());
  } else if (is_int && !i_am_dst_edge) {
    // --- INT transit: push my metadata ------------------------------------
    std::vector<std::byte> payload(parsed->payload.begin(),
                                   parsed->payload.end());
    (void)int_transit_push(payload, my_hop_metadata(now_ns, egress));
    auto frame = rebuild_frame(*parsed, payload, kIntUdpPort);
    packet.assign(std::move(frame));
    parsed = net::parse_udp_frame(packet.bytes());
    assert(parsed.has_value());
  }

  // --- Postcards (Table 1 row 2): every switch may report its own hop ----
  if (postcard_detector_) {
    maybe_emit_postcard(*parsed, my_hop_metadata(now_ns, egress));
  }

  // --- INT sink: strip, deliver, report ------------------------------------
  if (i_am_dst_edge) {
    std::vector<std::byte> payload(parsed->payload.begin(),
                                   parsed->payload.end());
    if (parsed->udp.dst_port == kIntUdpPort) {
      // If we are also a transit (not the source of this packet), our hop
      // was pushed above only when !i_am_dst_edge; push it now unless we
      // were the source (source already pushed).
      const auto pre = int_parse(payload);
      if (pre && (pre->hops.empty() ||
                  pre->hops.back().switch_id != self_ref_.id + 1)) {
        (void)int_transit_push(payload, my_hop_metadata(now_ns, egress));
      }
      const auto pkt = int_parse(payload);
      if (pkt) {
        ++stats_.int_sinks;
        stats_.int_overhead_bytes += payload.size() - pkt->inner_payload.size();
        for (const auto& hop : pkt->hops) {
          stats_.max_reported_queue_depth =
              std::max(stats_.max_reported_queue_depth, hop.queue_depth);
        }

        // DART report: key = original 5-tuple, value = path switch ids.
        FiveTuple tuple;
        tuple.src_ip = parsed->ip.src;
        tuple.dst_ip = parsed->ip.dst;
        tuple.src_port = parsed->udp.src_port;
        tuple.dst_port = pkt->original_dst_port;
        tuple.protocol = parsed->ip.protocol;
        IntStack stack(IntInstruction::kSwitchId, config_.int_max_hops);
        for (const auto& hop : pkt->hops) (void)stack.push_hop(hop);
        if (const auto value = stack.encode_value(config_.dart.value_bytes)) {
          const auto key = tuple.key_bytes();
          deliver_reports(key, *value);
        }

        // Restore and deliver the inner frame to the host.
        const auto inner = int_sink_decap(payload);
        auto frame = rebuild_frame(*parsed, *inner, pkt->original_dst_port);
        sim_->send(self_, directory_->host_nodes[dst_host],
                   net::Packet(std::move(frame)));
        return;
      }
    }
    // Non-INT packet for a local host: plain delivery.
    sim_->send(self_, directory_->host_nodes[dst_host], std::move(packet));
    return;
  }

  // --- Forwarding (hash-based ECMP, mirrors FatTree::path) -----------------
  sim_->send(self_, egress, std::move(packet));
}

std::uint32_t ForwardingSwitch::next_hop_switch(
    const net::ParsedUdpFrame& parsed) const {
  const std::uint32_t half = topo_->k() / 2;
  const std::uint64_t hash = flow_hash_of(parsed);
  const std::uint32_t dst_host = host_id_of(parsed.ip.dst);
  const std::uint32_t dst_pod = topo_->host_pod(dst_host);
  const auto agg_choice = static_cast<std::uint32_t>(hash % half);

  switch (self_ref_.tier) {
    case switchsim::SwitchTier::kEdge:
      return topo_->agg_id(self_ref_.pod, agg_choice);
    case switchsim::SwitchTier::kAggregation:
      if (dst_pod == self_ref_.pod) {
        return topo_->host_edge(dst_host);
      } else {
        const auto core_choice =
            static_cast<std::uint32_t>((hash / half) % half);
        return topo_->core_id(self_ref_.index * half + core_choice);
      }
    case switchsim::SwitchTier::kCore:
      return topo_->agg_id(dst_pod, self_ref_.index / half);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// WireFabric
// ---------------------------------------------------------------------------

WireFabric::WireFabric(const WireFabricConfig& config)
    : config_(config), topo_(config.fat_tree_k), sim_(config.seed) {
  cluster_ = std::make_unique<core::CollectorCluster>(
      config.dart, config.n_collectors);
  directory_ = std::make_shared<FabricDirectory>();
  if (config.dart.selection == core::CollectorSelection::kRing) {
    // Fabric-wide live selector for the query plane, capacity = fleet size —
    // the SAME capacity every switch pipeline uses (max_collectors below),
    // which is what makes their independent ring replicas agree. Starts at
    // full membership: bring-up loads every collector.
    selector_ = std::make_unique<core::CollectorSelector>(
        config.dart, std::max<std::uint32_t>(config.n_collectors, 1));
  }

  // Collector RNICs join the simulator directly.
  for (std::uint32_t c = 0; c < cluster_->size(); ++c) {
    directory_->collector_nodes.push_back(
        sim_.add_node(cluster_->collector(c).rnic()));
  }
  // Switches.
  for (std::uint32_t s = 0; s < topo_.n_switches(); ++s) {
    switches_.push_back(std::make_unique<ForwardingSwitch>(
        config, &topo_, s, directory_, cluster_->directory()));
    directory_->switch_nodes.push_back(sim_.add_node(*switches_.back()));
  }
  // Hosts.
  for (std::uint32_t h = 0; h < topo_.n_hosts(); ++h) {
    hosts_.push_back(std::make_unique<HostNode>(h, topo_.host_ip(h),
                                                directory_, &topo_));
    directory_->host_nodes.push_back(sim_.add_node(*hosts_.back()));
  }

  const std::uint64_t lat = config.link_latency_ns;
  // Data links: host↔edge, edge↔agg (full bipartite per pod), agg↔core —
  // each direction optionally bandwidth-shaped.
  auto connect_shaped = [&](net::NodeId a, net::NodeId b) {
    sim_.add_link(a, b, lat, nullptr, config.data_link_shape);
    sim_.add_link(b, a, lat, nullptr, config.data_link_shape);
  };
  for (std::uint32_t h = 0; h < topo_.n_hosts(); ++h) {
    connect_shaped(directory_->host_nodes[h],
                   directory_->switch_nodes[topo_.host_edge(h)]);
  }
  const std::uint32_t half = topo_.k() / 2;
  for (std::uint32_t pod = 0; pod < topo_.n_pods(); ++pod) {
    for (std::uint32_t e = 0; e < half; ++e) {
      for (std::uint32_t a = 0; a < half; ++a) {
        connect_shaped(directory_->switch_nodes[topo_.edge_id(pod, e)],
                       directory_->switch_nodes[topo_.agg_id(pod, a)]);
      }
    }
    for (std::uint32_t a = 0; a < half; ++a) {
      for (std::uint32_t c = 0; c < half; ++c) {
        connect_shaped(directory_->switch_nodes[topo_.agg_id(pod, a)],
                       directory_->switch_nodes[topo_.core_id(a * half + c)]);
      }
    }
  }
  // Monitoring underlay: every switch → every collector, with report loss.
  // Link ids are kept so register_metrics can export the underlay's
  // delivered/dropped totals as their own link set (the loss term of the
  // reports-emitted == frames-received + dropped conservation invariant).
  for (std::uint32_t s = 0; s < topo_.n_switches(); ++s) {
    for (std::uint32_t c = 0; c < cluster_->size(); ++c) {
      monitoring_links_.push_back(sim_.add_link(
          directory_->switch_nodes[s], directory_->collector_nodes[c], 5 * lat,
          config.report_loss_rate > 0.0
              ? std::unique_ptr<net::LossModel>(
                    std::make_unique<net::BernoulliLoss>(
                        config.report_loss_rate))
              : std::unique_ptr<net::LossModel>(
                    std::make_unique<net::NoLoss>())));
    }
  }
}

void WireFabric::register_metrics(obs::MetricRegistry& registry,
                                  const std::string& prefix) {
  // Per-switch pipeline counters (the existing SwitchCounters struct) plus
  // fabric-wide sums, which are what the conservation tests compare against.
  for (std::uint32_t s = 0; s < switches_.size(); ++s) {
    obs::register_switch_counters(registry,
                                  prefix + "_switch" + std::to_string(s),
                                  switches_[s]->pipeline_counters());
  }
  registry.counter_fn(prefix + "_switches_reports_emitted_total",
                      [this] {
                        std::uint64_t n = 0;
                        for (const auto& sw : switches_) {
                          n += sw->stats().reports_emitted;
                        }
                        return n;
                      },
                      "report frames sent toward collectors, all switches");
  registry.counter_fn(prefix + "_switches_telemetry_events_total",
                      [this] {
                        std::uint64_t n = 0;
                        for (const auto& sw : switches_) {
                          n += sw->pipeline_counters().telemetry_events;
                        }
                        return n;
                      },
                      "on_telemetry() invocations, all switches");
  registry.counter_fn(prefix + "_switches_routing_drops_total",
                      [this] {
                        std::uint64_t n = 0;
                        for (const auto& sw : switches_) {
                          n += sw->stats().routing_drops;
                        }
                        return n;
                      },
                      "unparsable frames dropped by switches");
  registry.counter_fn(prefix + "_hosts_packets_sent_total",
                      [this] {
                        std::uint64_t n = 0;
                        for (const auto& h : hosts_) n += h->sent();
                        return n;
                      },
                      "UDP packets injected by hosts");
  registry.counter_fn(prefix + "_hosts_packets_received_total",
                      [this] {
                        std::uint64_t n = 0;
                        for (const auto& h : hosts_) n += h->received();
                        return n;
                      },
                      "inner frames delivered to hosts");

  for (std::uint32_t c = 0; c < cluster_->size(); ++c) {
    const std::string cp = prefix + "_collector" + std::to_string(c);
    obs::register_rnic_counters(registry, cp,
                                cluster_->collector(c).rnic().counters());
    obs::register_qp_counters(registry, cp,
                              cluster_->collector(c).rnic().qps());
  }

  obs::register_simulator(registry, prefix, sim_);
  obs::register_link_set(registry, prefix + "_monitoring", sim_,
                         monitoring_links_);

  // Query plane, when attach_operator has already been called.
  for (std::uint32_t c = 0; c < query_services_.size(); ++c) {
    query_services_[c]->bind_metrics(registry,
                                     prefix + "_collector" + std::to_string(c));
  }
  if (operator_) operator_->bind_metrics(registry, prefix);
  if (gateway_) gateway_->bind_metrics(registry, prefix);
  // The gateway-fronted operator gets its own namespace so its counters
  // never collide with the plain operator's.
  if (gateway_operator_) gateway_operator_->bind_metrics(registry, prefix + "_gw");
}

WireFabric::~WireFabric() = default;

std::uint32_t WireFabric::n_collectors() const noexcept {
  return cluster_->size();
}

std::uint32_t WireFabric::n_switches() const noexcept {
  return static_cast<std::uint32_t>(switches_.size());
}

net::LinkId WireFabric::monitoring_link(std::uint32_t s,
                                        std::uint32_t c) const {
  // Creation order in the constructor: for each switch, one link per
  // collector.
  return monitoring_links_[s * cluster_->size() + c];
}

core::QueryServiceNode* WireFabric::query_service(std::uint32_t c) noexcept {
  return c < query_services_.size() ? query_services_[c].get() : nullptr;
}

core::OperatorClient* WireFabric::operator_client() noexcept {
  return operator_.get();
}

void WireFabric::retarget_collector(std::uint32_t dead, std::uint32_t backup) {
  // The backup terminates the adopted stream on a dedicated QP at the dead
  // stream's well-known QPN — fresh PSN window, no interleaving with the
  // backup's own report stream.
  (void)cluster_->collector(backup).adopt_takeover_qp(dead);
  core::RemoteStoreInfo info = cluster_->collector(backup).remote_info();
  info.qpn = core::Collector::qpn_for(dead);
  for (auto& sw : switches_) sw->pipeline().retarget_collector(dead, info);
}

void WireFabric::restore_collector(std::uint32_t c) {
  cluster_->collector(c).reconnect_report_qp();
  const core::RemoteStoreInfo info = cluster_->collector(c).remote_info();
  for (auto& sw : switches_) sw->pipeline().restore_collector(info);
}

void WireFabric::reconnect_collector_qp(std::uint32_t c) {
  cluster_->collector(c).reconnect_report_qp();
  for (auto& sw : switches_) sw->pipeline().reset_psn(c);
}

switchsim::DartSwitchPipeline& WireFabric::switch_pipeline(std::uint32_t s) {
  return switches_[s]->pipeline();
}

void WireFabric::ring_remove_member(std::uint32_t c) {
  if (!selector_) return;
  selector_->remove_member(c);
  for (auto& sw : switches_) sw->pipeline().remove_member(c);
  // Cached answers for keys routed at `c` are now answered by survivors;
  // the stale copies must not be served under the new route.
  if (gateway_) (void)gateway_->cache().invalidate_collector(c);
}

void WireFabric::ring_add_member(std::uint32_t c) {
  if (!selector_) return;
  selector_->add_member(c);
  for (auto& sw : switches_) sw->pipeline().add_member(c);
  // Entries cached under `c` predate its death — drop them rather than let
  // the failback serve pre-death data as fresh.
  if (gateway_) (void)gateway_->cache().invalidate_collector(c);
}

core::OperatorClient& WireFabric::attach_operator(std::uint64_t mgmt_latency_ns) {
  if (operator_) return *operator_;

  operator_crafter_ = std::make_unique<core::ReportCrafter>(config_.dart);
  mgmt_arp_ =
      std::make_shared<std::vector<std::pair<net::Ipv4Addr, net::NodeId>>>();
  auto arp = mgmt_arp_;  // shared with the resolver closures
  auto resolver = [arp](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : *arp) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };

  std::vector<net::Ipv4Addr> service_ips;
  for (std::uint32_t c = 0; c < cluster_->size(); ++c) {
    const auto ip = net::Ipv4Addr::from_octets(10, 0, 200,
                                               static_cast<std::uint8_t>(c));
    service_ips.push_back(ip);
    query_services_.push_back(std::make_unique<core::QueryServiceNode>(
        cluster_->collector(c), ip, resolver));
    // Ownership hash for takeover marking: a served key whose hashed owner
    // is under takeover gets the degraded flag (docs/FAULTS.md).
    query_services_.back()->set_deployment(&cluster_->crafter(),
                                           cluster_->size());
    // Ring deployments key takeover marking by the ring's home mapping.
    if (selector_) query_services_.back()->set_selector(selector_.get());
  }
  const auto operator_ip = net::Ipv4Addr::from_octets(10, 9, 9, 9);
  operator_ = std::make_unique<core::OperatorClient>(
      *operator_crafter_, operator_ip, service_ips, resolver);
  if (selector_) operator_->set_selector(selector_.get());

  const auto op_node = sim_.add_node(*operator_);
  arp->emplace_back(operator_ip, op_node);
  for (std::uint32_t c = 0; c < query_services_.size(); ++c) {
    const auto node = sim_.add_node(*query_services_[c]);
    arp->emplace_back(service_ips[c], node);
    sim_.connect(op_node, node, mgmt_latency_ns);
  }
  return *operator_;
}

query::QueryGateway& WireFabric::attach_gateway(std::uint64_t mgmt_latency_ns) {
  if (gateway_) return *gateway_;
  (void)attach_operator(mgmt_latency_ns);  // services + ARP + crafter

  auto arp = mgmt_arp_;
  auto resolver = [arp](net::Ipv4Addr ip) -> std::optional<net::NodeId> {
    for (const auto& [addr, node] : *arp) {
      if (addr == ip) return node;
    }
    return std::nullopt;
  };

  query::QueryGatewayConfig gw_config;
  gw_config.gateway_ip = net::Ipv4Addr::from_octets(10, 9, 2, 254);
  for (std::uint32_t c = 0; c < cluster_->size(); ++c) {
    gw_config.virtual_ips.push_back(
        net::Ipv4Addr::from_octets(10, 9, 2, static_cast<std::uint8_t>(c)));
    gw_config.service_ips.push_back(query_services_[c]->ip());
  }
  // Per-try upstream deadline: comfortably above one management RTT so a
  // healthy service never races its own retry, small enough that a dead one
  // fails fast.
  gw_config.request_timeout_ns = 8 * mgmt_latency_ns + 1'000'000;
  gateway_ = std::make_unique<query::QueryGateway>(
      gw_config, *operator_crafter_, resolver);
  if (selector_) gateway_->set_selector(selector_.get());

  const auto gw_node = sim_.add_node(*gateway_);
  arp->emplace_back(gw_config.gateway_ip, gw_node);
  for (std::uint32_t c = 0; c < cluster_->size(); ++c) {
    arp->emplace_back(gw_config.virtual_ips[c], gw_node);
  }
  // Gateway ↔ every service, and gateway ↔ the plain operator (so the
  // existing operator can subscribe to standing queries directly).
  for (std::uint32_t c = 0; c < query_services_.size(); ++c) {
    sim_.connect(gw_node, sim_node_of(query_services_[c]->ip()), mgmt_latency_ns);
  }
  sim_.connect(gw_node, sim_node_of(operator_->ip()), mgmt_latency_ns);

  // Gateway-fronted operator: same client code, but its "services" are the
  // gateway's virtual IPs — all traffic rides the gateway transparently.
  const auto gw_operator_ip = net::Ipv4Addr::from_octets(10, 9, 9, 10);
  gateway_operator_ = std::make_unique<core::OperatorClient>(
      *operator_crafter_, gw_operator_ip, gw_config.virtual_ips, resolver);
  if (selector_) gateway_operator_->set_selector(selector_.get());
  const auto gw_op_node = sim_.add_node(*gateway_operator_);
  arp->emplace_back(gw_operator_ip, gw_op_node);
  sim_.connect(gw_op_node, gw_node, mgmt_latency_ns);
  return *gateway_;
}

net::NodeId WireFabric::sim_node_of(net::Ipv4Addr ip) const {
  for (const auto& [addr, node] : *mgmt_arp_) {
    if (addr == ip) return node;
  }
  return net::kInvalidNode;
}

void WireFabric::send_flow(const FiveTuple& flow, std::uint32_t src_host,
                           std::uint32_t count, std::size_t payload_bytes) {
  std::vector<std::byte> payload(payload_bytes, std::byte{0x5A});
  for (std::uint32_t i = 0; i < count; ++i) {
    hosts_[src_host]->send_udp(flow, payload);
  }
}

std::optional<std::vector<std::uint32_t>> WireFabric::query_path(
    const FiveTuple& flow) const {
  const auto key = flow.key_bytes();
  const auto result = cluster_->query(key);
  if (result.outcome != core::QueryOutcome::kFound) return std::nullopt;
  auto ids = IntStack::decode_switch_ids(result.value);
  for (auto& id : ids) id -= 1;  // wire id → topo id
  return ids;
}

std::optional<IntHopMetadata> WireFabric::query_postcard(
    std::uint32_t switch_id, const FiveTuple& flow) const {
  const auto key = postcard_key(switch_id + 1, flow);  // wire id = topo id + 1
  const auto result = cluster_->query(key);
  if (result.outcome != core::QueryOutcome::kFound) return std::nullopt;
  if (result.value.size() < 12) return std::nullopt;
  auto be32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v = (v << 8) | static_cast<std::uint8_t>(
                         result.value[off + static_cast<std::size_t>(i)]);
    }
    return v;
  };
  IntHopMetadata hop;
  hop.switch_id = be32(0);
  hop.queue_depth = be32(4);
  hop.hop_latency_ns = be32(8);
  return hop;
}

std::uint64_t WireFabric::host_received(std::uint32_t host) const {
  return hosts_[host]->received();
}

std::optional<std::uint32_t> WireFabric::host_of_ip(net::Ipv4Addr ip) const {
  for (std::uint32_t h = 0; h < topo_.n_hosts(); ++h) {
    if (topo_.host_ip(h) == ip) return h;
  }
  return std::nullopt;
}

WireFabricStats WireFabric::stats() const {
  WireFabricStats s;
  for (const auto& host : hosts_) {
    s.host_packets_sent += host->sent();
    s.host_packets_received += host->received();
  }
  for (const auto& sw : switches_) {
    s.switch_hops += sw->stats().forwarded;
    s.int_sources += sw->stats().int_sources;
    s.int_sinks += sw->stats().int_sinks;
    s.int_overhead_bytes += sw->stats().int_overhead_bytes;
    s.reports_emitted += sw->stats().reports_emitted;
    s.max_reported_queue_depth = std::max(
        s.max_reported_queue_depth, sw->stats().max_reported_queue_depth);
    s.postcard_observations += sw->stats().postcard_observations;
    s.postcard_reports += sw->stats().postcard_reports;
  }
  return s;
}

}  // namespace dart::telemetry
