// k-ary fat-tree topology (Al-Fahad-style 3-tier Clos) — the fabric of the
// paper's running example: "INT path tracing carried on a 5-hop fat-tree
// topology" (§1, §5.2). An inter-pod flow traverses exactly 5 switches
// (edge → aggregation → core → aggregation → edge), which is where Fig. 4's
// 160-bit value (5 hops × 32-bit switch id) comes from.
//
// The topology computes deterministic ECMP paths from a flow hash, exposes
// host addressing, and reports its own dimensions; the INT fabric in
// src/telemetry walks these paths to synthesize hop-by-hop telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/headers.hpp"

namespace dart::switchsim {

enum class SwitchTier : std::uint8_t { kEdge, kAggregation, kCore };

struct SwitchRef {
  std::uint32_t id = 0;  // globally unique switch id
  SwitchTier tier = SwitchTier::kEdge;
  std::uint32_t pod = 0;       // meaningless for core switches
  std::uint32_t index = 0;     // index within tier (and pod, if applicable)
};

class FatTree {
 public:
  // `k` must be even and ≥ 2. Dimensions of a k-ary fat tree:
  //   pods = k; per pod: k/2 edge + k/2 aggregation switches;
  //   core = (k/2)^2; hosts = k^3/4 (k/2 per edge switch).
  explicit FatTree(std::uint32_t k);

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t n_pods() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t n_core() const noexcept { return half_ * half_; }
  [[nodiscard]] std::uint32_t n_edge() const noexcept { return k_ * half_; }
  [[nodiscard]] std::uint32_t n_aggregation() const noexcept { return k_ * half_; }
  [[nodiscard]] std::uint32_t n_switches() const noexcept {
    return n_core() + n_edge() + n_aggregation();
  }
  [[nodiscard]] std::uint32_t n_hosts() const noexcept {
    return n_edge() * half_;
  }

  // --- switch id scheme ----------------------------------------------------
  // ids: [0, n_edge) edge, [n_edge, n_edge+n_agg) aggregation, then core.
  [[nodiscard]] std::uint32_t edge_id(std::uint32_t pod,
                                      std::uint32_t index) const noexcept;
  [[nodiscard]] std::uint32_t agg_id(std::uint32_t pod,
                                     std::uint32_t index) const noexcept;
  [[nodiscard]] std::uint32_t core_id(std::uint32_t index) const noexcept;
  [[nodiscard]] SwitchRef describe(std::uint32_t switch_id) const;
  [[nodiscard]] std::string switch_name(std::uint32_t switch_id) const;

  // --- host addressing -----------------------------------------------------
  [[nodiscard]] std::uint32_t host_pod(std::uint32_t host) const noexcept;
  [[nodiscard]] std::uint32_t host_edge(std::uint32_t host) const noexcept;
  // 10.pod.edge.(2+index) — the classic fat-tree addressing scheme.
  [[nodiscard]] net::Ipv4Addr host_ip(std::uint32_t host) const noexcept;

  // --- routing -------------------------------------------------------------

  // The switch-id sequence an (src→dst) flow traverses, with ECMP choices
  // made deterministically from `flow_hash` (hash-based ECMP, so one flow
  // always takes one path). Lengths: 1 (same edge), 3 (same pod),
  // 5 (inter-pod).
  [[nodiscard]] std::vector<std::uint32_t> path(std::uint32_t src_host,
                                                std::uint32_t dst_host,
                                                std::uint64_t flow_hash) const;

  // All minimal paths between two hosts (for path-count invariants in tests).
  [[nodiscard]] std::size_t ecmp_path_count(std::uint32_t src_host,
                                            std::uint32_t dst_host) const noexcept;

 private:
  std::uint32_t k_;
  std::uint32_t half_;
};

}  // namespace dart::switchsim
