// RegisterArray — the stateful ALU/SRAM register extern of a P4 switch.
//
// Tofino register arrays are fixed-size at compile time, support one
// read-modify-write per pipeline pass, and cannot be dynamically allocated —
// the resource constraint that rules out per-key switch state and motivates
// DART's stateless hashing (§3.1). The model enforces the fixed size and
// exposes the same RMW idiom; the DART pipeline uses one such array for its
// per-collector RoCEv2 PSN counters (§6).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace dart::switchsim {

template <typename T>
class RegisterArray {
 public:
  explicit RegisterArray(std::size_t size, T initial = T{})
      : cells_(size, initial) {}

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  [[nodiscard]] T read(std::size_t index) const noexcept {
    assert(index < cells_.size());
    return cells_[index];
  }

  void write(std::size_t index, T value) noexcept {
    assert(index < cells_.size());
    cells_[index] = value;
  }

  // One-pass read-modify-write, the only stateful primitive the hardware
  // offers. Returns the value *before* modification (like a Tofino
  // RegisterAction that outputs the old value).
  template <typename F>
  T rmw(std::size_t index, F&& modify) noexcept {
    assert(index < cells_.size());
    const T old = cells_[index];
    cells_[index] = modify(old);
    return old;
  }

  // Approximate SRAM footprint of this array (bytes).
  [[nodiscard]] std::size_t sram_bytes() const noexcept {
    return cells_.size() * sizeof(T);
  }

 private:
  std::vector<T> cells_;
};

}  // namespace dart::switchsim
