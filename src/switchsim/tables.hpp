// Exact-match match-action tables — the control-plane-populated lookup
// structures of a P4 pipeline.
//
// The DART program has one table that matters: the *collector lookup table*
// (§3.1/§6), mapping a hashed collector id to the RDMA essentials needed to
// deparse a RoCEv2 report. Its action data is deliberately small — the paper
// reports ~20 bytes of SRAM per collector, which is what lets one switch
// address tens of thousands of collectors; sram_bytes() reproduces that
// accounting so tests can assert it.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace dart::switchsim {

template <typename Key, typename ActionData>
class ExactTable {
 public:
  // Control-plane insert/overwrite.
  void insert(Key key, ActionData data) { entries_[key] = data; }
  void remove(Key key) { entries_.erase(key); }

  // Data-plane lookup: hit returns action data, miss returns nullopt (the
  // P4 default action).
  [[nodiscard]] std::optional<ActionData> lookup(const Key& key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  // Approximate SRAM cost: key + action data per entry.
  [[nodiscard]] std::size_t sram_bytes() const noexcept {
    return entries_.size() * (sizeof(Key) + sizeof(ActionData));
  }

 private:
  std::unordered_map<Key, ActionData> entries_;
};

}  // namespace dart::switchsim
