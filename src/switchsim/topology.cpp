#include "switchsim/topology.hpp"

#include <cassert>
#include <cstdio>

namespace dart::switchsim {

FatTree::FatTree(std::uint32_t k) : k_(k), half_(k / 2) {
  assert(k >= 2 && k % 2 == 0);
}

std::uint32_t FatTree::edge_id(std::uint32_t pod,
                               std::uint32_t index) const noexcept {
  return pod * half_ + index;
}

std::uint32_t FatTree::agg_id(std::uint32_t pod,
                              std::uint32_t index) const noexcept {
  return n_edge() + pod * half_ + index;
}

std::uint32_t FatTree::core_id(std::uint32_t index) const noexcept {
  return n_edge() + n_aggregation() + index;
}

SwitchRef FatTree::describe(std::uint32_t switch_id) const {
  SwitchRef ref;
  ref.id = switch_id;
  if (switch_id < n_edge()) {
    ref.tier = SwitchTier::kEdge;
    ref.pod = switch_id / half_;
    ref.index = switch_id % half_;
  } else if (switch_id < n_edge() + n_aggregation()) {
    const std::uint32_t local = switch_id - n_edge();
    ref.tier = SwitchTier::kAggregation;
    ref.pod = local / half_;
    ref.index = local % half_;
  } else {
    ref.tier = SwitchTier::kCore;
    ref.pod = 0;
    ref.index = switch_id - n_edge() - n_aggregation();
  }
  return ref;
}

std::string FatTree::switch_name(std::uint32_t switch_id) const {
  const SwitchRef ref = describe(switch_id);
  char buf[32];
  switch (ref.tier) {
    case SwitchTier::kEdge:
      std::snprintf(buf, sizeof(buf), "edge-p%u-%u", ref.pod, ref.index);
      break;
    case SwitchTier::kAggregation:
      std::snprintf(buf, sizeof(buf), "agg-p%u-%u", ref.pod, ref.index);
      break;
    case SwitchTier::kCore:
      std::snprintf(buf, sizeof(buf), "core-%u", ref.index);
      break;
  }
  return buf;
}

std::uint32_t FatTree::host_pod(std::uint32_t host) const noexcept {
  // hosts per pod = (k/2 edges) * (k/2 hosts per edge)
  return host / (half_ * half_);
}

std::uint32_t FatTree::host_edge(std::uint32_t host) const noexcept {
  const std::uint32_t pod = host_pod(host);
  const std::uint32_t in_pod = host - pod * half_ * half_;
  return edge_id(pod, in_pod / half_);
}

net::Ipv4Addr FatTree::host_ip(std::uint32_t host) const noexcept {
  const std::uint32_t pod = host_pod(host);
  const std::uint32_t in_pod = host - pod * half_ * half_;
  const std::uint32_t edge = in_pod / half_;
  const std::uint32_t idx = in_pod % half_;
  return net::Ipv4Addr::from_octets(10, static_cast<std::uint8_t>(pod),
                                    static_cast<std::uint8_t>(edge),
                                    static_cast<std::uint8_t>(2 + idx));
}

std::vector<std::uint32_t> FatTree::path(std::uint32_t src_host,
                                         std::uint32_t dst_host,
                                         std::uint64_t flow_hash) const {
  assert(src_host < n_hosts() && dst_host < n_hosts());
  const std::uint32_t src_edge = host_edge(src_host);
  const std::uint32_t dst_edge = host_edge(dst_host);

  if (src_edge == dst_edge) {
    return {src_edge};  // intra-rack: one hop through the ToR
  }

  const std::uint32_t src_pod = host_pod(src_host);
  const std::uint32_t dst_pod = host_pod(dst_host);

  // Hash-based ECMP: the aggregation uplink choice within the pod and the
  // core choice above it are both derived from the (stable) flow hash.
  const auto agg_choice = static_cast<std::uint32_t>(flow_hash % half_);

  if (src_pod == dst_pod) {
    return {src_edge, agg_id(src_pod, agg_choice), dst_edge};
  }

  // Inter-pod (the paper's 5-hop case): aggregation switch `a` in a pod
  // connects to cores [a*half, (a+1)*half); pick one by hash.
  const auto core_choice = static_cast<std::uint32_t>((flow_hash / half_) % half_);
  const std::uint32_t core = core_id(agg_choice * half_ + core_choice);
  // The downstream aggregation switch is determined by the chosen core: core
  // c connects to aggregation switch index c/half in every pod.
  const std::uint32_t dst_agg_index = agg_choice;  // same row of the core grid
  return {src_edge, agg_id(src_pod, agg_choice), core,
          agg_id(dst_pod, dst_agg_index), dst_edge};
}

std::size_t FatTree::ecmp_path_count(std::uint32_t src_host,
                                     std::uint32_t dst_host) const noexcept {
  const std::uint32_t src_edge = host_edge(src_host);
  const std::uint32_t dst_edge = host_edge(dst_host);
  if (src_edge == dst_edge) return 1;
  if (host_pod(src_host) == host_pod(dst_host)) return half_;
  return static_cast<std::size_t>(half_) * half_;  // (k/2)^2 core paths
}

}  // namespace dart::switchsim
