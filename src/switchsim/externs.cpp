#include "switchsim/externs.hpp"

#include <algorithm>

namespace dart::switchsim {

void MirrorExtern::configure(Session session) {
  const auto it = std::find_if(
      sessions_.begin(), sessions_.end(),
      [&](const Session& s) { return s.id == session.id; });
  if (it != sessions_.end()) {
    *it = session;
  } else {
    sessions_.push_back(session);
  }
}

net::Packet MirrorExtern::clone(const net::Packet& original,
                                std::uint32_t session_id) const {
  const auto it = std::find_if(
      sessions_.begin(), sessions_.end(),
      [&](const Session& s) { return s.id == session_id; });
  if (it == sessions_.end()) return net::Packet{};

  net::Packet copy = original.clone();
  copy.truncate(it->truncate_len);
  copy.meta().is_mirror_clone = true;
  copy.meta().mirror_session = session_id;
  ++clones_;
  return copy;
}

}  // namespace dart::switchsim
