// DartSwitchPipeline — the switch component of DART (§6), modeled after the
// ~1K-line P4_16 Tofino program plus its Python control plane.
//
// Data plane, per telemetry report (the paper's egress pipeline):
//   1. an I2E mirror clone carrying (key, raw telemetry data) enters egress;
//   2. the native RNG picks n ∈ [0, N) — which of the key's N slots this
//      report fills (the RDMA standard allows one memory write per packet,
//      so redundancy comes from multiple reports, §3.1);
//   3. the hash engine maps (n, key) → collector id and memory address;
//   4. the collector lookup table (match-action, control-plane-populated)
//      turns the collector id into RoCEv2 essentials (MAC/IP/QPN/rkey/base);
//   5. a register array holds per-collector PSN counters; the pass
//      increments one;
//   6. the deparser emits UDP/4791 + BTH + RETH + [checksum ‖ value] + iCRC.
//
// Control plane: load_collector() rows and pipeline_config(), mirroring the
// 150 lines of Python. sram_bytes_per_collector() reproduces the paper's
// ~20 B/collector SRAM accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/collector_ring.hpp"
#include "core/config.hpp"
#include "core/report_crafter.hpp"
#include "net/headers.hpp"
#include "switchsim/externs.hpp"
#include "switchsim/registers.hpp"
#include "switchsim/tables.hpp"

namespace dart::switchsim {

// Compact action data of the collector lookup table. This—plus the 3-byte
// PSN register cell—is the entire per-collector switch state.
struct CollectorEntry {
  net::MacAddr mac{};
  std::uint32_t ip = 0;          // host order
  std::uint32_t qpn = 0;         // 24 bits used
  std::uint32_t rkey = 0;
  std::uint64_t base_vaddr = 0;
  std::uint64_t n_slots = 0;
  std::uint32_t slot_bytes = 0;
  // Which op family telemetry reports to this collector become (one extra
  // byte of action data): KV slot WRITEs, or per-row sketch FETCH_ADDs.
  core::StoreBackendKind backend = core::StoreBackendKind::kKv;
};

struct SwitchCounters {
  std::uint64_t telemetry_events = 0;  // on_telemetry() invocations
  std::uint64_t reports_emitted = 0;   // RoCEv2 frames deparsed
  std::uint64_t table_misses = 0;      // hashed collector id not loaded
  std::uint64_t retargets = 0;         // rows re-pointed at a backup
  std::uint64_t restores = 0;          // rows restored to the original owner
  // DTA translator primitives (one frame each; included in reports_emitted).
  std::uint64_t appends_emitted = 0;
  std::uint64_t increments_emitted = 0;
  std::uint64_t postcards_emitted = 0;
  // Sketch-backed collectors: FETCH_ADD frames emitted (rows per telemetry
  // event; included in reports_emitted).
  std::uint64_t sketch_increments_emitted = 0;
};

class DartSwitchPipeline {
 public:
  struct Config {
    core::DartConfig dart;            // deployment-wide DART parameters
    net::MacAddr mac{};               // this switch's report source MAC
    net::Ipv4Addr ip{};               // and source IP
    std::uint32_t max_collectors = 1024;  // PSN register array size
    std::uint64_t rng_seed = 1;
    // kStochastic: one report per event, random n (prototype behaviour).
    // kAllSlots: emit N reports per event, one per slot (the redundant
    // re-report pattern §3.1 describes for filling all N slots).
    core::WriteMode write_mode = core::WriteMode::kStochastic;
    // §7 SmartNIC deployment: emit ONE DTA-multiwrite frame per event that
    // fills all N slots (requires collectors with the extension enabled;
    // write_mode is ignored when set).
    bool use_dta_multiwrite = false;
    // Geometry/seeds of the DTA primitive regions (Append / Key-Increment /
    // Postcarding). Must match the collectors' enable_primitives() config;
    // used only once load_primitives() rows are installed.
    core::DtaPrimitivesConfig primitives{};
    // Geometry/seed of sketch-backed collectors (store_backend.hpp). Must
    // match the SketchBackendConfig those collectors were brought up with;
    // consulted only for rows whose backend is kSketch.
    core::SketchBackendConfig sketch{};
  };

  explicit DartSwitchPipeline(const Config& config);

  // --- control plane -------------------------------------------------------
  void load_collector(const core::RemoteStoreInfo& info);
  void unload_collector(std::uint32_t collector_id) {
    table_.remove(collector_id);
    egress_tpls_.erase(collector_id);
    primitive_rows_.erase(collector_id);
    primitive_tpls_.erase(collector_id);
    if (kv_selector_) kv_selector_->remove_member(collector_id);
    if (prim_selector_) prim_selector_->remove_member(collector_id);
  }
  void clear_collectors() {
    table_ = {};
    egress_tpls_.clear();
    primitive_rows_.clear();
    primitive_tpls_.clear();
    if (kv_selector_) kv_selector_->set_members({});
    if (prim_selector_) prim_selector_->set_members({});
  }
  [[nodiscard]] std::size_t collectors_loaded() const noexcept {
    return table_.size();
  }

  // Installs a collector's DTA primitive region rows (the Append ring,
  // counter-cell array, and postcard group directory) plus their deparser
  // templates. All three rows must share one collector id. Independent of
  // load_collector: a deployment can run primitives-only. Fault coverage:
  // under kModulo the fault plane's retarget_collector covers only the KV
  // table (primitive rows keep pointing at the original owner); under kRing,
  // remove_member() retargets every plane — KV writes, sketch fan-out, and
  // the primitive rows — because selection itself excludes the dead member.
  void load_primitives(const core::RemoteStoreInfo& ring_row,
                       const core::RemoteStoreInfo& counter_row,
                       const core::RemoteStoreInfo& postcard_row);
  [[nodiscard]] std::size_t primitive_collectors_loaded() const noexcept {
    return primitive_rows_.size();
  }

  // Failover control plane (docs/FAULTS.md): re-points the lookup-table row
  // for `dead_id` at the backup collector's RoCEv2 endpoint. The hash
  // mapping key→collector id is untouched (it is stateless and shared with
  // the query plane), so every report that hashes to the dead collector now
  // lands on the backup's store at the address the key would hash to there.
  // The dead row's PSN register resets to 0, matching the fresh PSN the
  // backup's reconnected QP expects (rdma::QueuePair::reconnect).
  void retarget_collector(std::uint32_t dead_id,
                          const core::RemoteStoreInfo& backup);

  // Undo: the recovered collector takes its row (and a fresh PSN) back.
  void restore_collector(const core::RemoteStoreInfo& info);

  // QP drain-and-reconnect support: zeroes the per-collector PSN register so
  // the next report starts the fresh PSN stream the reconnected QP expects
  // (rdma::QueuePair::reconnect). Row and templates are untouched.
  void reset_psn(std::uint32_t collector_id) { psn_regs_.write(collector_id, 0); }

  // --- ring-mode failover (CollectorSelection::kRing only) ------------------
  //
  // Drops/restores a member on BOTH selection planes (KV + primitives)
  // without touching the loaded row, so reports re-route to the survivors
  // the consistent-hash ring picks — minimal movement, all report kinds.
  // The row and templates stay loaded for the eventual failback. No-op
  // under kModulo (that policy fails over by aliasing the dead row via
  // retarget_collector instead).
  void remove_member(std::uint32_t collector_id) {
    if (kv_selector_ && kv_selector_->is_member(collector_id)) {
      kv_selector_->remove_member(collector_id);
    }
    if (prim_selector_ && prim_selector_->is_member(collector_id)) {
      prim_selector_->remove_member(collector_id);
    }
  }
  void add_member(std::uint32_t collector_id) {
    // Re-admit only planes where the row is actually loaded (membership
    // always stays a subset of the loaded rows).
    if (kv_selector_ && table_.lookup(collector_id)) {
      kv_selector_->add_member(collector_id);
    }
    if (prim_selector_ && primitive_rows_.contains(collector_id)) {
      prim_selector_->add_member(collector_id);
    }
  }

  // The KV-plane selector (null unless the deployment runs kRing).
  [[nodiscard]] const core::CollectorSelector* kv_selector() const noexcept {
    return kv_selector_.get();
  }
  [[nodiscard]] const core::CollectorSelector* primitive_selector()
      const noexcept {
    return prim_selector_.get();
  }

  // --- data plane ----------------------------------------------------------

  // Processes one telemetry event (the mirror clone's extracted key+data).
  // Returns the deparsed report frame(s), ready for the wire.
  [[nodiscard]] std::vector<std::vector<std::byte>> on_telemetry(
      std::span<const std::byte> key, std::span<const std::byte> value);

  // One event of a batched ingress burst (see on_telemetry_batch).
  struct TelemetryEvent {
    std::span<const std::byte> key;
    std::span<const std::byte> value;
  };

  // Batched data plane: processes `events` in order and returns all emitted
  // frames. The collector-id hash for each chunk of 8-byte keys runs through
  // the batched hash engine (4 keys per AVX2 kernel step) instead of one
  // scalar XXH64 per event; frames, counters, and the per-collector PSN
  // streams are identical to calling on_telemetry per event.
  [[nodiscard]] std::vector<std::vector<std::byte>> on_telemetry_batch(
      std::span<const TelemetryEvent> events);

  // --- DTA primitive data plane --------------------------------------------
  //
  // One frame per event, or empty on a primitive-table miss. The key hashes
  // to a collector among the primitive rows loaded; PSNs come from the same
  // per-collector register array as on_telemetry.

  // Append: bumps this switch's per-collector tail register (the
  // switch-maintained tail pointer) and emits the WRITE for that sequence
  // number's ring slot.
  [[nodiscard]] std::vector<std::byte> on_append_event(
      std::span<const std::byte> key, std::span<const std::byte> value);

  // Key-Increment: FETCH_ADD of `delta` on the cell owning `key`.
  [[nodiscard]] std::vector<std::byte> on_increment_event(
      std::span<const std::byte> key, std::uint64_t delta);

  // Postcarding: hop `hop`'s INT metadata for `flow_key`'s slot group.
  [[nodiscard]] std::vector<std::byte> on_postcard_event(
      std::span<const std::byte> flow_key, std::uint32_t hop,
      std::span<const std::byte> value);

  // This switch's Append tail for a collector (entries emitted so far).
  [[nodiscard]] std::uint64_t append_tail_of(
      std::uint32_t collector_id) const noexcept {
    return append_tails_.read(collector_id);
  }

  // --- introspection -------------------------------------------------------
  [[nodiscard]] const SwitchCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::uint32_t psn_of(std::uint32_t collector_id) const noexcept {
    return psn_regs_.read(collector_id);
  }

  // Per-collector switch SRAM: lookup-table entry + PSN register cell.
  [[nodiscard]] static constexpr std::size_t sram_bytes_per_collector() noexcept {
    // MAC(6) + IP(4) + QPN(3) + rkey(4) + base vaddr(6 used) + PSN(3) ≈ 26 B
    // of logical state; the paper rounds its Tofino layout to ~20 B. We
    // report the logical field bytes.
    return 6 + 4 + 3 + 4 + 6 + 3;
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  // Deparser fast path: precomputed frame templates per loaded collector,
  // built by the control plane alongside the lookup-table row — the software
  // analogue of a Tofino deparser emitting a fixed header template. Kept in
  // sync with table_ by load/unload/clear.
  struct EgressTemplates {
    core::FrameTemplate write;
    core::FrameTemplate multiwrite;  // only valid() when use_dta_multiwrite
    core::FrameTemplate fetch_add;   // only valid() for sketch-backed rows
  };

  // Primitive region directory rows + their deparser templates, one set per
  // collector with load_primitives() installed.
  struct PrimitiveRows {
    core::RemoteStoreInfo ring;
    core::RemoteStoreInfo counters;
    core::RemoteStoreInfo postcards;
  };
  struct PrimitiveTemplates {
    core::FrameTemplate append;
    core::FrameTemplate increment;  // kFetchAdd against the counter region
    core::FrameTemplate postcard;
  };

  // Collector owning `key` among the loaded primitive rows, or nullptr on a
  // miss (counted). Shared head of the three primitive entry points.
  const PrimitiveRows* primitive_rows_of(std::span<const std::byte> key,
                                         std::uint32_t& collector_id);

  // Shared body of on_telemetry / on_telemetry_batch: emits the frame(s) for
  // one event into `frames`. `precomputed_id` < 0 means "hash the key here";
  // the batch path passes the id it already batch-hashed.
  void emit_telemetry(std::span<const std::byte> key,
                      std::span<const std::byte> value,
                      std::int64_t precomputed_id,
                      std::vector<std::vector<std::byte>>& frames);

  [[nodiscard]] bool ring_mode() const noexcept {
    return kv_selector_ != nullptr;
  }

  Config config_;
  HashEngine hash_engine_;
  // Selection-policy seam: allocated only under CollectorSelection::kRing
  // (kModulo keeps the legacy hash % table_.size() datapath byte-for-byte).
  // Membership mirrors the loaded rows of each plane — the KV/sketch lookup
  // table and the primitive region directory respectively — minus any member
  // dropped by the ring-mode fault plane (remove_member).
  std::unique_ptr<core::CollectorSelector> kv_selector_;
  std::unique_ptr<core::CollectorSelector> prim_selector_;
  RngExtern rng_;
  CrcExtern crc_;
  ExactTable<std::uint32_t, CollectorEntry> table_;
  RegisterArray<std::uint32_t> psn_regs_;
  // The Append tail pointers (§ Append): one 64-bit register per collector,
  // same resource class as the PSN counters. Value = entries emitted; the
  // next entry's 1-based sequence number is tail+1.
  RegisterArray<std::uint64_t> append_tails_;
  core::ReportCrafter crafter_;
  core::ReporterEndpoint self_;
  std::unordered_map<std::uint32_t, EgressTemplates> egress_tpls_;
  std::unordered_map<std::uint32_t, PrimitiveRows> primitive_rows_;
  std::unordered_map<std::uint32_t, PrimitiveTemplates> primitive_tpls_;
  SwitchCounters counters_;
};

}  // namespace dart::switchsim
