// P4 externs used by the DART switch program (§6):
//  - RngExtern: the Tofino-native random number generator that picks which
//    of the N per-key slots this report targets,
//  - CrcExtern: the CRC engine (key checksums, RoCEv2 iCRC),
//  - HashEngine: the hash units that map (n, key) to a collector id and a
//    memory address. The paper's prototype drives these with CRC
//    polynomials; the deployment-configurable engine here is seeded with the
//    same HashFamily the collectors and query clients use — the choice of
//    underlying hash is a deployment parameter, the *statelessness* is the
//    design point.
//  - MirrorExtern: I2E mirroring — clones a packet into the egress pipeline
//    truncated to `truncate_len`, which is how a DART report is born.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.hpp"
#include "common/random.hpp"
#include "net/packet.hpp"

namespace dart::switchsim {

// Tofino-native RNG: uniform n ∈ [0, bound).
class RngExtern {
 public:
  explicit RngExtern(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::uint32_t next(std::uint32_t bound) noexcept {
    return static_cast<std::uint32_t>(rng_.below(bound));
  }

 private:
  Xoshiro256 rng_;
};

// CRC engine: the polynomials Tofino exposes.
class CrcExtern {
 public:
  [[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data) const noexcept {
    return ::dart::crc32(data);
  }
  [[nodiscard]] std::uint16_t crc16(std::span<const std::byte> data) const noexcept {
    return ::dart::crc16_ccitt(data);
  }
};

// Hash units computing the stateless DART mapping; wraps the deployment's
// HashFamily so switch and querier agree bit-for-bit.
class HashEngine {
 public:
  HashEngine(std::uint32_t n_addresses, std::uint64_t master_seed)
      : family_(n_addresses, master_seed) {}

  [[nodiscard]] std::uint32_t collector_id(std::span<const std::byte> key,
                                           std::uint32_t n_collectors) const noexcept {
    return family_.collector_of(key, n_collectors);
  }
  // Batched form over `count` strided keys: out[i] == collector_id(key_i).
  // Rides the AVX2 XXH64 kernel 4 lanes per step for 8-byte keys.
  void collector_ids(const std::byte* keys, std::size_t key_len,
                     std::size_t stride, std::size_t count,
                     std::uint32_t n_collectors,
                     std::uint32_t* out) const noexcept {
    family_.collectors_of(keys, key_len, stride, count, n_collectors, out);
  }
  [[nodiscard]] std::uint64_t slot_index(std::span<const std::byte> key,
                                         std::uint32_t n,
                                         std::uint64_t n_slots) const noexcept {
    return family_.address_of(key, n, n_slots);
  }
  [[nodiscard]] std::uint32_t key_checksum(std::span<const std::byte> key,
                                           std::uint32_t bits) const noexcept {
    return family_.checksum_of(key, bits);
  }
  [[nodiscard]] const HashFamily& family() const noexcept { return family_; }

 private:
  HashFamily family_;
};

// I2E mirror sessions: clone + truncate.
class MirrorExtern {
 public:
  struct Session {
    std::uint32_t id = 0;
    std::size_t truncate_len = 128;
  };

  void configure(Session session);

  // Returns a truncated clone tagged as a mirror packet, or an untagged
  // empty packet if the session does not exist.
  [[nodiscard]] net::Packet clone(const net::Packet& original,
                                  std::uint32_t session_id) const;

  [[nodiscard]] std::uint64_t clones_emitted() const noexcept { return clones_; }

 private:
  std::vector<Session> sessions_;
  mutable std::uint64_t clones_ = 0;
};

}  // namespace dart::switchsim
