#include "switchsim/dart_switch.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

namespace dart::switchsim {

DartSwitchPipeline::DartSwitchPipeline(const Config& config)
    : config_(config),
      hash_engine_(config.dart.n_addresses, config.dart.master_seed),
      rng_(config.rng_seed),
      psn_regs_(config.max_collectors, 0),
      append_tails_(config.max_collectors, 0),
      crafter_(config.dart) {
  self_.mac = config.mac;
  self_.ip = config.ip;
  if (config_.dart.selection == core::CollectorSelection::kRing) {
    // Ring capacity = max_collectors: every replica of this deployment must
    // use the same value or their rings disagree (it feeds the permutation
    // table height). Both selectors start empty; load_collector /
    // load_primitives admit members as their rows install.
    kv_selector_ = std::make_unique<core::CollectorSelector>(
        config_.dart, config_.max_collectors);
    kv_selector_->set_members({});
    prim_selector_ = std::make_unique<core::CollectorSelector>(
        config_.dart, config_.max_collectors);
    prim_selector_->set_members({});
  }
}

void DartSwitchPipeline::load_primitives(
    const core::RemoteStoreInfo& ring_row,
    const core::RemoteStoreInfo& counter_row,
    const core::RemoteStoreInfo& postcard_row) {
  const std::uint32_t id = ring_row.collector_id;
  assert(counter_row.collector_id == id && postcard_row.collector_id == id);

  PrimitiveRows rows;
  rows.ring = ring_row;
  rows.counters = counter_row;
  rows.postcards = postcard_row;
  primitive_rows_[id] = rows;

  PrimitiveTemplates tpls;
  tpls.append =
      crafter_.make_append_template(ring_row, self_, config_.primitives.ring);
  tpls.increment =
      crafter_.make_atomic_template(counter_row, self_, rdma::Opcode::kRcFetchAdd);
  tpls.postcard = crafter_.make_postcard_template(postcard_row, self_,
                                                  config_.primitives.postcards);
  primitive_tpls_[id] = std::move(tpls);
  if (prim_selector_) prim_selector_->add_member(id);
}

void DartSwitchPipeline::load_collector(const core::RemoteStoreInfo& info) {
  CollectorEntry entry;
  entry.mac = info.mac;
  entry.ip = info.ip.value;
  entry.qpn = info.qpn;
  entry.rkey = info.rkey;
  entry.base_vaddr = info.base_vaddr;
  entry.n_slots = info.n_slots;
  entry.slot_bytes = info.slot_bytes;
  entry.backend = info.backend;
  table_.insert(info.collector_id, entry);

  EgressTemplates tpls;
  if (info.backend == core::StoreBackendKind::kSketch) {
    // Sketch rows never see slot WRITEs — every report is a FETCH_ADD fan-
    // out over the rows' cells, so only the atomic template is built.
    tpls.fetch_add =
        crafter_.make_atomic_template(info, self_, rdma::Opcode::kRcFetchAdd);
  } else {
    tpls.write = crafter_.make_write_template(info, self_);
    if (config_.use_dta_multiwrite) {
      tpls.multiwrite = crafter_.make_multiwrite_template(info, self_);
    }
  }
  egress_tpls_[info.collector_id] = std::move(tpls);
  if (kv_selector_) kv_selector_->add_member(info.collector_id);
}

void DartSwitchPipeline::retarget_collector(std::uint32_t dead_id,
                                            const core::RemoteStoreInfo& backup) {
  // The row keeps the dead collector's id (the hash keeps producing it) but
  // carries the backup's endpoint, so load_collector does all the work —
  // including rebuilding the egress frame templates for the new destination.
  core::RemoteStoreInfo aliased = backup;
  aliased.collector_id = dead_id;
  load_collector(aliased);
  psn_regs_.write(dead_id, 0);  // reconnect ⇒ fresh PSN stream
  ++counters_.retargets;
}

void DartSwitchPipeline::restore_collector(const core::RemoteStoreInfo& info) {
  load_collector(info);
  psn_regs_.write(info.collector_id, 0);
  ++counters_.restores;
}

std::vector<std::vector<std::byte>> DartSwitchPipeline::on_telemetry(
    std::span<const std::byte> key, std::span<const std::byte> value) {
  std::vector<std::vector<std::byte>> frames;
  emit_telemetry(key, value, /*precomputed_id=*/-1, frames);
  return frames;
}

std::vector<std::vector<std::byte>> DartSwitchPipeline::on_telemetry_batch(
    std::span<const TelemetryEvent> events) {
  std::vector<std::vector<std::byte>> frames;
  const std::uint32_t n_collectors = static_cast<std::uint32_t>(table_.size());

  constexpr std::size_t kLanes = 64;
  std::array<std::uint64_t, kLanes> key_lanes;
  std::array<std::uint32_t, kLanes> ids;
  std::size_t done = 0;
  while (done < events.size()) {
    const std::size_t m = std::min(kLanes, events.size() - done);
    // Batch-hash the chunk's collector ids when every key is the 8-byte
    // telemetry shape; odd-sized keys fall back to per-event hashing inside
    // emit_telemetry.
    bool keys8 = n_collectors != 0;
    for (std::size_t i = 0; keys8 && i < m; ++i) {
      keys8 = events[done + i].key.size() == 8;
    }
    if (keys8) {
      for (std::size_t i = 0; i < m; ++i) {
        std::memcpy(&key_lanes[i], events[done + i].key.data(), 8);
      }
      if (ring_mode()) {
        // Batched AVX2 hash + one ring-table snapshot for the whole chunk.
        kv_selector_->owners_of(
            reinterpret_cast<const std::byte*>(key_lanes.data()), 8, 8, m,
            ids.data());
      } else {
        hash_engine_.collector_ids(
            reinterpret_cast<const std::byte*>(key_lanes.data()), 8, 8, m,
            n_collectors, ids.data());
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      const TelemetryEvent& ev = events[done + i];
      emit_telemetry(ev.key, ev.value,
                     keys8 ? static_cast<std::int64_t>(ids[i]) : -1, frames);
    }
    done += m;
  }
  return frames;
}

void DartSwitchPipeline::emit_telemetry(
    std::span<const std::byte> key, std::span<const std::byte> value,
    std::int64_t precomputed_id, std::vector<std::vector<std::byte>>& frames) {
  ++counters_.telemetry_events;

  // Hash the key to its owning collector (same id regardless of n — all N
  // copies of a key live on one collector, §3.1). kModulo reduces over the
  // contiguous loaded-row count; kRing asks the consistent-hash selector,
  // which never picks a removed member.
  const std::uint32_t n_collectors = static_cast<std::uint32_t>(table_.size());
  if (n_collectors == 0) {
    ++counters_.table_misses;
    return;
  }
  const std::uint32_t collector_id =
      precomputed_id >= 0 ? static_cast<std::uint32_t>(precomputed_id)
      : ring_mode()       ? kv_selector_->owner_of(key)
                          : hash_engine_.collector_id(key, n_collectors);
  const auto entry = table_.lookup(collector_id);
  if (!entry) {
    ++counters_.table_misses;
    return;
  }

  // Deparser templates built by load_collector; the slow reconstruct-and-
  // reserialize path below only runs if the cache is somehow out of sync.
  const auto tpl_it = egress_tpls_.find(collector_id);

  // Reconstruct the directory row the crafter expects from the action data.
  core::RemoteStoreInfo dst;
  dst.collector_id = collector_id;
  dst.mac = entry->mac;
  dst.ip = net::Ipv4Addr{entry->ip};
  dst.qpn = entry->qpn;
  dst.rkey = entry->rkey;
  dst.base_vaddr = entry->base_vaddr;
  dst.n_slots = entry->n_slots;
  dst.slot_bytes = entry->slot_bytes;
  dst.backend = entry->backend;

  if (entry->backend == core::StoreBackendKind::kSketch) {
    // Sketch fan-out: one FETCH_ADD of 1 per sketch row, each consuming its
    // own PSN — a telemetry event on a sketch-backed collector is `rows`
    // wire ops, the aggregation itself happening in the collector's RNIC.
    for (std::uint32_t row = 0; row < config_.sketch.rows; ++row) {
      const std::uint32_t psn = psn_regs_.rmw(
          collector_id,
          [](std::uint32_t old) { return (old + 1) & 0x00FF'FFFFu; });
      if (tpl_it != egress_tpls_.end() && tpl_it->second.fetch_add.valid()) {
        const core::FrameTemplate& tpl = tpl_it->second.fetch_add;
        auto& frame = frames.emplace_back(tpl.frame_size());
        const std::size_t len = crafter_.craft_sketch_increment_into(
            tpl, config_.sketch, key, row, /*delta=*/1, psn, frame);
        (void)len;
        assert(len == frame.size());
      } else {
        frames.push_back(crafter_.craft_sketch_increment(
            dst, self_, config_.sketch, key, row, /*delta=*/1, psn));
      }
      ++counters_.reports_emitted;
      ++counters_.sketch_increments_emitted;
    }
    return;
  }

  if (config_.use_dta_multiwrite) {
    const std::uint32_t psn = psn_regs_.rmw(
        collector_id, [](std::uint32_t old) { return (old + 1) & 0x00FF'FFFFu; });
    if (tpl_it != egress_tpls_.end() && tpl_it->second.multiwrite.valid()) {
      const core::FrameTemplate& tpl = tpl_it->second.multiwrite;
      auto& frame = frames.emplace_back(tpl.frame_size());
      const std::size_t len =
          crafter_.craft_multiwrite_into(tpl, key, value, psn, frame);
      (void)len;
      assert(len == frame.size());
    } else {
      frames.push_back(crafter_.craft_multiwrite(dst, self_, key, value, psn));
    }
    ++counters_.reports_emitted;
    return;
  }

  const std::uint32_t n_addr = config_.dart.n_addresses;
  const bool all_slots = config_.write_mode == core::WriteMode::kAllSlots;
  const std::uint32_t emit_count = all_slots ? n_addr : 1;

  for (std::uint32_t i = 0; i < emit_count; ++i) {
    const std::uint32_t n = all_slots ? i : rng_.next(n_addr);
    // Per-collector PSN counter: one register cell, read-modify-write.
    const std::uint32_t psn = psn_regs_.rmw(
        collector_id, [](std::uint32_t old) { return (old + 1) & 0x00FF'FFFFu; });
    if (tpl_it != egress_tpls_.end() && tpl_it->second.write.valid()) {
      const core::FrameTemplate& tpl = tpl_it->second.write;
      auto& frame = frames.emplace_back(tpl.frame_size());
      const std::size_t len =
          crafter_.craft_write_into(tpl, key, value, n, psn, frame);
      (void)len;
      assert(len == frame.size());
    } else {
      frames.push_back(crafter_.craft_write(dst, self_, key, value, n, psn));
    }
    ++counters_.reports_emitted;
  }
}

const DartSwitchPipeline::PrimitiveRows* DartSwitchPipeline::primitive_rows_of(
    std::span<const std::byte> key, std::uint32_t& collector_id) {
  ++counters_.telemetry_events;
  const auto n = static_cast<std::uint32_t>(primitive_rows_.size());
  if (n == 0) {
    ++counters_.table_misses;
    return nullptr;
  }
  collector_id = ring_mode() ? prim_selector_->owner_of(key)
                             : hash_engine_.collector_id(key, n);
  const auto it = primitive_rows_.find(collector_id);
  if (it == primitive_rows_.end()) {
    ++counters_.table_misses;
    return nullptr;
  }
  return &it->second;
}

std::vector<std::byte> DartSwitchPipeline::on_append_event(
    std::span<const std::byte> key, std::span<const std::byte> value) {
  std::uint32_t collector_id = 0;
  const PrimitiveRows* rows = primitive_rows_of(key, collector_id);
  if (rows == nullptr) return {};

  // Tail register bump: this report's 1-based sequence number. Consumed even
  // if the frame is later lost — the collector-side reader sees the hole.
  const std::uint64_t seq =
      append_tails_.rmw(collector_id, [](std::uint64_t old) { return old + 1; }) +
      1;
  const std::uint32_t psn = psn_regs_.rmw(
      collector_id, [](std::uint32_t old) { return (old + 1) & 0x00FF'FFFFu; });

  std::vector<std::byte> frame;
  const auto tpl_it = primitive_tpls_.find(collector_id);
  if (tpl_it != primitive_tpls_.end() && tpl_it->second.append.valid()) {
    const core::FrameTemplate& tpl = tpl_it->second.append;
    frame.resize(tpl.frame_size());
    const std::size_t len = crafter_.craft_append_into(
        tpl, config_.primitives.ring, seq, value, psn, frame);
    (void)len;
    assert(len == frame.size());
  } else {
    frame = crafter_.craft_append(rows->ring, self_, config_.primitives.ring,
                                  seq, value, psn);
  }
  ++counters_.reports_emitted;
  ++counters_.appends_emitted;
  return frame;
}

std::vector<std::byte> DartSwitchPipeline::on_increment_event(
    std::span<const std::byte> key, std::uint64_t delta) {
  std::uint32_t collector_id = 0;
  const PrimitiveRows* rows = primitive_rows_of(key, collector_id);
  if (rows == nullptr) return {};

  const std::uint32_t psn = psn_regs_.rmw(
      collector_id, [](std::uint32_t old) { return (old + 1) & 0x00FF'FFFFu; });

  std::vector<std::byte> frame;
  const auto tpl_it = primitive_tpls_.find(collector_id);
  if (tpl_it != primitive_tpls_.end() && tpl_it->second.increment.valid()) {
    const core::FrameTemplate& tpl = tpl_it->second.increment;
    frame.resize(tpl.frame_size());
    const std::size_t len = crafter_.craft_key_increment_into(
        tpl, config_.primitives.counters, key, delta, psn, frame);
    (void)len;
    assert(len == frame.size());
  } else {
    frame = crafter_.craft_key_increment(rows->counters, self_,
                                         config_.primitives.counters, key,
                                         delta, psn);
  }
  ++counters_.reports_emitted;
  ++counters_.increments_emitted;
  return frame;
}

std::vector<std::byte> DartSwitchPipeline::on_postcard_event(
    std::span<const std::byte> flow_key, std::uint32_t hop,
    std::span<const std::byte> value) {
  std::uint32_t collector_id = 0;
  const PrimitiveRows* rows = primitive_rows_of(flow_key, collector_id);
  if (rows == nullptr) return {};

  const std::uint32_t psn = psn_regs_.rmw(
      collector_id, [](std::uint32_t old) { return (old + 1) & 0x00FF'FFFFu; });

  std::vector<std::byte> frame;
  const auto tpl_it = primitive_tpls_.find(collector_id);
  if (tpl_it != primitive_tpls_.end() && tpl_it->second.postcard.valid()) {
    const core::FrameTemplate& tpl = tpl_it->second.postcard;
    frame.resize(tpl.frame_size());
    const std::size_t len = crafter_.craft_postcard_into(
        tpl, config_.primitives.postcards, flow_key, hop, value, psn, frame);
    (void)len;
    assert(len == frame.size());
  } else {
    frame = crafter_.craft_postcard(rows->postcards, self_,
                                    config_.primitives.postcards, flow_key,
                                    hop, value, psn);
  }
  ++counters_.reports_emitted;
  ++counters_.postcards_emitted;
  return frame;
}

}  // namespace dart::switchsim
