// Packet — the unit that flows through the simulated network, the switch
// pipeline model, and the simulated RNIC.
//
// A Packet owns a contiguous byte buffer (the wire bytes) plus simulation
// metadata (ingress port, timestamps, mirror flags) that a real device keeps
// in per-packet metadata rather than on the wire, mirroring how a P4 target
// separates headers from intrinsic metadata.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dart::net {

// Simulation-side per-packet metadata (not serialized on the wire).
struct PacketMeta {
  std::uint32_t ingress_port = 0;
  std::uint32_t egress_port = 0;
  std::uint64_t ingress_time_ns = 0;
  std::uint32_t queue_depth = 0;   // observed at enqueue, used by INT
  bool is_mirror_clone = false;    // set by the I2E mirror extern
  std::uint32_t mirror_session = 0;
};

class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::span<std::byte> mutable_bytes() noexcept { return bytes_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bytes_.empty(); }

  void assign(std::vector<std::byte> bytes) { bytes_ = std::move(bytes); }
  void append(std::span<const std::byte> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  // Truncate to the first `n` bytes (mirror truncation on Tofino, §6).
  void truncate(std::size_t n) {
    if (n < bytes_.size()) bytes_.resize(n);
  }

  [[nodiscard]] PacketMeta& meta() noexcept { return meta_; }
  [[nodiscard]] const PacketMeta& meta() const noexcept { return meta_; }

  // Deep copy including metadata — used by the mirror extern.
  [[nodiscard]] Packet clone() const { return *this; }

 private:
  std::vector<std::byte> bytes_;
  PacketMeta meta_;
};

}  // namespace dart::net
