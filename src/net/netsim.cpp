#include "net/netsim.hpp"

#include <cassert>
#include <utility>

namespace dart::net {

bool GilbertElliottLoss::drop(Xoshiro256& rng) {
  // Standard Gilbert-Elliott formulation: the CURRENT state decides this
  // packet's fate, then the chain transitions for the next packet.
  // (Transitioning first is a subtly different chain: the very first packet
  // would already sample the post-transition state, which shifts the burst
  // statistics and makes the initial state unobservable.)
  const bool lost = rng.chance(bad_ ? loss_bad_ : loss_good_);
  if (bad_) {
    if (rng.chance(p_bg_)) bad_ = false;
  } else {
    if (rng.chance(p_gb_)) bad_ = true;
  }
  return lost;
}

NodeId Simulator::add_node(Node& node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(&node);
  node.attach(*this, id);
  return id;
}

LinkId Simulator::add_link(NodeId from, NodeId to, std::uint64_t latency_ns,
                           std::unique_ptr<LossModel> loss, LinkShape shape) {
  assert(from < nodes_.size() && to < nodes_.size());
  Link link;
  link.from = from;
  link.to = to;
  link.latency_ns = latency_ns;
  link.loss = loss ? std::move(loss) : std::make_unique<NoLoss>();
  link.shape = shape;
  links_.push_back(std::move(link));
  return static_cast<LinkId>(links_.size() - 1);
}

void Simulator::connect(NodeId a, NodeId b, std::uint64_t latency_ns,
                        double loss_rate) {
  auto make_loss = [&]() -> std::unique_ptr<LossModel> {
    if (loss_rate <= 0.0) return std::make_unique<NoLoss>();
    return std::make_unique<BernoulliLoss>(loss_rate);
  };
  add_link(a, b, latency_ns, make_loss());
  add_link(b, a, latency_ns, make_loss());
}

Link* Simulator::find_link(NodeId from, NodeId to) noexcept {
  for (auto& l : links_) {
    if (l.from == from && l.to == to) return &l;
  }
  return nullptr;
}

void Simulator::send(NodeId from, NodeId to, Packet packet) {
  Link* link = find_link(from, to);
  assert(link != nullptr && "send over a link that does not exist");
  if (!link->up) {
    // Partitioned link: silently eats packets, like a dead cable. Counted
    // separately from loss-model drops so conservation checks can tell an
    // injected partition from ambient report loss.
    ++link->stats.partitioned;
    return;
  }
  if (link->loss->drop(rng_)) {
    ++link->stats.dropped;
    return;
  }
  if (link->corrupt_rate > 0.0 && rng_.chance(link->corrupt_rate) &&
      !packet.bytes().empty()) {
    // Flip one bit of one byte in the back half of the frame (headers stay
    // parsable; the iCRC at the receiver is what should catch this).
    auto bytes = packet.mutable_bytes();
    const std::size_t at = bytes.size() / 2 + rng_.below(bytes.size() -
                                                         bytes.size() / 2);
    bytes[at] ^= std::byte{0x10};
    ++link->stats.corrupted;
  }

  std::uint64_t deliver_at;
  if (link->shape.bandwidth_bps == 0) {
    // Ideal link: pure propagation delay.
    deliver_at = now_ns_ + link->latency_ns;
  } else {
    // Shaped link: serialize behind earlier packets; tail-drop a full queue.
    if (link->shape.queue_cap != 0 && link->queued >= link->shape.queue_cap) {
      ++link->stats.queue_drops;
      return;
    }
    const std::uint64_t serialization_ns =
        packet.size() * 8ull * 1'000'000'000ull / link->shape.bandwidth_bps;
    const std::uint64_t start = std::max(now_ns_, link->busy_until_ns);
    link->busy_until_ns = start + serialization_ns;
    deliver_at = link->busy_until_ns + link->latency_ns;

    ++link->queued;
    link->stats.max_queue = std::max(link->stats.max_queue, link->queued);
    // The packet leaves the egress queue when fully serialized. Capture the
    // link by index: links_ may reallocate if topology grows later.
    const std::uint64_t serialized_at = link->busy_until_ns;
    const auto link_idx = static_cast<std::size_t>(link - links_.data());
    schedule(serialized_at, [this, link_idx] { --links_[link_idx].queued; });
  }

  ++link->stats.delivered;
  Node* dst = nodes_[to];
  schedule(deliver_at, [dst, deliver_at, p = std::move(packet)]() mutable {
    dst->receive(std::move(p), deliver_at);
  });
}

std::uint32_t Simulator::link_queue_depth(NodeId from, NodeId to) const noexcept {
  for (const auto& l : links_) {
    if (l.from == from && l.to == to) return l.queued;
  }
  return 0;
}

void Simulator::schedule(std::uint64_t at_ns, std::function<void()> fn) {
  queue_.push(Event{at_ns < now_ns_ ? now_ns_ : at_ns, seq_++, std::move(fn)});
}

void Simulator::run(std::uint64_t until_ns) {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event is copied out cheaply since the
    // payload is a shared-state std::function.
    Event ev = queue_.top();
    if (ev.at_ns > until_ns) break;
    queue_.pop();
    now_ns_ = ev.at_ns;
    ev.fn();
  }
}

std::uint64_t Simulator::total_delivered() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : links_) n += l.stats.delivered;
  return n;
}

std::uint64_t Simulator::total_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : links_) n += l.stats.dropped;
  return n;
}

std::uint64_t Simulator::total_queue_drops() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : links_) n += l.stats.queue_drops;
  return n;
}

std::uint64_t Simulator::total_partitioned() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : links_) n += l.stats.partitioned;
  return n;
}

std::uint64_t Simulator::total_corrupted() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : links_) n += l.stats.corrupted;
  return n;
}

}  // namespace dart::net
