// Event-driven network simulator.
//
// The fabric model is intentionally lean: nodes connected by point-to-point
// links with propagation latency and a configurable loss process. It exists
// to answer the questions the paper's evaluation poses — do DART reports
// survive report loss thanks to N-way redundancy (§3.1), and what does the
// switch→collector data path look like end to end (§6) — not to model
// congestion control.
//
// Loss models:
//  - Bernoulli(p): independent per-packet loss.
//  - Gilbert-Elliott: bursty loss (good/bad states with distinct drop rates),
//    the standard model for correlated report loss during incidents, which is
//    exactly when telemetry matters most.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "net/packet.hpp"

namespace dart::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFF'FFFFu;

// A node receives packets from the simulator and may send more via the
// Simulator reference passed at attach time.
class Simulator;

class Node {
 public:
  virtual ~Node() = default;

  // Called once when added to the simulator.
  virtual void attach(Simulator& sim, NodeId self) {
    sim_ = &sim;
    self_ = self;
  }

  // Deliver a packet at simulated time `now_ns`, arriving on `link_port`.
  virtual void receive(Packet packet, std::uint64_t now_ns) = 0;

  [[nodiscard]] NodeId id() const noexcept { return self_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 protected:
  Simulator* sim_ = nullptr;
  NodeId self_ = kInvalidNode;

 private:
  std::string name_;
};

// Loss process attached to a link. The RNG is plumbed in per call rather
// than owned, so one model description can be replicated across threads
// (clone()) with each replica driven by its thread's private Xoshiro256
// stream — the pattern the ingest pipeline's feeders use.
class LossModel {
 public:
  virtual ~LossModel() = default;
  [[nodiscard]] virtual bool drop(Xoshiro256& rng) = 0;
  // Fresh replica with the same parameters and initial state (not the
  // current chain state) — per-thread loss processes must start identically.
  [[nodiscard]] virtual std::unique_ptr<LossModel> clone() const = 0;
};

class NoLoss final : public LossModel {
 public:
  [[nodiscard]] bool drop(Xoshiro256&) override { return false; }
  [[nodiscard]] std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<NoLoss>();
  }
};

class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p) : p_(p) {}
  [[nodiscard]] bool drop(Xoshiro256& rng) override { return rng.chance(p_); }
  [[nodiscard]] std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<BernoulliLoss>(p_);
  }

 private:
  double p_;
};

// Two-state Gilbert-Elliott bursty loss. Each packet is dropped with the
// current state's loss rate, THEN the chain transitions (the standard
// formulation; see GilbertElliottLoss::drop).
class GilbertElliottLoss final : public LossModel {
 public:
  // p_gb: P(good→bad), p_bg: P(bad→good), loss_good/loss_bad: drop rates.
  GilbertElliottLoss(double p_gb, double p_bg, double loss_good,
                     double loss_bad)
      : p_gb_(p_gb), p_bg_(p_bg), loss_good_(loss_good), loss_bad_(loss_bad) {}

  [[nodiscard]] bool drop(Xoshiro256& rng) override;
  [[nodiscard]] std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<GilbertElliottLoss>(p_gb_, p_bg_, loss_good_,
                                                loss_bad_);
  }

  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }

  // Stationary expected loss rate of the chain: P(bad) = p_gb/(p_gb+p_bg).
  [[nodiscard]] double stationary_loss_rate() const noexcept {
    const double denom = p_gb_ + p_bg_;
    const double p_bad = denom > 0 ? p_gb_ / denom : 0.0;
    return (1.0 - p_bad) * loss_good_ + p_bad * loss_bad_;
  }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_ = false;
};

struct LinkStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;       // loss-model drops
  std::uint64_t queue_drops = 0;   // tail drops at a full egress queue
  std::uint64_t partitioned = 0;   // dropped while the link was down
  std::uint64_t corrupted = 0;     // delivered with injected byte damage
  std::uint32_t max_queue = 0;     // high-water mark of queued packets
};

// Optional link shaping: finite bandwidth serializes packets and builds an
// egress queue — the congestion signal INT's queue-depth metadata measures.
struct LinkShape {
  std::uint64_t bandwidth_bps = 0;  // 0 = infinite (no serialization delay)
  std::uint32_t queue_cap = 0;      // packets; 0 = unbounded
};

// Unidirectional link. Use Simulator::connect for a bidirectional pair.
struct Link {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::uint64_t latency_ns = 1000;
  std::unique_ptr<LossModel> loss;
  LinkShape shape;
  std::uint64_t busy_until_ns = 0;  // when the serializer frees up
  std::uint32_t queued = 0;         // packets waiting or serializing
  bool up = true;                   // false = administratively partitioned
  double corrupt_rate = 0.0;        // per-packet byte-corruption probability
  LinkStats stats;
};

using LinkId = std::uint32_t;

// Discrete-event simulator: a time-ordered queue of packet deliveries and
// timer callbacks.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Node registry. The simulator does not own nodes (callers typically hold
  // them in typed containers); nodes must outlive the simulator run.
  NodeId add_node(Node& node);

  // Adds a unidirectional link; returns its id for stats lookup.
  LinkId add_link(NodeId from, NodeId to, std::uint64_t latency_ns,
                  std::unique_ptr<LossModel> loss = nullptr,
                  LinkShape shape = {});

  // Convenience: two symmetric unidirectional links.
  void connect(NodeId a, NodeId b, std::uint64_t latency_ns,
               double loss_rate = 0.0);

  // Send a packet from `from` over the link to `to` (must exist).
  void send(NodeId from, NodeId to, Packet packet);

  // Schedule a callback at absolute simulated time.
  void schedule(std::uint64_t at_ns, std::function<void()> fn);

  // --- fault-injection control plane (src/fault) ---------------------------
  // All of these are zero-cost when unused: send() tests one bool and one
  // double that default to "healthy" and sit on the Link it already loads.

  // Takes a link down (packets are counted in stats.partitioned and dropped)
  // or back up. Both directions of a pair must be toggled individually.
  void set_link_up(LinkId id, bool up) { links_[id].up = up; }
  [[nodiscard]] bool link_up(LinkId id) const { return links_[id].up; }

  // Corrupts one payload byte of each delivered packet with probability
  // `rate` (seeded by the simulator RNG, so runs stay deterministic).
  void set_link_corruption(LinkId id, double rate) {
    links_[id].corrupt_rate = rate;
  }

  // Runs until the event queue empties or `until_ns` is reached.
  void run(std::uint64_t until_ns = UINT64_MAX);

  [[nodiscard]] std::uint64_t now_ns() const noexcept { return now_ns_; }
  [[nodiscard]] const LinkStats& link_stats(LinkId id) const {
    return links_[id].stats;
  }

  // Instantaneous egress-queue depth of the (from → to) link — what an INT
  // transit switch samples for its queue-depth metadata. 0 if no such link.
  [[nodiscard]] std::uint32_t link_queue_depth(NodeId from, NodeId to) const noexcept;
  [[nodiscard]] std::uint64_t total_delivered() const noexcept;
  [[nodiscard]] std::uint64_t total_dropped() const noexcept;
  [[nodiscard]] std::uint64_t total_queue_drops() const noexcept;
  [[nodiscard]] std::uint64_t total_partitioned() const noexcept;
  [[nodiscard]] std::uint64_t total_corrupted() const noexcept;
  [[nodiscard]] std::size_t n_links() const noexcept { return links_.size(); }
  [[nodiscard]] Xoshiro256& rng() noexcept { return rng_; }

 private:
  struct Event {
    std::uint64_t at_ns;
    std::uint64_t seq;  // tie-break for deterministic ordering
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at_ns != b.at_ns ? a.at_ns > b.at_ns : a.seq > b.seq;
    }
  };

  [[nodiscard]] Link* find_link(NodeId from, NodeId to) noexcept;

  std::vector<Node*> nodes_;
  std::vector<Link> links_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t now_ns_ = 0;
  std::uint64_t seq_ = 0;
  Xoshiro256 rng_;
};

}  // namespace dart::net
