#include "net/checksum.hpp"

namespace dart::net {

void InternetChecksum::add(std::span<const std::byte> data) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    const auto hi = static_cast<std::uint16_t>(static_cast<std::uint8_t>(data[i]));
    const auto lo =
        static_cast<std::uint16_t>(static_cast<std::uint8_t>(data[i + 1]));
    sum_ += static_cast<std::uint16_t>((hi << 8) | lo);
  }
  if (i < data.size()) {
    const auto hi = static_cast<std::uint16_t>(static_cast<std::uint8_t>(data[i]));
    sum_ += static_cast<std::uint16_t>(hi << 8);
  }
}

std::uint16_t InternetChecksum::finish() const noexcept {
  std::uint64_t s = sum_;
  while (s >> 16) {
    s = (s & 0xFFFF) + (s >> 16);
  }
  return static_cast<std::uint16_t>(~s & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept {
  InternetChecksum c;
  c.add(data);
  return c.finish();
}

}  // namespace dart::net
