// RFC 1071 internet checksum (IPv4 header checksum, UDP checksum).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dart::net {

// One's-complement sum accumulator for the internet checksum family.
class InternetChecksum {
 public:
  // Adds a byte range. Ranges may be added in any 16-bit-aligned chunks; an
  // odd-length range is padded with a zero byte as RFC 1071 prescribes,
  // so only the final chunk may have odd length.
  void add(std::span<const std::byte> data) noexcept;
  void add_u16(std::uint16_t v) noexcept { sum_ += v; }
  void add_u32(std::uint32_t v) noexcept {
    add_u16(static_cast<std::uint16_t>(v >> 16));
    add_u16(static_cast<std::uint16_t>(v & 0xFFFF));
  }

  // Final folded, complemented checksum in host order.
  [[nodiscard]] std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
};

// Checksum of a single range (the IPv4 header case).
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::byte> data) noexcept;

}  // namespace dart::net
