// Wire headers for the simulated fabric: Ethernet II, IPv4, UDP.
//
// RoCEv2 reports crafted by DART switches are UDP datagrams (dst port 4791)
// carried over IPv4/Ethernet (§6). Header structs here are *parsed forms*;
// serialization goes through BufWriter so there is no packed-struct aliasing
// and the code is endian-correct by construction.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace dart::net {

using MacAddr = std::array<std::uint8_t, 6>;

[[nodiscard]] std::string to_string(const MacAddr& mac);

// IPv4 address as host-order integer with dotted-quad helpers.
struct Ipv4Addr {
  std::uint32_t value = 0;  // host order

  [[nodiscard]] static Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                            std::uint8_t c, std::uint8_t d) noexcept {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Ipv4Addr&, const Ipv4Addr&) = default;
};

// ---------------------------------------------------------------------------
// Ethernet II
// ---------------------------------------------------------------------------

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::size_t kEthernetHeaderLen = 14;

struct EthernetHeader {
  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ether_type = kEtherTypeIpv4;

  void serialize(BufWriter& w) const;
  [[nodiscard]] static std::optional<EthernetHeader> parse(BufReader& r);
};

// ---------------------------------------------------------------------------
// IPv4 (no options)
// ---------------------------------------------------------------------------

inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::size_t kIpv4HeaderLen = 20;

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint16_t checksum = 0;  // filled by serialize()
  Ipv4Addr src{};
  Ipv4Addr dst{};

  // Serializes with a correct header checksum.
  void serialize(BufWriter& w) const;
  // Parses and verifies the checksum; nullopt on malformed/bad-checksum.
  [[nodiscard]] static std::optional<Ipv4Header> parse(BufReader& r);
};

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::uint16_t kRoceV2UdpPort = 4791;  // IANA RoCEv2

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    // header + payload
  std::uint16_t checksum = 0;  // 0 = not computed (legal for UDP/IPv4; RoCEv2
                               // relies on the iCRC instead)

  void serialize(BufWriter& w) const;
  [[nodiscard]] static std::optional<UdpHeader> parse(BufReader& r);
};

// ---------------------------------------------------------------------------
// Convenience: build / crack a full Ethernet+IPv4+UDP frame around a payload.
// ---------------------------------------------------------------------------

struct UdpFrameSpec {
  MacAddr src_mac{};
  MacAddr dst_mac{};
  Ipv4Addr src_ip{};
  Ipv4Addr dst_ip{};
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ttl = 64;
  std::uint8_t dscp = 0;
  // Simplification: the simulator frames TCP segments (protocol 6) with the
  // same 8-byte L4 header as UDP (ports, length, checksum) — byte-stream
  // semantics are out of scope; telemetry only needs the 5-tuple.
  std::uint8_t protocol = kIpProtoUdp;
};

// Serializes headers + payload into wire bytes.
[[nodiscard]] std::vector<std::byte> build_udp_frame(
    const UdpFrameSpec& spec, std::span<const std::byte> payload);

struct ParsedUdpFrame {
  EthernetHeader eth;
  Ipv4Header ip;
  UdpHeader udp;
  std::span<const std::byte> payload;  // view into the input buffer
};

// Parses an Ethernet+IPv4+UDP frame; nullopt on any malformed layer.
[[nodiscard]] std::optional<ParsedUdpFrame> parse_udp_frame(
    std::span<const std::byte> frame);

}  // namespace dart::net
