// packet.cpp — Packet is header-only today; this TU anchors the library and
// keeps a home for future out-of-line packet helpers.
#include "net/packet.hpp"
