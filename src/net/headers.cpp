#include "net/headers.hpp"

#include <cstdio>

#include "net/checksum.hpp"

namespace dart::net {

std::string to_string(const MacAddr& mac) {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", mac[0],
                mac[1], mac[2], mac[3], mac[4], mac[5]);
  return buf;
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFF,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

// ---------------------------------------------------------------------------
// Ethernet
// ---------------------------------------------------------------------------

void EthernetHeader::serialize(BufWriter& w) const {
  for (const auto b : dst) w.u8(b);
  for (const auto b : src) w.u8(b);
  w.be16(ether_type);
}

std::optional<EthernetHeader> EthernetHeader::parse(BufReader& r) {
  EthernetHeader h;
  for (auto& b : h.dst) b = r.u8();
  for (auto& b : h.src) b = r.u8();
  h.ether_type = r.be16();
  if (!r.ok()) return std::nullopt;
  return h;
}

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

void Ipv4Header::serialize(BufWriter& w) const {
  std::vector<std::byte> hdr;
  hdr.reserve(kIpv4HeaderLen);
  BufWriter hw(hdr);
  hw.u8(0x45);  // version 4, IHL 5
  hw.u8(dscp << 2);
  hw.be16(total_length);
  hw.be16(identification);
  hw.be16(0);  // flags + fragment offset: DF not modeled
  hw.u8(ttl);
  hw.u8(protocol);
  hw.be16(0);  // checksum placeholder
  hw.be32(src.value);
  hw.be32(dst.value);

  const std::uint16_t csum = internet_checksum(hdr);
  hdr[10] = static_cast<std::byte>(csum >> 8);
  hdr[11] = static_cast<std::byte>(csum & 0xFF);
  w.bytes(hdr);
}

std::optional<Ipv4Header> Ipv4Header::parse(BufReader& r) {
  const auto raw = r.view(kIpv4HeaderLen);
  if (raw.size() != kIpv4HeaderLen) return std::nullopt;
  BufReader hr(raw);

  const std::uint8_t ver_ihl = hr.u8();
  if ((ver_ihl >> 4) != 4 || (ver_ihl & 0x0F) != 5) return std::nullopt;

  Ipv4Header h;
  h.dscp = hr.u8() >> 2;
  h.total_length = hr.be16();
  h.identification = hr.be16();
  hr.skip(2);  // flags/frag
  h.ttl = hr.u8();
  h.protocol = hr.u8();
  h.checksum = hr.be16();
  h.src.value = hr.be32();
  h.dst.value = hr.be32();

  // Verify: checksum over the header including the checksum field must be 0
  // before complement, i.e. internet_checksum(header) == 0.
  if (internet_checksum(raw) != 0) return std::nullopt;
  return h;
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

void UdpHeader::serialize(BufWriter& w) const {
  w.be16(src_port);
  w.be16(dst_port);
  w.be16(length);
  w.be16(checksum);
}

std::optional<UdpHeader> UdpHeader::parse(BufReader& r) {
  UdpHeader h;
  h.src_port = r.be16();
  h.dst_port = r.be16();
  h.length = r.be16();
  h.checksum = r.be16();
  if (!r.ok() || h.length < kUdpHeaderLen) return std::nullopt;
  return h;
}

// ---------------------------------------------------------------------------
// Frame helpers
// ---------------------------------------------------------------------------

std::vector<std::byte> build_udp_frame(const UdpFrameSpec& spec,
                                       std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(kEthernetHeaderLen + kIpv4HeaderLen + kUdpHeaderLen +
              payload.size());
  BufWriter w(out);

  EthernetHeader eth;
  eth.dst = spec.dst_mac;
  eth.src = spec.src_mac;
  eth.ether_type = kEtherTypeIpv4;
  eth.serialize(w);

  Ipv4Header ip;
  ip.dscp = spec.dscp;
  ip.total_length = static_cast<std::uint16_t>(kIpv4HeaderLen + kUdpHeaderLen +
                                               payload.size());
  ip.ttl = spec.ttl;
  ip.protocol = spec.protocol;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.serialize(w);

  UdpHeader udp;
  udp.src_port = spec.src_port;
  udp.dst_port = spec.dst_port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderLen + payload.size());
  udp.checksum = 0;  // RoCEv2 uses the iCRC; UDP checksum 0 is legal on IPv4
  udp.serialize(w);

  w.bytes(payload);
  return out;
}

std::optional<ParsedUdpFrame> parse_udp_frame(std::span<const std::byte> frame) {
  BufReader r(frame);
  const auto eth = EthernetHeader::parse(r);
  if (!eth || eth->ether_type != kEtherTypeIpv4) return std::nullopt;
  const auto ip = Ipv4Header::parse(r);
  // Accept UDP and (simplified) TCP — both carry the uniform 8-byte L4
  // header in this simulator; anything else is not parseable here.
  if (!ip || (ip->protocol != kIpProtoUdp && ip->protocol != 6)) {
    return std::nullopt;
  }
  const auto udp = UdpHeader::parse(r);
  if (!udp) return std::nullopt;
  const std::size_t payload_len = udp->length - kUdpHeaderLen;
  if (r.remaining() < payload_len) return std::nullopt;
  ParsedUdpFrame parsed{*eth, *ip, *udp, {}};
  BufReader rr = r;  // keep r's position semantics simple
  parsed.payload = rr.view(payload_len);
  return parsed;
}

}  // namespace dart::net
