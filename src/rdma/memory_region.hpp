// Protection domains and memory regions — the RNIC-side access-control model.
//
// A collector process registers its DART slot array as a memory region (MR)
// inside a protection domain (PD). The registration yields an rkey that the
// control plane distributes to switches (via the collector lookup table,
// §3.1/§6). Every incoming RDMA request is validated against (rkey, PD,
// bounds, access flags) exactly like a hardware NIC would; a bad rkey or an
// out-of-bounds write is dropped and counted, never executed.
//
// Virtual addressing: MRs expose the registered buffer at an arbitrary
// virtual base address (as real verbs do). Switch-side DART code computes
// vaddr = mr.base + slot_index * slot_size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.hpp"

namespace dart::rdma {

using PdHandle = std::uint32_t;
using MrHandle = std::uint32_t;

enum class Access : std::uint32_t {
  kNone = 0,
  kRemoteWrite = 1u << 0,
  kRemoteRead = 1u << 1,
  kRemoteAtomic = 1u << 2,
};

[[nodiscard]] constexpr Access operator|(Access a, Access b) noexcept {
  return static_cast<Access>(static_cast<std::uint32_t>(a) |
                             static_cast<std::uint32_t>(b));
}
[[nodiscard]] constexpr bool has_access(Access set, Access want) noexcept {
  return (static_cast<std::uint32_t>(set) & static_cast<std::uint32_t>(want)) ==
         static_cast<std::uint32_t>(want);
}

struct MemoryRegion {
  MrHandle handle = 0;
  PdHandle pd = 0;
  std::uint64_t base_vaddr = 0;   // remote virtual address of byte 0
  std::span<std::byte> buffer;    // host memory backing the MR (not owned)
  std::uint32_t rkey = 0;
  Access access = Access::kNone;

  [[nodiscard]] bool contains(std::uint64_t vaddr,
                              std::uint64_t len) const noexcept {
    return vaddr >= base_vaddr && len <= buffer.size() &&
           vaddr - base_vaddr <= buffer.size() - len;
  }

  // Host pointer for a validated (vaddr, len) range.
  [[nodiscard]] std::byte* at(std::uint64_t vaddr) const noexcept {
    return buffer.data() + (vaddr - base_vaddr);
  }
};

// Registry of PDs and MRs owned by one simulated RNIC.
class MemoryRegistry {
 public:
  explicit MemoryRegistry(std::uint64_t rkey_seed = 0x5EED);

  [[nodiscard]] PdHandle alloc_pd();

  // Registers `buffer` at virtual base `base_vaddr`. rkeys are generated
  // unpredictably (like hardware) so tests can't pass by accident.
  [[nodiscard]] Result<MemoryRegion> register_mr(PdHandle pd,
                                                 std::span<std::byte> buffer,
                                                 std::uint64_t base_vaddr,
                                                 Access access);

  Status deregister_mr(MrHandle handle);

  // rkey → MR lookup used on the fast path.
  [[nodiscard]] const MemoryRegion* find_by_rkey(std::uint32_t rkey) const noexcept;

  [[nodiscard]] std::size_t mr_count() const noexcept;

 private:
  std::uint64_t rkey_state_;
  std::uint32_t next_pd_ = 1;
  std::uint32_t next_mr_ = 1;
  std::vector<MemoryRegion> mrs_;
  std::vector<PdHandle> pds_;
};

}  // namespace dart::rdma
