// RoCEv2 wire format: Base Transport Header (BTH), RDMA Extended Transport
// Header (RETH), Atomic Extended Transport Header (AtomicETH), and the
// invariant CRC (iCRC).
//
// DART switches craft these headers in the P4 egress pipeline (§6): a report
// is a UDP datagram to port 4791 carrying BTH+RETH+payload+iCRC, i.e. an
// RDMA WRITE ONLY operation aimed at a hash-chosen collector address. The
// simulated RNIC parses and validates the same format, so the switch and NIC
// must agree bit-for-bit — tests assert round-trips and iCRC stability.
//
// iCRC: we follow the SoftRoCE (rxe) formulation for RoCEv2-over-IPv4:
//   iCRC = CRC32( 8 bytes of 0xFF            — masked dummy LRH
//               ‖ IPv4 header with ToS, TTL, header-checksum set to 0xFF
//               ‖ UDP header with checksum set to 0xFFFF
//               ‖ BTH with the resv8a byte set to 0xFF
//               ‖ payload )
// transmitted little-endian after the payload. Both producer (switch) and
// consumer (RNIC) in this codebase use this exact function; bit-compatibility
// with a specific hardware NIC is out of scope and irrelevant to the paper's
// claims.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "net/headers.hpp"

namespace dart::rdma {

// BTH opcodes (IBTA spec §9.2; RC = 0x00-, UC = 0x20-).
enum class Opcode : std::uint8_t {
  kRcRdmaWriteOnly = 0x0A,
  kRcCompareSwap = 0x13,
  kRcFetchAdd = 0x14,
  kUcRdmaWriteOnly = 0x2A,
};

[[nodiscard]] constexpr bool is_write(Opcode op) noexcept {
  return op == Opcode::kRcRdmaWriteOnly || op == Opcode::kUcRdmaWriteOnly;
}
[[nodiscard]] constexpr bool is_atomic(Opcode op) noexcept {
  return op == Opcode::kRcCompareSwap || op == Opcode::kRcFetchAdd;
}
[[nodiscard]] constexpr bool is_unreliable(Opcode op) noexcept {
  return (static_cast<std::uint8_t>(op) & 0xE0u) == 0x20u;
}

inline constexpr std::size_t kBthLen = 12;
inline constexpr std::size_t kRethLen = 16;
inline constexpr std::size_t kAtomicEthLen = 28;
inline constexpr std::size_t kIcrcLen = 4;

// Base Transport Header (12 bytes).
struct Bth {
  Opcode opcode = Opcode::kRcRdmaWriteOnly;
  bool solicited = false;
  bool mig_req = true;   // matches common NIC defaults
  std::uint8_t pad_count = 0;
  std::uint16_t pkey = 0xFFFF;  // default partition
  std::uint32_t dest_qp = 0;    // 24 bits
  bool ack_req = false;
  std::uint32_t psn = 0;  // 24 bits

  void serialize(BufWriter& w) const;
  [[nodiscard]] static std::optional<Bth> parse(BufReader& r);
};

// RDMA Extended Transport Header (16 bytes) — WRITE/READ address info.
struct Reth {
  std::uint64_t vaddr = 0;
  std::uint32_t rkey = 0;
  std::uint32_t dma_length = 0;

  void serialize(BufWriter& w) const;
  [[nodiscard]] static std::optional<Reth> parse(BufReader& r);
};

// Atomic Extended Transport Header (28 bytes) — CAS / Fetch&Add operands.
struct AtomicEth {
  std::uint64_t vaddr = 0;
  std::uint32_t rkey = 0;
  std::uint64_t swap_add = 0;  // swap value (CAS) or addend (F&A)
  std::uint64_t compare = 0;   // compare value (CAS only)

  void serialize(BufWriter& w) const;
  [[nodiscard]] static std::optional<AtomicEth> parse(BufReader& r);
};

// A fully parsed RoCEv2 request as it leaves the UDP payload.
struct RoceRequest {
  Bth bth;
  std::optional<Reth> reth;            // present for WRITE
  std::optional<AtomicEth> atomic_eth; // present for CAS / F&A
  std::span<const std::byte> payload;  // WRITE payload (view into input)
  std::uint32_t icrc = 0;              // as carried on the wire
};

// Serializes BTH (+RETH) + payload (+iCRC placeholder filled by caller via
// finalize_icrc) into `out`. Returns offset of the iCRC field.
std::size_t serialize_write(BufWriter& w, const Bth& bth, const Reth& reth,
                            std::span<const std::byte> payload);

std::size_t serialize_atomic(BufWriter& w, const Bth& bth,
                             const AtomicEth& aeth);

// Parses a RoCEv2 request from a UDP payload (BTH .. iCRC). Does not verify
// the iCRC — the RNIC does that against the full frame.
[[nodiscard]] std::optional<RoceRequest> parse_request(
    std::span<const std::byte> udp_payload);

// Computes the RoCEv2 iCRC over a full Ethernet frame whose UDP payload ends
// with a 4-byte iCRC slot (excluded from the computation).
[[nodiscard]] std::uint32_t compute_icrc(const net::Ipv4Header& ip,
                                         const net::UdpHeader& udp,
                                         std::span<const std::byte> bth_to_payload);

// Offset of the first iCRC-covered byte that can differ between two frames
// of one (source, destination) endpoint pair: the BTH PSN word. Everything
// before it — Eth/IP/UDP headers and BTH bytes 0..7 — is invariant for a
// fixed endpoint pair and payload length, which is what makes the masked
// prefix cacheable.
inline constexpr std::size_t kIcrcVariantOffset =
    net::kEthernetHeaderLen + net::kIpv4HeaderLen + net::kUdpHeaderLen + 8;

// Streaming-CRC state over the masked invariant prefix of `frame`: the 8
// dummy-LRH 0xFF bytes, the masked IPv4 and UDP headers, and BTH bytes 0..7
// with resv8a masked. Resuming this state over
// frame[kIcrcVariantOffset .. icrc) yields the full iCRC. The report
// crafter's frame templates cache this state once per (endpoint, collector)
// pair so per-report iCRC work shrinks to the ~50 variant bytes. `frame`
// must hold at least kIcrcVariantOffset bytes of a well-formed frame.
[[nodiscard]] Crc32 icrc_prefix_state(std::span<const std::byte> frame) noexcept;

// ---------------------------------------------------------------------------
// Fused single-pass wire classification (the RNIC ingest fast path)
// ---------------------------------------------------------------------------
//
// The layered receive path walks each frame three times: parse_udp_frame
// slices the headers, verify_frame_icrc re-reads them to rebuild the masked
// prefix CRC, and parse_request reads the BTH/RETH a third time.
// classify_wire_frame does all of it in one pass over the canonical frame
// shape every report in this simulator has (options-free IPv4, not
// fragmented, UDP): header sanity, the masked iCRC as ONE contiguous
// PCLMUL-dispatched CRC stream, and request field extraction. Its verdicts
// agree exactly with the layered path for every frame it classifies;
// anything non-canonical comes back kFallback so the caller can run the
// layered path and keep behavior (and counters) bit-identical.
struct WireClass {
  enum class Verdict : std::uint8_t {
    kFallback,    // non-canonical shape — run the layered path
    kOtherPort,   // well-formed UDP, dst port is not 4791 (see udp_dst_port)
    kBadIcrc,     // trailing iCRC does not match the masked-frame CRC
    kBadRequest,  // iCRC ok (or skipped) but BTH/RETH/AtomicETH malformed
    kOk,          // `req` holds the parsed request
  };

  Verdict verdict = Verdict::kFallback;
  std::uint16_t udp_dst_port = 0;
  std::span<const std::byte> udp_payload;  // valid unless kFallback
  RoceRequest req{};                       // valid when kOk
};

// `check_icrc` mirrors the RNIC's validate-iCRC knob; when false the CRC
// pass is skipped entirely (the kBadIcrc verdict can then never occur).
[[nodiscard]] WireClass classify_wire_frame(std::span<const std::byte> frame,
                                            bool check_icrc) noexcept;

// Patches the trailing 4 iCRC bytes of `frame` (a full Ethernet+IP+UDP frame
// carrying a RoCEv2 payload) with the correct iCRC. Returns false if the
// frame is malformed.
bool finalize_frame_icrc(std::span<std::byte> frame);

// Verifies the trailing iCRC of a full frame.
[[nodiscard]] bool verify_frame_icrc(std::span<const std::byte> frame);

}  // namespace dart::rdma
