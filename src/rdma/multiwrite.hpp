// DTA multiwrite — the §7 "new direct telemetry access protocol".
//
// Standard RDMA allows one memory write per packet, so filling a key's N
// slots costs N report packets (§3.1). The paper proposes SmartNIC-defined
// primitives that execute several DMA operations per packet: "it would be
// possible to design a new primitive for inserting the same data into
// multiple memory addresses. This would significantly reduce the network
// overheads of our current system."
//
// This module defines that primitive: a compact frame (UDP port 4793)
// carrying ONE payload and N target addresses under a single rkey, with a
// CRC32 trailer. The simulated RNIC executes it as a SmartNIC would —
// validating every target, then performing N DMAs — when the extension is
// enabled (it is off by default: stock RNICs don't speak it).
//
//   payload = [magic 0x4454 "DT"][ver u8][count u8][rkey u32][psn u32]
//             [data len u16][data bytes][count × vaddr u64][crc32 u32]
//
// Compared with N RoCEv2 WRITEs, the multiwrite carries the payload once
// and each extra slot costs 8 bytes instead of a whole packet.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dart::rdma {

inline constexpr std::uint16_t kDtaUdpPort = 4793;
inline constexpr std::uint8_t kDtaVersion = 1;
inline constexpr std::uint8_t kDtaMaxTargets = 16;
inline constexpr std::size_t kDtaHeaderLen = 14;  // magic..data-len field
inline constexpr std::size_t kDtaCrcLen = 4;      // CRC32 trailer

struct DtaMultiWrite {
  std::uint32_t rkey = 0;
  std::uint32_t psn = 0;
  std::vector<std::uint64_t> vaddrs;     // N target addresses
  std::span<const std::byte> payload;    // written to every target
};

// Serializes a multiwrite into a UDP payload (CRC trailer included).
[[nodiscard]] std::vector<std::byte> encode_multiwrite(
    std::uint32_t rkey, std::uint32_t psn,
    std::span<const std::uint64_t> vaddrs,
    std::span<const std::byte> payload);

// Parses and CRC-verifies a multiwrite UDP payload.
[[nodiscard]] std::optional<DtaMultiWrite> parse_multiwrite(
    std::span<const std::byte> udp_payload);

// Wire bytes a multiwrite of `targets` slots of `payload_len` costs,
// including Ethernet/IP/UDP headers — used by the overhead ablation.
[[nodiscard]] constexpr std::size_t multiwrite_frame_bytes(
    std::size_t targets, std::size_t payload_len) noexcept {
  return 14 + 20 + 8 +                       // Ethernet + IPv4 + UDP
         14 + payload_len + targets * 8 + 4; // DTA header + data + addrs + CRC
}

// Wire bytes of one RoCEv2 WRITE report of `payload_len` (for comparison).
[[nodiscard]] constexpr std::size_t roce_write_frame_bytes(
    std::size_t payload_len) noexcept {
  return 14 + 20 + 8 + 12 + 16 + payload_len + 4;  // + BTH + RETH + iCRC
}

}  // namespace dart::rdma
