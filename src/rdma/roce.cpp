#include "rdma/roce.hpp"

#include <array>
#include <cstring>

#include "common/hash.hpp"

namespace dart::rdma {

// ---------------------------------------------------------------------------
// BTH
// ---------------------------------------------------------------------------

void Bth::serialize(BufWriter& w) const {
  w.u8(static_cast<std::uint8_t>(opcode));
  std::uint8_t flags = 0;
  if (solicited) flags |= 0x80;
  if (mig_req) flags |= 0x40;
  flags |= static_cast<std::uint8_t>((pad_count & 0x3u) << 4);
  // low nibble: transport header version (0)
  w.u8(flags);
  w.be16(pkey);
  w.be32(dest_qp & 0x00FF'FFFFu);  // top byte reserved (resv8a slot is byte 8)
  std::uint32_t psn_word = psn & 0x00FF'FFFFu;
  if (ack_req) psn_word |= 0x8000'0000u;
  w.be32(psn_word);
}

std::optional<Bth> Bth::parse(BufReader& r) {
  Bth h;
  const std::uint8_t op = r.u8();
  const std::uint8_t flags = r.u8();
  h.pkey = r.be16();
  const std::uint32_t qp_word = r.be32();
  const std::uint32_t psn_word = r.be32();
  if (!r.ok()) return std::nullopt;
  switch (op) {
    case static_cast<std::uint8_t>(Opcode::kRcRdmaWriteOnly):
    case static_cast<std::uint8_t>(Opcode::kRcCompareSwap):
    case static_cast<std::uint8_t>(Opcode::kRcFetchAdd):
    case static_cast<std::uint8_t>(Opcode::kUcRdmaWriteOnly):
      h.opcode = static_cast<Opcode>(op);
      break;
    default:
      return std::nullopt;  // opcode not supported by this RNIC model
  }
  h.solicited = (flags & 0x80) != 0;
  h.mig_req = (flags & 0x40) != 0;
  h.pad_count = (flags >> 4) & 0x3;
  if ((flags & 0x0F) != 0) return std::nullopt;  // header version must be 0
  h.dest_qp = qp_word & 0x00FF'FFFFu;
  h.ack_req = (psn_word & 0x8000'0000u) != 0;
  h.psn = psn_word & 0x00FF'FFFFu;
  return h;
}

// ---------------------------------------------------------------------------
// RETH / AtomicETH
// ---------------------------------------------------------------------------

void Reth::serialize(BufWriter& w) const {
  w.be64(vaddr);
  w.be32(rkey);
  w.be32(dma_length);
}

std::optional<Reth> Reth::parse(BufReader& r) {
  Reth h;
  h.vaddr = r.be64();
  h.rkey = r.be32();
  h.dma_length = r.be32();
  if (!r.ok()) return std::nullopt;
  return h;
}

void AtomicEth::serialize(BufWriter& w) const {
  w.be64(vaddr);
  w.be32(rkey);
  w.be64(swap_add);
  w.be64(compare);
}

std::optional<AtomicEth> AtomicEth::parse(BufReader& r) {
  AtomicEth h;
  h.vaddr = r.be64();
  h.rkey = r.be32();
  h.swap_add = r.be64();
  h.compare = r.be64();
  if (!r.ok()) return std::nullopt;
  return h;
}

// ---------------------------------------------------------------------------
// Request serialize / parse
// ---------------------------------------------------------------------------

std::size_t serialize_write(BufWriter& w, const Bth& bth, const Reth& reth,
                            std::span<const std::byte> payload) {
  bth.serialize(w);
  reth.serialize(w);
  w.bytes(payload);
  const std::size_t icrc_off = w.size();
  w.zeros(kIcrcLen);  // placeholder; finalize_frame_icrc fills it
  return icrc_off;
}

std::size_t serialize_atomic(BufWriter& w, const Bth& bth,
                             const AtomicEth& aeth) {
  bth.serialize(w);
  aeth.serialize(w);
  const std::size_t icrc_off = w.size();
  w.zeros(kIcrcLen);
  return icrc_off;
}

std::optional<RoceRequest> parse_request(std::span<const std::byte> udp_payload) {
  if (udp_payload.size() < kBthLen + kIcrcLen) return std::nullopt;

  BufReader r(udp_payload.first(udp_payload.size() - kIcrcLen));
  RoceRequest req;
  const auto bth = Bth::parse(r);
  if (!bth) return std::nullopt;
  req.bth = *bth;

  if (is_write(req.bth.opcode)) {
    const auto reth = Reth::parse(r);
    if (!reth) return std::nullopt;
    req.reth = *reth;
    req.payload = r.rest();
    if (req.payload.size() != req.reth->dma_length) return std::nullopt;
  } else if (is_atomic(req.bth.opcode)) {
    const auto aeth = AtomicEth::parse(r);
    if (!aeth) return std::nullopt;
    req.atomic_eth = *aeth;
    if (r.remaining() != 0) return std::nullopt;
  } else {
    return std::nullopt;
  }

  // Trailing iCRC, little-endian per rxe convention.
  const auto* icrc_bytes = udp_payload.data() + udp_payload.size() - kIcrcLen;
  std::memcpy(&req.icrc, icrc_bytes, kIcrcLen);
  return req;
}

// ---------------------------------------------------------------------------
// iCRC
// ---------------------------------------------------------------------------

std::uint32_t compute_icrc(const net::Ipv4Header& ip, const net::UdpHeader& udp,
                           std::span<const std::byte> bth_to_payload) {
  Crc32 crc;

  // 8 masked dummy-LRH bytes.
  static constexpr std::array<std::byte, 8> kOnes = {
      std::byte{0xFF}, std::byte{0xFF}, std::byte{0xFF}, std::byte{0xFF},
      std::byte{0xFF}, std::byte{0xFF}, std::byte{0xFF}, std::byte{0xFF}};
  crc.update(kOnes);

  // Masked IPv4 header: ToS, TTL, checksum → 0xFF.
  {
    std::vector<std::byte> hdr;
    hdr.reserve(net::kIpv4HeaderLen);
    BufWriter w(hdr);
    net::Ipv4Header masked = ip;
    masked.serialize(w);  // serializes with recomputed checksum
    hdr[1] = std::byte{0xFF};               // ToS (DSCP/ECN)
    hdr[8] = std::byte{0xFF};               // TTL
    hdr[10] = hdr[11] = std::byte{0xFF};    // header checksum
    crc.update(hdr);
  }

  // Masked UDP header: checksum → 0xFFFF.
  {
    std::vector<std::byte> hdr;
    hdr.reserve(net::kUdpHeaderLen);
    BufWriter w(hdr);
    udp.serialize(w);
    hdr[6] = hdr[7] = std::byte{0xFF};
    crc.update(hdr);
  }

  // BTH with resv8a (byte 4 of BTH — top byte of the dest-QP word) masked.
  if (bth_to_payload.size() < kBthLen) return 0;
  {
    std::array<std::byte, kBthLen> bth;
    std::memcpy(bth.data(), bth_to_payload.data(), kBthLen);
    bth[4] = std::byte{0xFF};
    crc.update(bth);
  }

  // Remaining transport headers + payload (excluding the iCRC itself, which
  // the caller already sliced off).
  crc.update(bth_to_payload.subspan(kBthLen));
  return crc.value();
}

namespace {

struct FrameSlices {
  net::Ipv4Header ip;
  net::UdpHeader udp;
  std::size_t roce_off;   // offset of BTH within the frame
  std::size_t roce_len;   // BTH .. payload (excludes the 4 iCRC bytes)
};

std::optional<FrameSlices> slice_frame(std::span<const std::byte> frame) {
  const auto parsed = net::parse_udp_frame(frame);
  if (!parsed) return std::nullopt;
  if (parsed->payload.size() < kBthLen + kIcrcLen) return std::nullopt;
  FrameSlices s;
  s.ip = parsed->ip;
  s.udp = parsed->udp;
  s.roce_off = static_cast<std::size_t>(parsed->payload.data() - frame.data());
  s.roce_len = parsed->payload.size() - kIcrcLen;
  return s;
}

}  // namespace

bool finalize_frame_icrc(std::span<std::byte> frame) {
  const auto s = slice_frame(frame);
  if (!s) return false;
  const std::uint32_t icrc =
      compute_icrc(s->ip, s->udp, frame.subspan(s->roce_off, s->roce_len));
  std::memcpy(frame.data() + s->roce_off + s->roce_len, &icrc, kIcrcLen);
  return true;
}

bool verify_frame_icrc(std::span<const std::byte> frame) {
  const auto s = slice_frame(frame);
  if (!s) return false;
  const std::uint32_t expect =
      compute_icrc(s->ip, s->udp, frame.subspan(s->roce_off, s->roce_len));
  std::uint32_t got;
  std::memcpy(&got, frame.data() + s->roce_off + s->roce_len, kIcrcLen);
  return got == expect;
}

}  // namespace dart::rdma
