#include "rdma/roce.hpp"

#include <array>
#include <cstring>
#include <utility>

#include "common/hash.hpp"
#include "net/checksum.hpp"

namespace dart::rdma {

// ---------------------------------------------------------------------------
// BTH
// ---------------------------------------------------------------------------

void Bth::serialize(BufWriter& w) const {
  w.u8(static_cast<std::uint8_t>(opcode));
  std::uint8_t flags = 0;
  if (solicited) flags |= 0x80;
  if (mig_req) flags |= 0x40;
  flags |= static_cast<std::uint8_t>((pad_count & 0x3u) << 4);
  // low nibble: transport header version (0)
  w.u8(flags);
  w.be16(pkey);
  w.be32(dest_qp & 0x00FF'FFFFu);  // top byte reserved (resv8a slot is byte 8)
  std::uint32_t psn_word = psn & 0x00FF'FFFFu;
  if (ack_req) psn_word |= 0x8000'0000u;
  w.be32(psn_word);
}

std::optional<Bth> Bth::parse(BufReader& r) {
  Bth h;
  const std::uint8_t op = r.u8();
  const std::uint8_t flags = r.u8();
  h.pkey = r.be16();
  const std::uint32_t qp_word = r.be32();
  const std::uint32_t psn_word = r.be32();
  if (!r.ok()) return std::nullopt;
  switch (op) {
    case static_cast<std::uint8_t>(Opcode::kRcRdmaWriteOnly):
    case static_cast<std::uint8_t>(Opcode::kRcCompareSwap):
    case static_cast<std::uint8_t>(Opcode::kRcFetchAdd):
    case static_cast<std::uint8_t>(Opcode::kUcRdmaWriteOnly):
      h.opcode = static_cast<Opcode>(op);
      break;
    default:
      return std::nullopt;  // opcode not supported by this RNIC model
  }
  h.solicited = (flags & 0x80) != 0;
  h.mig_req = (flags & 0x40) != 0;
  h.pad_count = (flags >> 4) & 0x3;
  if ((flags & 0x0F) != 0) return std::nullopt;  // header version must be 0
  h.dest_qp = qp_word & 0x00FF'FFFFu;
  h.ack_req = (psn_word & 0x8000'0000u) != 0;
  h.psn = psn_word & 0x00FF'FFFFu;
  return h;
}

// ---------------------------------------------------------------------------
// RETH / AtomicETH
// ---------------------------------------------------------------------------

void Reth::serialize(BufWriter& w) const {
  w.be64(vaddr);
  w.be32(rkey);
  w.be32(dma_length);
}

std::optional<Reth> Reth::parse(BufReader& r) {
  Reth h;
  h.vaddr = r.be64();
  h.rkey = r.be32();
  h.dma_length = r.be32();
  if (!r.ok()) return std::nullopt;
  return h;
}

void AtomicEth::serialize(BufWriter& w) const {
  w.be64(vaddr);
  w.be32(rkey);
  w.be64(swap_add);
  w.be64(compare);
}

std::optional<AtomicEth> AtomicEth::parse(BufReader& r) {
  AtomicEth h;
  h.vaddr = r.be64();
  h.rkey = r.be32();
  h.swap_add = r.be64();
  h.compare = r.be64();
  if (!r.ok()) return std::nullopt;
  return h;
}

// ---------------------------------------------------------------------------
// Request serialize / parse
// ---------------------------------------------------------------------------

std::size_t serialize_write(BufWriter& w, const Bth& bth, const Reth& reth,
                            std::span<const std::byte> payload) {
  bth.serialize(w);
  reth.serialize(w);
  w.bytes(payload);
  const std::size_t icrc_off = w.size();
  w.zeros(kIcrcLen);  // placeholder; finalize_frame_icrc fills it
  return icrc_off;
}

std::size_t serialize_atomic(BufWriter& w, const Bth& bth,
                             const AtomicEth& aeth) {
  bth.serialize(w);
  aeth.serialize(w);
  const std::size_t icrc_off = w.size();
  w.zeros(kIcrcLen);
  return icrc_off;
}

std::optional<RoceRequest> parse_request(std::span<const std::byte> udp_payload) {
  if (udp_payload.size() < kBthLen + kIcrcLen) return std::nullopt;

  BufReader r(udp_payload.first(udp_payload.size() - kIcrcLen));
  RoceRequest req;
  const auto bth = Bth::parse(r);
  if (!bth) return std::nullopt;
  req.bth = *bth;

  if (is_write(req.bth.opcode)) {
    const auto reth = Reth::parse(r);
    if (!reth) return std::nullopt;
    req.reth = *reth;
    req.payload = r.rest();
    if (req.payload.size() != req.reth->dma_length) return std::nullopt;
  } else if (is_atomic(req.bth.opcode)) {
    const auto aeth = AtomicEth::parse(r);
    if (!aeth) return std::nullopt;
    req.atomic_eth = *aeth;
    if (r.remaining() != 0) return std::nullopt;
  } else {
    return std::nullopt;
  }

  // Trailing iCRC, little-endian per rxe convention.
  const auto* icrc_bytes = udp_payload.data() + udp_payload.size() - kIcrcLen;
  std::memcpy(&req.icrc, icrc_bytes, kIcrcLen);
  return req;
}

// ---------------------------------------------------------------------------
// iCRC
// ---------------------------------------------------------------------------

std::uint32_t compute_icrc(const net::Ipv4Header& ip, const net::UdpHeader& udp,
                           std::span<const std::byte> bth_to_payload) {
  Crc32 crc;

  // 8 masked dummy-LRH bytes.
  static constexpr std::array<std::byte, 8> kOnes = {
      std::byte{0xFF}, std::byte{0xFF}, std::byte{0xFF}, std::byte{0xFF},
      std::byte{0xFF}, std::byte{0xFF}, std::byte{0xFF}, std::byte{0xFF}};
  crc.update(kOnes);

  // Masked IPv4 header: ToS, TTL, checksum → 0xFF.
  {
    std::vector<std::byte> hdr;
    hdr.reserve(net::kIpv4HeaderLen);
    BufWriter w(hdr);
    net::Ipv4Header masked = ip;
    masked.serialize(w);  // serializes with recomputed checksum
    hdr[1] = std::byte{0xFF};               // ToS (DSCP/ECN)
    hdr[8] = std::byte{0xFF};               // TTL
    hdr[10] = hdr[11] = std::byte{0xFF};    // header checksum
    crc.update(hdr);
  }

  // Masked UDP header: checksum → 0xFFFF.
  {
    std::vector<std::byte> hdr;
    hdr.reserve(net::kUdpHeaderLen);
    BufWriter w(hdr);
    udp.serialize(w);
    hdr[6] = hdr[7] = std::byte{0xFF};
    crc.update(hdr);
  }

  // BTH with resv8a (byte 4 of BTH — top byte of the dest-QP word) masked.
  if (bth_to_payload.size() < kBthLen) return 0;
  {
    std::array<std::byte, kBthLen> bth;
    std::memcpy(bth.data(), bth_to_payload.data(), kBthLen);
    bth[4] = std::byte{0xFF};
    crc.update(bth);
  }

  // Remaining transport headers + payload (excluding the iCRC itself, which
  // the caller already sliced off).
  crc.update(bth_to_payload.subspan(kBthLen));
  return crc.value();
}

Crc32 icrc_prefix_state(std::span<const std::byte> frame) noexcept {
  Crc32 crc;
  std::array<std::byte, 8> lrh;
  lrh.fill(std::byte{0xFF});  // masked dummy LRH
  crc.update(lrh);
  // IP + UDP headers + BTH bytes 0..7, masked in place on a stack copy.
  std::array<std::byte, net::kIpv4HeaderLen + net::kUdpHeaderLen + 8> hdr;
  std::memcpy(hdr.data(), frame.data() + net::kEthernetHeaderLen, hdr.size());
  hdr[1] = std::byte{0xFF};                        // IP ToS (DSCP/ECN)
  hdr[8] = std::byte{0xFF};                        // IP TTL
  hdr[10] = hdr[11] = std::byte{0xFF};             // IP header checksum
  hdr[net::kIpv4HeaderLen + 6] = std::byte{0xFF};  // UDP checksum
  hdr[net::kIpv4HeaderLen + 7] = std::byte{0xFF};
  hdr[net::kIpv4HeaderLen + net::kUdpHeaderLen + 4] = std::byte{0xFF};  // resv8a
  crc.update(hdr);
  return crc;
}

namespace {

// Computes the iCRC straight from the wire bytes — no header reparse, no
// reserialization, no allocation — for the canonical frame shape every frame
// in this simulator has: options-free IPv4, no fragmentation, valid IP
// checksum. Returns {icrc offset, icrc} or nullopt when the frame needs the
// general slice_frame path (which then accepts or rejects it as before).
// The field masking matches compute_icrc exactly, so for any frame both
// paths accept, the value is identical.
std::optional<std::pair<std::size_t, std::uint32_t>> compute_icrc_wire(
    std::span<const std::byte> frame) noexcept {
  constexpr std::size_t kEth = net::kEthernetHeaderLen;
  constexpr std::size_t kRoceOff =
      kEth + net::kIpv4HeaderLen + net::kUdpHeaderLen;
  if (frame.size() < kRoceOff + kBthLen + kIcrcLen) return std::nullopt;
  if (frame[12] != std::byte{0x08} || frame[13] != std::byte{0x00}) {
    return std::nullopt;  // not IPv4
  }
  if (frame[kEth] != std::byte{0x45}) return std::nullopt;  // options / not v4
  if (frame[kEth + 6] != std::byte{0} || frame[kEth + 7] != std::byte{0}) {
    return std::nullopt;  // fragmented — reserializing path normalizes these
  }
  const auto proto = std::to_integer<std::uint8_t>(frame[kEth + 9]);
  if (proto != net::kIpProtoUdp && proto != 6) return std::nullopt;
  if (net::internet_checksum(frame.subspan(kEth, net::kIpv4HeaderLen)) != 0) {
    return std::nullopt;  // slice_frame would reject; keep verdicts identical
  }
  const std::size_t udp_len =
      (std::to_integer<std::size_t>(frame[kEth + net::kIpv4HeaderLen + 4])
       << 8) |
      std::to_integer<std::size_t>(frame[kEth + net::kIpv4HeaderLen + 5]);
  if (udp_len < net::kUdpHeaderLen + kBthLen + kIcrcLen) return std::nullopt;
  const std::size_t payload_len = udp_len - net::kUdpHeaderLen;
  if (frame.size() - kRoceOff < payload_len) return std::nullopt;
  const std::size_t icrc_off = kRoceOff + payload_len - kIcrcLen;

  Crc32 crc = icrc_prefix_state(frame);
  crc.update(frame.subspan(kIcrcVariantOffset, icrc_off - kIcrcVariantOffset));
  return std::pair{icrc_off, crc.value()};
}

struct FrameSlices {
  net::Ipv4Header ip;
  net::UdpHeader udp;
  std::size_t roce_off;   // offset of BTH within the frame
  std::size_t roce_len;   // BTH .. payload (excludes the 4 iCRC bytes)
};

std::optional<FrameSlices> slice_frame(std::span<const std::byte> frame) {
  const auto parsed = net::parse_udp_frame(frame);
  if (!parsed) return std::nullopt;
  if (parsed->payload.size() < kBthLen + kIcrcLen) return std::nullopt;
  FrameSlices s;
  s.ip = parsed->ip;
  s.udp = parsed->udp;
  s.roce_off = static_cast<std::size_t>(parsed->payload.data() - frame.data());
  s.roce_len = parsed->payload.size() - kIcrcLen;
  return s;
}

}  // namespace

bool finalize_frame_icrc(std::span<std::byte> frame) {
  if (const auto fast = compute_icrc_wire(frame)) {
    std::memcpy(frame.data() + fast->first, &fast->second, kIcrcLen);
    return true;
  }
  const auto s = slice_frame(frame);
  if (!s) return false;
  const std::uint32_t icrc =
      compute_icrc(s->ip, s->udp, frame.subspan(s->roce_off, s->roce_len));
  std::memcpy(frame.data() + s->roce_off + s->roce_len, &icrc, kIcrcLen);
  return true;
}

bool verify_frame_icrc(std::span<const std::byte> frame) {
  if (const auto fast = compute_icrc_wire(frame)) {
    std::uint32_t got;
    std::memcpy(&got, frame.data() + fast->first, kIcrcLen);
    return got == fast->second;
  }
  const auto s = slice_frame(frame);
  if (!s) return false;
  const std::uint32_t expect =
      compute_icrc(s->ip, s->udp, frame.subspan(s->roce_off, s->roce_len));
  std::uint32_t got;
  std::memcpy(&got, frame.data() + s->roce_off + s->roce_len, kIcrcLen);
  return got == expect;
}

// ---------------------------------------------------------------------------
// Fused single-pass classification
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] inline std::uint16_t load_be16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>(
      (std::to_integer<std::uint16_t>(p[0]) << 8) |
      std::to_integer<std::uint16_t>(p[1]));
}

[[nodiscard]] inline std::uint32_t load_be32(const std::byte* p) noexcept {
  return (std::to_integer<std::uint32_t>(p[0]) << 24) |
         (std::to_integer<std::uint32_t>(p[1]) << 16) |
         (std::to_integer<std::uint32_t>(p[2]) << 8) |
         std::to_integer<std::uint32_t>(p[3]);
}

[[nodiscard]] inline std::uint64_t load_be64(const std::byte* p) noexcept {
  return (static_cast<std::uint64_t>(load_be32(p)) << 32) | load_be32(p + 4);
}

}  // namespace

WireClass classify_wire_frame(std::span<const std::byte> frame,
                              bool check_icrc) noexcept {
  using V = WireClass::Verdict;
  constexpr std::size_t kEth = net::kEthernetHeaderLen;
  constexpr std::size_t kRoceOff =
      kEth + net::kIpv4HeaderLen + net::kUdpHeaderLen;
  // Frames past standard MTU size take the layered path; the fused iCRC uses
  // a fixed stack buffer.
  constexpr std::size_t kMaxFused = 1536;

  WireClass out;
  if (frame.size() < kRoceOff + kBthLen + kIcrcLen || frame.size() > kMaxFused) {
    return out;
  }
  const std::byte* f = frame.data();
  if (f[12] != std::byte{0x08} || f[13] != std::byte{0x00}) return out;
  if (f[kEth] != std::byte{0x45}) return out;  // options / not v4
  if (f[kEth + 6] != std::byte{0} || f[kEth + 7] != std::byte{0}) {
    return out;  // fragmented
  }
  if (std::to_integer<std::uint8_t>(f[kEth + 9]) != net::kIpProtoUdp) {
    return out;  // parse_udp_frame also admits TCP; let it decide
  }
  if (net::internet_checksum(frame.subspan(kEth, net::kIpv4HeaderLen)) != 0) {
    return out;
  }
  const std::size_t udp_len = load_be16(f + kEth + net::kIpv4HeaderLen + 4);
  if (udp_len < net::kUdpHeaderLen + kBthLen + kIcrcLen) {
    return out;  // runt UDP / RoCE — verdict depends on layered sub-checks
  }
  const std::size_t payload_len = udp_len - net::kUdpHeaderLen;
  if (frame.size() - kRoceOff < payload_len) return out;  // truncated

  out.udp_dst_port = load_be16(f + kEth + net::kIpv4HeaderLen + 2);
  out.udp_payload = frame.subspan(kRoceOff, payload_len);
  if (out.udp_dst_port != net::kRoceV2UdpPort) {
    out.verdict = V::kOtherPort;
    return out;
  }

  const std::size_t icrc_off = kRoceOff + payload_len - kIcrcLen;
  if (check_icrc) {
    // One contiguous masked image: 8 dummy-LRH 0xFF bytes, then the frame
    // from the IP header to the iCRC slot with the seven masked header bytes
    // overwritten. A single CRC stream — long enough to engage the PCLMUL
    // folds — equal by construction to icrc_prefix_state resumed over the
    // variant bytes (CRC streaming is associative over concatenation).
    alignas(16) std::byte buf[8 + kMaxFused];
    std::memset(buf, 0xFF, 8);
    std::memcpy(buf + 8, f + kEth, icrc_off - kEth);
    buf[8 + 1] = std::byte{0xFF};                        // IP ToS (DSCP/ECN)
    buf[8 + 8] = std::byte{0xFF};                        // IP TTL
    buf[8 + 10] = buf[8 + 11] = std::byte{0xFF};         // IP header checksum
    buf[8 + net::kIpv4HeaderLen + 6] = std::byte{0xFF};  // UDP checksum
    buf[8 + net::kIpv4HeaderLen + 7] = std::byte{0xFF};
    buf[8 + net::kIpv4HeaderLen + net::kUdpHeaderLen + 4] =
        std::byte{0xFF};  // BTH resv8a
    const std::uint32_t expect = ~dart::detail::crc32_update_dispatch(
        0xFFFF'FFFFu, buf, 8 + (icrc_off - kEth));
    std::uint32_t got;
    std::memcpy(&got, f + icrc_off, kIcrcLen);
    if (got != expect) {
      out.verdict = V::kBadIcrc;
      return out;
    }
  }

  // Inline request parse — verdict-identical to parse_request().
  const std::byte* bth = f + kRoceOff;
  const std::uint8_t op = std::to_integer<std::uint8_t>(bth[0]);
  const std::uint8_t flags = std::to_integer<std::uint8_t>(bth[1]);
  switch (op) {
    case static_cast<std::uint8_t>(Opcode::kRcRdmaWriteOnly):
    case static_cast<std::uint8_t>(Opcode::kRcCompareSwap):
    case static_cast<std::uint8_t>(Opcode::kRcFetchAdd):
    case static_cast<std::uint8_t>(Opcode::kUcRdmaWriteOnly):
      break;
    default:
      out.verdict = V::kBadRequest;
      return out;
  }
  if ((flags & 0x0F) != 0) {  // header version must be 0
    out.verdict = V::kBadRequest;
    return out;
  }
  RoceRequest& req = out.req;
  req.bth.opcode = static_cast<Opcode>(op);
  req.bth.solicited = (flags & 0x80) != 0;
  req.bth.mig_req = (flags & 0x40) != 0;
  req.bth.pad_count = (flags >> 4) & 0x3;
  req.bth.pkey = load_be16(bth + 2);
  req.bth.dest_qp = load_be32(bth + 4) & 0x00FF'FFFFu;
  const std::uint32_t psn_word = load_be32(bth + 8);
  req.bth.ack_req = (psn_word & 0x8000'0000u) != 0;
  req.bth.psn = psn_word & 0x00FF'FFFFu;

  const std::size_t roce_len = payload_len - kIcrcLen;
  if (is_write(req.bth.opcode)) {
    if (roce_len < kBthLen + kRethLen) {
      out.verdict = V::kBadRequest;
      return out;
    }
    Reth reth;
    reth.vaddr = load_be64(bth + kBthLen);
    reth.rkey = load_be32(bth + kBthLen + 8);
    reth.dma_length = load_be32(bth + kBthLen + 12);
    req.reth = reth;
    req.payload = frame.subspan(kRoceOff + kBthLen + kRethLen,
                                roce_len - kBthLen - kRethLen);
    if (req.payload.size() != reth.dma_length) {
      out.verdict = V::kBadRequest;
      return out;
    }
  } else {  // atomic: AtomicETH then nothing else before the iCRC
    if (roce_len != kBthLen + kAtomicEthLen) {
      out.verdict = V::kBadRequest;
      return out;
    }
    AtomicEth aeth;
    aeth.vaddr = load_be64(bth + kBthLen);
    aeth.rkey = load_be32(bth + kBthLen + 8);
    aeth.swap_add = load_be64(bth + kBthLen + 12);
    aeth.compare = load_be64(bth + kBthLen + 20);
    req.atomic_eth = aeth;
  }
  std::memcpy(&req.icrc, f + icrc_off, kIcrcLen);
  out.verdict = V::kOk;
  return out;
}

}  // namespace dart::rdma
