#include "rdma/memory_region.hpp"

#include <algorithm>

#include "common/random.hpp"

namespace dart::rdma {

MemoryRegistry::MemoryRegistry(std::uint64_t rkey_seed)
    : rkey_state_(rkey_seed) {}

PdHandle MemoryRegistry::alloc_pd() {
  const PdHandle pd = next_pd_++;
  pds_.push_back(pd);
  return pd;
}

Result<MemoryRegion> MemoryRegistry::register_mr(PdHandle pd,
                                                 std::span<std::byte> buffer,
                                                 std::uint64_t base_vaddr,
                                                 Access access) {
  if (std::find(pds_.begin(), pds_.end(), pd) == pds_.end()) {
    return Error{"bad_pd", "protection domain does not exist"};
  }
  if (buffer.empty()) {
    return Error{"empty_mr", "cannot register an empty buffer"};
  }
  // Reject overlap with an existing MR's virtual range — ambiguity about
  // which rkey governs a vaddr would make validation meaningless.
  for (const auto& mr : mrs_) {
    const std::uint64_t a0 = mr.base_vaddr;
    const std::uint64_t a1 = mr.base_vaddr + mr.buffer.size();
    const std::uint64_t b0 = base_vaddr;
    const std::uint64_t b1 = base_vaddr + buffer.size();
    if (a0 < b1 && b0 < a1) {
      return Error{"mr_overlap", "virtual range overlaps an existing MR"};
    }
  }

  MemoryRegion mr;
  mr.handle = next_mr_++;
  mr.pd = pd;
  mr.base_vaddr = base_vaddr;
  mr.buffer = buffer;
  mr.access = access;
  // SplitMix-generated rkey; avoid 0 which we reserve as "invalid".
  SplitMix64 sm(rkey_state_);
  do {
    mr.rkey = static_cast<std::uint32_t>(sm.next());
  } while (mr.rkey == 0 || find_by_rkey(mr.rkey) != nullptr);
  rkey_state_ = sm.next();

  mrs_.push_back(mr);
  return mrs_.back();
}

Status MemoryRegistry::deregister_mr(MrHandle handle) {
  const auto it =
      std::find_if(mrs_.begin(), mrs_.end(),
                   [&](const MemoryRegion& mr) { return mr.handle == handle; });
  if (it == mrs_.end()) {
    return Error{"bad_mr", "memory region does not exist"};
  }
  mrs_.erase(it);
  return {};
}

const MemoryRegion* MemoryRegistry::find_by_rkey(std::uint32_t rkey) const noexcept {
  for (const auto& mr : mrs_) {
    if (mr.rkey == rkey) return &mr;
  }
  return nullptr;
}

std::size_t MemoryRegistry::mr_count() const noexcept { return mrs_.size(); }

}  // namespace dart::rdma
