#include "rdma/qp.hpp"

#include <algorithm>

namespace dart::rdma {

bool QueuePair::accept_psn(std::uint32_t psn) noexcept {
  psn &= kPsnMask;
  if (type_ == QpType::kUc || policy_ == PsnPolicy::kIgnore) {
    ++counters_.accepted;
    expected_psn_.store((psn + 1) & kPsnMask, std::memory_order_relaxed);
    return true;
  }

  const std::uint32_t expected = expected_psn_.load(std::memory_order_relaxed);
  const std::uint32_t ahead = psn_distance(expected, psn);
  constexpr std::uint32_t kHalfWindow = 0x0080'0000u;

  if (policy_ == PsnPolicy::kStrict) {
    if (psn != expected) {
      ++counters_.psn_stale;
      return false;
    }
    ++counters_.accepted;
    expected_psn_.store((expected + 1) & kPsnMask, std::memory_order_relaxed);
    return true;
  }

  // kTolerateLoss: accept anything in the forward half-window. `ahead` is
  // computed modulo 2^24, so a gap that straddles the wraparound (expected
  // 0xFFFFFF, received 0x000001) still counts exactly the PSNs in
  // [expected, psn) — the reports that were lost — with no off-by-one.
  if (ahead >= kHalfWindow) {
    ++counters_.psn_stale;  // behind us: duplicate or badly delayed
    return false;
  }
  counters_.psn_gaps += ahead;  // ahead > 0 means `ahead` reports were lost
  ++counters_.accepted;
  expected_psn_.store((psn + 1) & kPsnMask, std::memory_order_relaxed);
  return true;
}

Status QpRegistry::create(std::uint32_t qpn, QpType type, PdHandle pd,
                          PsnPolicy policy) {
  if (find(qpn) != nullptr) {
    return Error{"qp_exists", "queue pair number already in use"};
  }
  if (qpn > 0x00FF'FFFFu) {
    return Error{"bad_qpn", "queue pair numbers are 24-bit"};
  }
  qps_.emplace_back(qpn, type, pd, policy);
  return {};
}

QueuePair* QpRegistry::find(std::uint32_t qpn) noexcept {
  const auto it = std::find_if(qps_.begin(), qps_.end(),
                               [&](const QueuePair& qp) { return qp.qpn() == qpn; });
  return it == qps_.end() ? nullptr : &*it;
}

const QueuePair* QpRegistry::find(std::uint32_t qpn) const noexcept {
  return const_cast<QpRegistry*>(this)->find(qpn);
}

}  // namespace dart::rdma
