#include "rdma/rnic.hpp"

#include <algorithm>
#include <cstring>

#include "net/headers.hpp"
#include "rdma/multiwrite.hpp"

namespace dart::rdma {

bool SimulatedRnic::consume_stall() noexcept {
  // Injected stall: a wedged pipeline drops frames before any parsing. The
  // decrement loop (rather than fetch_sub) keeps the count exact when shard
  // workers race on the last few stalled frames.
  for (std::uint64_t left = stall_remaining_.load(std::memory_order_relaxed);
       left > 0;) {
    if (stall_remaining_.compare_exchange_weak(left, left - 1,
                                               std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

std::optional<Completion> SimulatedRnic::process_frame(
    std::span<const std::byte> frame) {
  ++counters_.frames;
  if (consume_stall()) {
    ++counters_.stalled;
    return std::nullopt;
  }
  LookupCache lc;
  const WireClass cls = classify_wire_frame(frame, validate_icrc_);
  return dispatch_classified(cls, frame, lc);
}

std::optional<Completion> SimulatedRnic::dispatch_classified(
    const WireClass& cls, std::span<const std::byte> frame, LookupCache& lc) {
  using V = WireClass::Verdict;
  switch (cls.verdict) {
    case V::kFallback:
      return process_frame_slow(frame, lc);
    case V::kOtherPort:
      if (dta_enabled_ && cls.udp_dst_port == kDtaUdpPort) {
        return execute_multiwrite(cls.udp_payload);
      }
      ++counters_.not_roce;
      return std::nullopt;
    case V::kBadIcrc:
      ++counters_.bad_icrc;
      return std::nullopt;
    case V::kBadRequest:
      ++counters_.bad_opcode;
      return std::nullopt;
    case V::kOk:
      return admit_and_execute(cls.req, lc);
  }
  return std::nullopt;  // unreachable
}

std::optional<Completion> SimulatedRnic::process_frame_slow(
    std::span<const std::byte> frame, LookupCache& lc) {
  const auto parsed = net::parse_udp_frame(frame);
  if (!parsed) {
    ++counters_.not_roce;
    return std::nullopt;
  }
  if (dta_enabled_ && parsed->udp.dst_port == kDtaUdpPort) {
    return execute_multiwrite(parsed->payload);
  }
  if (parsed->udp.dst_port != net::kRoceV2UdpPort) {
    ++counters_.not_roce;
    return std::nullopt;
  }

  if (validate_icrc_ && !verify_frame_icrc(frame)) {
    ++counters_.bad_icrc;
    return std::nullopt;
  }

  const auto req = parse_request(parsed->payload);
  if (!req) {
    ++counters_.bad_opcode;
    return std::nullopt;
  }
  return admit_and_execute(*req, lc);
}

std::optional<Completion> SimulatedRnic::admit_and_execute(
    const RoceRequest& req, LookupCache& lc) {
  QueuePair* qp = find_qp(req.bth.dest_qp, lc);
  if (qp == nullptr) {
    ++counters_.unknown_qp;
    return std::nullopt;
  }
  if (qp->state() == QpState::kError) {
    // An errored RC QP refuses all work until the connection is torn down
    // and re-established (see QpState); the frame is lost by design.
    qp->count_error_drop();
    ++counters_.qp_error;
    return std::nullopt;
  }
  // Opcode transport class must match the QP type.
  const bool uc_op = is_unreliable(req.bth.opcode);
  if ((qp->type() == QpType::kUc) != uc_op) {
    ++counters_.bad_opcode;
    return std::nullopt;
  }
  if (!qp->accept_psn(req.bth.psn)) {
    ++counters_.psn_rejected;
    return std::nullopt;
  }

  auto completion = execute(req, lc);
  if (completion) {
    completion->qpn = qp->qpn();
    // PD check happens inside execute() via the MR; verify it matched the QP.
    ++counters_.executed;
    if (hook_) hook_(*completion);
  }
  return completion;
}

std::size_t SimulatedRnic::process_frames(
    std::span<const std::span<const std::byte>> frames) {
  constexpr std::size_t kBurst = 32;
  std::size_t executed = 0;
  WireClass cls[kBurst];
  bool stalled[kBurst];
  for (std::size_t base = 0; base < frames.size(); base += kBurst) {
    const std::size_t m = std::min(kBurst, frames.size() - base);
    LookupCache lc;

    // Stage 1: stateless classification — header walk + fused iCRC — for the
    // whole chunk. No RNIC state is read or written here beyond counters.
    for (std::size_t i = 0; i < m; ++i) {
      ++counters_.frames;
      stalled[i] = consume_stall();
      if (stalled[i]) {
        ++counters_.stalled;
        continue;
      }
      cls[i] = classify_wire_frame(frames[base + i], validate_icrc_);
    }

    // Stage 2: resolve each admitted frame's MR once (memoized) and prefetch
    // the DMA target line, so stage 3's stores hit warm cache. Advisory only;
    // every access check still runs in execute().
    for (std::size_t i = 0; i < m; ++i) {
      if (stalled[i] || cls[i].verdict != WireClass::Verdict::kOk) continue;
      const RoceRequest& req = cls[i].req;
      const bool atomic = is_atomic(req.bth.opcode);
      const std::uint64_t vaddr =
          atomic ? req.atomic_eth->vaddr : req.reth->vaddr;
      const std::uint32_t rkey = atomic ? req.atomic_eth->rkey : req.reth->rkey;
      const std::uint64_t len = atomic ? 8 : req.payload.size();
      const MemoryRegion* mr = find_mr(rkey, lc);
      if (mr != nullptr && mr->contains(vaddr, len)) {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(mr->at(vaddr), 1);
#endif
      }
    }

    // Stage 3: in-order admission + apply (PSN windows are stateful, so the
    // original frame order is preserved exactly).
    for (std::size_t i = 0; i < m; ++i) {
      if (stalled[i]) continue;
      if (dispatch_classified(cls[i], frames[base + i], lc)) ++executed;
    }
  }
  return executed;
}

std::optional<Completion> SimulatedRnic::execute(const RoceRequest& req,
                                                 LookupCache& lc) {
  const bool atomic = is_atomic(req.bth.opcode);
  const std::uint64_t vaddr =
      atomic ? req.atomic_eth->vaddr : req.reth->vaddr;
  const std::uint32_t rkey = atomic ? req.atomic_eth->rkey : req.reth->rkey;
  const std::uint64_t len = atomic ? 8 : req.payload.size();

  const MemoryRegion* mr = find_mr(rkey, lc);
  if (mr == nullptr) {
    ++counters_.bad_rkey;
    return std::nullopt;
  }
  QueuePair* qp = find_qp(req.bth.dest_qp, lc);
  if (qp != nullptr && qp->pd() != mr->pd) {
    ++counters_.pd_mismatch;
    return std::nullopt;
  }
  const Access want = atomic ? Access::kRemoteAtomic : Access::kRemoteWrite;
  if (!has_access(mr->access, want)) {
    ++counters_.access_denied;
    return std::nullopt;
  }
  if (!mr->contains(vaddr, len)) {
    ++counters_.out_of_bounds;
    return std::nullopt;
  }

  Completion c{};
  c.opcode = req.bth.opcode;
  c.vaddr = vaddr;
  c.length = static_cast<std::uint32_t>(len);

  if (!atomic) {
    std::memcpy(mr->at(vaddr), req.payload.data(), req.payload.size());
    ++counters_.writes;
    return c;
  }

  // Atomics operate on naturally aligned 64-bit words, big-endian on the
  // wire, host-endian in memory (the collector reads them natively).
  if ((vaddr & 0x7u) != 0) {
    ++counters_.unaligned_atomic;
    return std::nullopt;
  }
  std::uint64_t prior;
  std::memcpy(&prior, mr->at(vaddr), 8);
  c.atomic_prior = prior;

  if (req.bth.opcode == Opcode::kRcFetchAdd) {
    const std::uint64_t next = prior + req.atomic_eth->swap_add;
    std::memcpy(mr->at(vaddr), &next, 8);
    ++counters_.fetch_adds;
  } else {  // CompareSwap
    ++counters_.compare_swaps;
    if (prior == req.atomic_eth->compare) {
      std::memcpy(mr->at(vaddr), &req.atomic_eth->swap_add, 8);
    } else {
      ++counters_.cas_mismatches;
    }
  }
  return c;
}

std::optional<Completion> SimulatedRnic::execute_multiwrite(
    std::span<const std::byte> udp_payload) {
  const auto mw = parse_multiwrite(udp_payload);
  if (!mw) {
    ++counters_.bad_icrc;  // CRC/format failure, same class as a bad iCRC
    return std::nullopt;
  }
  const MemoryRegion* mr = memory_.find_by_rkey(mw->rkey);
  if (mr == nullptr) {
    ++counters_.bad_rkey;
    return std::nullopt;
  }
  if (!has_access(mr->access, Access::kRemoteWrite)) {
    ++counters_.access_denied;
    return std::nullopt;
  }
  // All-or-nothing: validate every target before the first DMA, so a bad
  // address cannot leave a half-applied group.
  for (const auto vaddr : mw->vaddrs) {
    if (!mr->contains(vaddr, mw->payload.size())) {
      ++counters_.out_of_bounds;
      return std::nullopt;
    }
  }
  for (const auto vaddr : mw->vaddrs) {
    std::memcpy(mr->at(vaddr), mw->payload.data(), mw->payload.size());
    ++counters_.writes;
  }
  ++counters_.multiwrite_frames;
  ++counters_.executed;

  Completion c{};
  c.opcode = Opcode::kRcRdmaWriteOnly;  // closest CQE analogue
  c.vaddr = mw->vaddrs.front();
  c.length = static_cast<std::uint32_t>(mw->payload.size() * mw->vaddrs.size());
  if (hook_) hook_(c);
  return c;
}

void SimulatedRnic::receive(net::Packet packet, std::uint64_t /*now_ns*/) {
  (void)process_frame(packet.bytes());
}

}  // namespace dart::rdma
