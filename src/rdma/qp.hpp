// Queue pairs and PSN tracking.
//
// DART switches keep one per-collector PSN counter in a register array (§6)
// and send RC WRITE ONLY packets. RC receivers normally enforce strictly
// in-order PSNs; a telemetry receiver cannot afford go-back-N recovery (the
// switch will not retransmit), so the model implements the policy the paper's
// design implies: accept monotonically advancing PSNs, tolerate gaps
// (= lost reports), and drop stale/duplicate PSNs. UC QPs always accept.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/atomic_counter.hpp"
#include "rdma/memory_region.hpp"

namespace dart::rdma {

enum class QpType : std::uint8_t { kRc, kUc };

// PSN acceptance policies for RC.
enum class PsnPolicy : std::uint8_t {
  kStrict,          // require exactly expected PSN (textbook RC)
  kTolerateLoss,    // accept any PSN >= expected (gaps = lost reports)
  kIgnore,          // accept everything (diagnostics)
};

// Counters are RelaxedCounter so one QP can be driven by several shard
// workers at once (the sharded ingest pipeline shares a single report QP).
struct QpCounters {
  RelaxedCounter accepted;
  RelaxedCounter psn_stale;     // duplicate / out-of-window
  RelaxedCounter psn_gaps;      // total PSNs skipped by gaps
  RelaxedCounter error_drops;   // packets refused while in kError
  RelaxedCounter reconnects;    // error → ready transitions
};

// RoCEv2 QP lifecycle, reduced to the two states a one-sided telemetry
// receiver can observe. A real RC QP that hits a fatal receive error moves
// to the Error state, refuses further work until the peer tears it down,
// and is re-created in RTR with a *fresh* starting PSN (IBA v1.5 §9.9.2 —
// reusing the old PSN window would mis-classify the peer's new stream as
// stale/duplicate). The switch side mirrors the reconnect by resetting its
// per-collector PSN register.
enum class QpState : std::uint8_t { kReady, kError };

class QueuePair {
 public:
  QueuePair(std::uint32_t qpn, QpType type, PdHandle pd,
            PsnPolicy policy = PsnPolicy::kTolerateLoss)
      : qpn_(qpn), type_(type), pd_(pd), policy_(policy) {}

  // Copyable so QpRegistry's vector can grow; the copy snapshots the
  // (atomic) PSN window and counters.
  QueuePair(const QueuePair& other) noexcept
      : qpn_(other.qpn_), type_(other.type_), pd_(other.pd_),
        policy_(other.policy_),
        expected_psn_(other.expected_psn_.load(std::memory_order_relaxed)),
        state_(other.state_.load(std::memory_order_relaxed)),
        counters_(other.counters_) {}
  QueuePair& operator=(const QueuePair& other) noexcept {
    qpn_ = other.qpn_;
    type_ = other.type_;
    pd_ = other.pd_;
    policy_ = other.policy_;
    expected_psn_.store(other.expected_psn_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    state_.store(other.state_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    counters_ = other.counters_;
    return *this;
  }

  [[nodiscard]] std::uint32_t qpn() const noexcept { return qpn_; }
  [[nodiscard]] QpType type() const noexcept { return type_; }
  [[nodiscard]] PdHandle pd() const noexcept { return pd_; }
  [[nodiscard]] const QpCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] std::uint32_t expected_psn() const noexcept {
    return expected_psn_.load(std::memory_order_relaxed);
  }

  void set_expected_psn(std::uint32_t psn) noexcept {
    expected_psn_.store(psn & kPsnMask, std::memory_order_relaxed);
  }

  [[nodiscard]] QpState state() const noexcept {
    return state_.load(std::memory_order_relaxed);
  }

  // Moves the QP to the Error state: every subsequent packet is refused
  // (counted in error_drops by the caller) until reconnect().
  void set_error() noexcept {
    state_.store(QpState::kError, std::memory_order_relaxed);
  }

  // Drain-and-reconnect: back to Ready with a fresh expected PSN, as a peer
  // re-establishing the connection would negotiate. Counts the transition.
  void reconnect(std::uint32_t fresh_psn = 0) noexcept {
    expected_psn_.store(fresh_psn & kPsnMask, std::memory_order_relaxed);
    state_.store(QpState::kReady, std::memory_order_relaxed);
    ++counters_.reconnects;
  }

  // Called by the RNIC when a packet arrives while in kError.
  void count_error_drop() noexcept { ++counters_.error_drops; }

  // Validates and advances the PSN window. Returns true if the packet should
  // be executed.
  //
  // Thread-safety: under kIgnore (and for UC QPs) this is safe to call from
  // many threads — counters and the (advisory) expected PSN are atomic. The
  // window-tracking policies (kStrict, kTolerateLoss) perform a
  // read-modify-write of the window and assume one caller at a time, which
  // matches their use: per-switch PSN streams terminate on dedicated QPs.
  [[nodiscard]] bool accept_psn(std::uint32_t psn) noexcept;

 private:
  static constexpr std::uint32_t kPsnMask = 0x00FF'FFFFu;
  // Forward distance in 24-bit PSN space; > half-window means "behind".
  [[nodiscard]] static std::uint32_t psn_distance(std::uint32_t from,
                                                  std::uint32_t to) noexcept {
    return (to - from) & kPsnMask;
  }

  std::uint32_t qpn_;
  QpType type_;
  PdHandle pd_;
  PsnPolicy policy_;
  std::atomic<std::uint32_t> expected_psn_{0};
  std::atomic<QpState> state_{QpState::kReady};
  QpCounters counters_;
};

// QP registry for one RNIC.
class QpRegistry {
 public:
  // Creates a QP with the given number (must be unique).
  Status create(std::uint32_t qpn, QpType type, PdHandle pd,
                PsnPolicy policy = PsnPolicy::kTolerateLoss);

  [[nodiscard]] QueuePair* find(std::uint32_t qpn) noexcept;
  [[nodiscard]] const QueuePair* find(std::uint32_t qpn) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return qps_.size(); }

  // Visits every QP (creation order) — how the observability adapters
  // aggregate per-QP counters without exposing the backing vector.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const QueuePair& qp : qps_) fn(qp);
  }

 private:
  std::vector<QueuePair> qps_;
};

}  // namespace dart::rdma
