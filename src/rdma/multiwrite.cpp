#include "rdma/multiwrite.hpp"

#include <cstring>

#include "common/bytes.hpp"
#include "common/hash.hpp"

namespace dart::rdma {

std::vector<std::byte> encode_multiwrite(std::uint32_t rkey, std::uint32_t psn,
                                         std::span<const std::uint64_t> vaddrs,
                                         std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(14 + payload.size() + vaddrs.size() * 8 + 4);
  BufWriter w(out);
  w.be16(0x4454);  // "DT"
  w.u8(kDtaVersion);
  w.u8(static_cast<std::uint8_t>(vaddrs.size()));
  w.be32(rkey);
  w.be32(psn);
  w.be16(static_cast<std::uint16_t>(payload.size()));
  w.bytes(payload);
  for (const auto vaddr : vaddrs) w.be64(vaddr);
  const std::uint32_t crc = crc32(out);
  // Trailer little-endian, mirroring the iCRC convention in roce.cpp.
  out.push_back(static_cast<std::byte>(crc & 0xFF));
  out.push_back(static_cast<std::byte>((crc >> 8) & 0xFF));
  out.push_back(static_cast<std::byte>((crc >> 16) & 0xFF));
  out.push_back(static_cast<std::byte>((crc >> 24) & 0xFF));
  return out;
}

std::optional<DtaMultiWrite> parse_multiwrite(
    std::span<const std::byte> udp_payload) {
  // Reject truncated frames before ANY `size() - 4` span arithmetic: the
  // sizes are unsigned, so a frame shorter than the CRC trailer alone would
  // underflow into a huge subspan length. The CRC guard alone is not enough
  // — it must not even be computed on a short frame.
  if (udp_payload.size() < kDtaCrcLen) return std::nullopt;
  // Minimum well-formed frame: full header + ≥1 target + CRC trailer.
  if (udp_payload.size() < kDtaHeaderLen + 8 + kDtaCrcLen) return std::nullopt;

  // CRC trailer first.
  std::uint32_t carried;
  std::memcpy(&carried, udp_payload.data() + udp_payload.size() - kDtaCrcLen,
              kDtaCrcLen);
  if (crc32(udp_payload.first(udp_payload.size() - kDtaCrcLen)) != carried) {
    return std::nullopt;
  }

  BufReader r(udp_payload.first(udp_payload.size() - kDtaCrcLen));
  if (r.be16() != 0x4454) return std::nullopt;
  if (r.u8() != kDtaVersion) return std::nullopt;
  const std::uint8_t count = r.u8();
  if (count == 0 || count > kDtaMaxTargets) return std::nullopt;

  DtaMultiWrite mw;
  mw.rkey = r.be32();
  mw.psn = r.be32();
  const std::uint16_t data_len = r.be16();
  // A report always carries at least a checksum byte, and the remaining
  // bytes must cover the declared data length plus every target address —
  // checked explicitly so a lying length field cannot push the payload view
  // past the end (BufReader would catch it too; this keeps the reject
  // unconditional and obvious).
  if (data_len == 0) return std::nullopt;
  if (r.remaining() < data_len + static_cast<std::size_t>(count) * 8) {
    return std::nullopt;
  }
  mw.payload = r.view(data_len);
  if (mw.payload.size() != data_len) return std::nullopt;
  mw.vaddrs.reserve(count);
  for (std::uint8_t i = 0; i < count; ++i) mw.vaddrs.push_back(r.be64());
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return mw;
}

}  // namespace dart::rdma
