// SimulatedRnic — the collector-side RDMA NIC.
//
// The paper's central claim is architectural: the collector's CPU never
// touches a telemetry report; the NIC parses the RoCEv2 request and DMAs the
// payload straight into registered memory (§2, §3.1). This class is that
// NIC. It implements, in software, the exact request-validation pipeline a
// hardware RNIC applies to an inbound one-sided operation:
//
//   UDP port 4791 → iCRC check → QP lookup → PSN window → rkey lookup →
//   PD match → access-flag check → bounds check → DMA / atomic execute.
//
// Every rejection is counted (the counters drive tests and the robustness
// bench). The RNIC is also a net::Node so it can terminate links in the
// fabric simulator; the baselines in src/baseline deliberately do all of
// this work on "the CPU" instead, which is the Fig. 1 comparison.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "common/atomic_counter.hpp"
#include "common/result.hpp"
#include "net/netsim.hpp"
#include "rdma/memory_region.hpp"
#include "rdma/qp.hpp"
#include "rdma/roce.hpp"

namespace dart::rdma {

// All counters are RelaxedCounter: the sharded ingest pipeline drives one
// RNIC from several shard workers concurrently (a hardware RNIC services
// many DMA engines the same way), so the statistics must tolerate parallel
// increments without a data race.
struct RnicCounters {
  RelaxedCounter frames;          // frames seen
  RelaxedCounter executed;        // operations applied to memory
  RelaxedCounter writes;
  RelaxedCounter multiwrite_frames;  // §7 DTA multiwrite frames executed
  RelaxedCounter fetch_adds;
  RelaxedCounter compare_swaps;
  RelaxedCounter cas_mismatches;  // CAS executed but compare failed
  RelaxedCounter not_roce;        // not UDP/4791 or unparsable frame
  RelaxedCounter bad_icrc;
  RelaxedCounter bad_opcode;
  RelaxedCounter unknown_qp;
  RelaxedCounter psn_rejected;
  RelaxedCounter bad_rkey;
  RelaxedCounter pd_mismatch;
  RelaxedCounter access_denied;
  RelaxedCounter out_of_bounds;
  RelaxedCounter unaligned_atomic;
  RelaxedCounter stalled;         // dropped during an injected RNIC stall
  RelaxedCounter qp_error;        // refused: target QP in the Error state
};

// Completion record for an executed operation (what a CQE would carry).
struct Completion {
  Opcode opcode;
  std::uint32_t qpn;
  std::uint64_t vaddr;
  std::uint32_t length;        // bytes written (WRITE) or 8 (atomics)
  std::uint64_t atomic_prior;  // original value at vaddr for atomics
};

class SimulatedRnic : public net::Node {
 public:
  explicit SimulatedRnic(std::uint64_t rkey_seed = 0x5EED)
      : memory_(rkey_seed) {}

  // --- Verbs-like control-plane API (collector host calls these) ---------
  [[nodiscard]] PdHandle alloc_pd() { return memory_.alloc_pd(); }

  [[nodiscard]] Result<MemoryRegion> register_mr(PdHandle pd,
                                                 std::span<std::byte> buffer,
                                                 std::uint64_t base_vaddr,
                                                 Access access) {
    return memory_.register_mr(pd, buffer, base_vaddr, access);
  }

  Status create_qp(std::uint32_t qpn, QpType type, PdHandle pd,
                   PsnPolicy policy = PsnPolicy::kTolerateLoss) {
    return qps_.create(qpn, type, pd, policy);
  }

  // --- Data plane ---------------------------------------------------------

  // Processes one Ethernet frame. Returns the completion if an operation was
  // executed; counters explain every rejection.
  //
  // Thread-safety: concurrent calls are safe provided (a) the control plane
  // (register_mr / create_qp / set_*) is quiescent, (b) target QPs use
  // PsnPolicy::kIgnore or are driven by one thread each (see
  // QueuePair::accept_psn), and (c) callers do not issue overlapping writes
  // to the same bytes — the discipline the sharded ingest pipeline enforces
  // by routing frames to shard workers by slot-address range. This mirrors
  // hardware: an RNIC runs many DMA engines against one memory map.
  std::optional<Completion> process_frame(std::span<const std::byte> frame);

  // Batch entry point: processes `frames` in order and returns how many
  // executed an operation (the per-frame verdicts land in counters(), same
  // as process_frame). This is how the shard workers hand over a whole ring
  // drain in one call — the batch analogue of an RNIC pulling a doorbell'd
  // chain of receive descriptors. Internally the batch runs in staged chunks:
  // stateless classification (header walk + fused iCRC) for the whole chunk,
  // then MR resolution with software prefetch of the DMA target lines, then
  // in-order admission and apply (PSN windows are stateful, so ordering is
  // preserved exactly). Verdicts and counters are identical to calling
  // process_frame per frame.
  std::size_t process_frames(std::span<const std::span<const std::byte>> frames);

  // net::Node — frames delivered by the fabric simulator.
  void receive(net::Packet packet, std::uint64_t now_ns) override;

  // Optional hook invoked after every executed operation (collectors use it
  // to track ingest statistics without touching the data path).
  void set_completion_hook(std::function<void(const Completion&)> hook) {
    hook_ = std::move(hook);
  }

  [[nodiscard]] const RnicCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const QpRegistry& qps() const noexcept { return qps_; }
  // Mutable QP access for the recovery control plane (fault injection and
  // the collector's drain/reconnect path); nullptr if no such QPN.
  [[nodiscard]] QueuePair* qp(std::uint32_t qpn) noexcept {
    return qps_.find(qpn);
  }

  // --- fault injection (src/fault) ----------------------------------------

  // Drops the next `frames` inbound frames on the floor (counted as
  // `stalled`), modelling a wedged RNIC pipeline / PCIe back-pressure stall.
  // Zero-cost when disarmed: the fast path tests one relaxed load that is 0.
  void stall(std::uint64_t frames) noexcept {
    stall_remaining_.store(frames, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stall_remaining() const noexcept {
    return stall_remaining_.load(std::memory_order_relaxed);
  }

  // Toggles iCRC validation (on by default). The ablation bench measures the
  // cost and the protection it buys against corrupted reports.
  void set_validate_icrc(bool v) noexcept { validate_icrc_ = v; }

  // Enables the §7 SmartNIC DTA-multiwrite extension (one frame → N DMAs).
  // Off by default: stock RNICs only speak RoCEv2.
  void set_dta_multiwrite(bool v) noexcept { dta_enabled_ = v; }
  [[nodiscard]] bool dta_multiwrite_enabled() const noexcept {
    return dta_enabled_;
  }

 private:
  // rkey→MR / qpn→QP resolution memo for one burst. find_by_rkey is a linear
  // registry scan and the reports in a burst overwhelmingly target one MR
  // through one QP, so process_frames resolves each distinct key once per
  // chunk. Single-frame calls use a fresh cache, which makes the memoized
  // path behave identically (the control plane is quiescent during data-path
  // calls — see the thread-safety note on process_frame).
  struct LookupCache {
    std::uint32_t rkey = 0;
    const MemoryRegion* mr = nullptr;
    bool mr_set = false;
    std::uint32_t qpn = 0;
    QueuePair* qp = nullptr;
    bool qp_set = false;
  };

  [[nodiscard]] const MemoryRegion* find_mr(std::uint32_t rkey,
                                            LookupCache& lc) {
    if (!lc.mr_set || lc.rkey != rkey) {
      lc.mr = memory_.find_by_rkey(rkey);
      lc.rkey = rkey;
      lc.mr_set = true;
    }
    return lc.mr;
  }
  [[nodiscard]] QueuePair* find_qp(std::uint32_t qpn, LookupCache& lc) {
    if (!lc.qp_set || lc.qpn != qpn) {
      lc.qp = qps_.find(qpn);
      lc.qpn = qpn;
      lc.qp_set = true;
    }
    return lc.qp;
  }

  // True if this frame was eaten by an injected stall (counts it too).
  [[nodiscard]] bool consume_stall() noexcept;

  // Routes a classification verdict to counters / execution; kFallback runs
  // the layered path (process_frame_slow) on the raw frame.
  std::optional<Completion> dispatch_classified(const WireClass& cls,
                                                std::span<const std::byte> frame,
                                                LookupCache& lc);
  // The original layered receive path (parse → verify iCRC → parse request),
  // for frames the fused classifier won't touch.
  std::optional<Completion> process_frame_slow(std::span<const std::byte> frame,
                                               LookupCache& lc);
  // QP admission (state / transport class / PSN window) then execute. Shared
  // by the fused and layered paths so verdicts cannot drift.
  std::optional<Completion> admit_and_execute(const RoceRequest& req,
                                              LookupCache& lc);
  std::optional<Completion> execute(const RoceRequest& req, LookupCache& lc);
  std::optional<Completion> execute_multiwrite(
      std::span<const std::byte> udp_payload);

  MemoryRegistry memory_;
  QpRegistry qps_;
  RnicCounters counters_;
  std::function<void(const Completion&)> hook_;
  std::atomic<std::uint64_t> stall_remaining_{0};
  bool validate_icrc_ = true;
  bool dta_enabled_ = false;
};

}  // namespace dart::rdma
