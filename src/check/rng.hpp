// dartcheck Rng — a recordable, replayable random source.
//
// Every random decision a property makes flows through one of these. In
// RECORD mode the Rng draws from a seeded Xoshiro256 and logs each raw
// 64-bit draw onto a "choice tape". In REPLAY mode it plays a tape back
// (padding with zeros once the tape is exhausted), so the shrinker can
// minimize a failing case by editing the tape — truncating it, zeroing
// spans, halving entries — and re-running the property, without knowing
// anything about what the draws *meant*. This is the integrated-shrinking
// design (à la Hypothesis): generators compose freely and shrinking comes
// for free, because a lexicographically smaller tape decodes to a simpler
// generated value by construction.
//
// Conventions that make zero the "simplest" choice:
//   - below(b) returns draw % b, so a zero draw picks index 0 — order
//     generator alternatives simplest-first;
//   - chance(p) is true only for draws in the TOP p fraction, so a zero
//     draw answers "no" — phrase optional complications as chance().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.hpp"

namespace dart::check {

class Rng {
 public:
  // RECORD mode: fresh generator from `seed`, tape grows with each draw.
  explicit Rng(std::uint64_t seed) : gen_(seed), replay_(false) {}

  // REPLAY mode: plays `tape` back; draws past the end return 0.
  explicit Rng(std::span<const std::uint64_t> tape)
      : gen_(0), replay_(true), replay_tape_(tape) {}

  // Raw 64-bit draw — the unit the choice tape records.
  std::uint64_t u64() {
    std::uint64_t v;
    if (replay_) {
      v = pos_ < replay_tape_.size() ? replay_tape_[pos_] : 0;
      ++pos_;
    } else {
      v = gen_();
    }
    used_.push_back(v);
    return v;
  }

  // Uniform-ish integer in [0, bound); bound 0 yields 0. Plain modulo on
  // purpose: the tiny bias is irrelevant for testing, and the monotone
  // draw→value mapping is what makes tape shrinking shrink values.
  std::uint64_t below(std::uint64_t bound) {
    const auto v = u64();
    return bound == 0 ? 0 : v % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  double uniform() { return static_cast<double>(u64() >> 11) * 0x1.0p-53; }

  // Bernoulli(p), arranged so a zero draw answers false.
  bool chance(double p) { return uniform() >= 1.0 - p; }

  // Picks one element of a simplest-first alternative list.
  template <typename T>
  T pick(std::initializer_list<T> options) {
    return options.begin()[below(options.size())];
  }

  std::vector<std::byte> bytes(std::size_t n) {
    std::vector<std::byte> out;
    out.reserve(n);
    // Pack 8 bytes per draw so tapes stay short.
    while (out.size() < n) {
      auto v = u64();
      for (int i = 0; i < 8 && out.size() < n; ++i) {
        out.push_back(static_cast<std::byte>(v & 0xFF));
        v >>= 8;
      }
    }
    return out;
  }

  // The draws this Rng has served so far, in order — in RECORD mode the
  // tape to replay, in REPLAY mode the (zero-padded) values actually used.
  [[nodiscard]] const std::vector<std::uint64_t>& used() const noexcept {
    return used_;
  }
  [[nodiscard]] std::size_t draws() const noexcept { return used_.size(); }
  [[nodiscard]] bool replaying() const noexcept { return replay_; }

 private:
  Xoshiro256 gen_;
  bool replay_;
  std::span<const std::uint64_t> replay_tape_{};
  std::size_t pos_ = 0;
  std::vector<std::uint64_t> used_;
};

}  // namespace dart::check
