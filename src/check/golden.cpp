#include "check/golden.hpp"

#include <cctype>
#include <cstring>
#include <fstream>

#include "core/collector.hpp"
#include "core/collector_ring.hpp"
#include "core/config.hpp"
#include "core/oracle.hpp"
#include "core/primitives.hpp"
#include "core/query_protocol.hpp"
#include "core/report_crafter.hpp"
#include "rdma/multiwrite.hpp"
#include "rdma/roce.hpp"

namespace dart::check {

std::string to_hex(std::span<const std::byte> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const auto b : data) {
    const auto v = static_cast<std::uint8_t>(b);
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xF]);
  }
  return out;
}

std::optional<std::vector<std::byte>> from_hex(std::string_view text) {
  std::vector<std::byte> out;
  int hi = -1;
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (hi >= 0) return std::nullopt;  // split pair
      continue;
    }
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::byte>((hi << 4) | v));
      hi = -1;
    }
  }
  if (hi >= 0) return std::nullopt;  // odd digit count
  return out;
}

bool write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# trace: " << trace.name << "\n";
  for (const auto& note : trace.notes) out << "# " << note << "\n";
  for (const auto& artifact : trace.artifacts) {
    out << to_hex(artifact) << "\n";
  }
  return static_cast<bool>(out);
}

std::optional<Trace> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::string note = line.substr(1);
      if (!note.empty() && note.front() == ' ') note.erase(0, 1);
      if (note.rfind("trace: ", 0) == 0) {
        trace.name = note.substr(7);
      } else {
        trace.notes.push_back(note);
      }
      continue;
    }
    auto bytes = from_hex(line);
    if (!bytes.has_value()) return std::nullopt;
    trace.artifacts.push_back(std::move(*bytes));
  }
  return trace;
}

// ---------------------------------------------------------------------------
// Canonical artifacts
// ---------------------------------------------------------------------------

// A real Collector supplies the RemoteStoreInfo so qpn/rkey/base_vaddr are
// exactly what the replay-side Collector (same constructor arguments, same
// deterministic rkey derivation) will accept.
GoldenDeployment golden_deployment() {
  GoldenDeployment dep;
  dep.config.n_slots = 1 << 10;
  dep.config.n_addresses = 2;
  dep.config.checksum_bits = 32;
  dep.config.value_bytes = 8;
  dep.config.master_seed = 0xDA27'601Dull;  // fixed forever (see golden.hpp)
  dep.collector_endpoint.mac = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  dep.collector_endpoint.ip = net::Ipv4Addr::from_octets(10, 0, 100, 1);
  dep.reporter.mac = {0xAA, 0xBB, 0xCC, 0x00, 0x00, 0x01};
  dep.reporter.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  return dep;
}

std::vector<std::byte> golden_value(std::uint64_t k, std::uint32_t bytes) {
  std::vector<std::byte> v(bytes);
  for (std::uint32_t j = 0; j < bytes; ++j) {
    v[j] = static_cast<std::byte>((k * 16 + j) & 0xFF);
  }
  return v;
}

std::vector<Trace> canonical_golden_traces() {
  const auto dep = golden_deployment();
  const auto& cfg = dep.config;
  core::Collector collector(cfg, 0, dep.collector_endpoint);
  const auto dst = collector.remote_info();
  const core::ReportCrafter crafter(cfg);

  std::vector<Trace> traces;

  {
    Trace t;
    t.name = "write_reports";
    t.notes = {"RoCEv2 WRITE ONLY reports, keys sim_key(1..6), copies 0..1,",
               "sequential PSNs, then key sim_key(7) across the 24-bit PSN",
               "wrap edge (0xfffffe, 0xffffff, 0x000000): collector QPs run",
               "PsnPolicy::kIgnore, so all three execute — reporters never",
               "retransmit and the store is last-writer-wins (paper §3.1)."};
    std::uint32_t psn = 0;
    for (std::uint64_t k = 1; k <= 6; ++k) {
      const auto key = core::sim_key(k);
      const auto value = golden_value(k, cfg.value_bytes);
      for (std::uint32_t n = 0; n < cfg.n_addresses; ++n) {
        t.artifacts.push_back(
            crafter.craft_write(dst, dep.reporter, key, value, n, psn++));
      }
    }
    for (const std::uint32_t wrap : {0xFFFFFEu, 0xFFFFFFu, 0x000000u}) {
      const auto key = core::sim_key(7);
      t.artifacts.push_back(crafter.craft_write(
          dst, dep.reporter, key, golden_value(7, cfg.value_bytes), 0, wrap));
    }
    traces.push_back(std::move(t));
  }

  {
    Trace t;
    t.name = "atomic_reports";
    t.notes = {"FETCH_ADD then COMPARE_SWAP on 8-aligned store words;",
               "operands are fixed patterns."};
    std::uint32_t psn = 0;
    for (const std::uint64_t word : {0ull, 5ull, 100ull}) {
      t.artifacts.push_back(crafter.craft_fetch_add(
          dst, dep.reporter, dst.base_vaddr + word * 8,
          0x0101'0000'0000'0000ull + word, psn++));
    }
    for (const std::uint64_t word : {1ull, 7ull}) {
      t.artifacts.push_back(crafter.craft_compare_swap(
          dst, dep.reporter, dst.base_vaddr + word * 8, /*compare=*/0,
          /*swap=*/0xC0DE'0000'0000'0000ull + word, psn++));
    }
    traces.push_back(std::move(t));
  }

  {
    Trace t;
    t.name = "multiwrite_reports";
    t.notes = {"§7 DTA multiwrite frames (UDP/4793): one frame fills all N",
               "slots of a key."};
    for (std::uint64_t k = 1; k <= 4; ++k) {
      t.artifacts.push_back(crafter.craft_multiwrite(
          dst, dep.reporter, core::sim_key(k), golden_value(k, cfg.value_bytes),
          static_cast<std::uint32_t>(k - 1)));
    }
    traces.push_back(std::move(t));
  }

  {
    Trace t;
    t.name = "query_wire";
    t.notes = {"v2 operator query protocol payloads (no L2-L4 headers):",
               "requests across policies/epochs, then responses: found,",
               "empty, degraded+stale."};
    std::uint64_t id = 1;
    for (const auto policy :
         {core::ReturnPolicy::kFirstMatch, core::ReturnPolicy::kSingleDistinct,
          core::ReturnPolicy::kPlurality, core::ReturnPolicy::kConsensusTwo}) {
      core::QueryRequest req;
      req.request_id = id;
      req.epoch = static_cast<std::uint32_t>(0xE0000 + id);
      req.policy = policy;
      const auto key = core::sim_key(id);
      req.key.assign(key.begin(), key.end());
      t.artifacts.push_back(core::encode_query_request(req));
      ++id;
    }
    core::QueryResponse found;
    found.request_id = 1;
    found.epoch = 0xE0001;
    found.outcome = core::QueryOutcome::kFound;
    found.checksum_matches = 2;
    found.distinct_values = 1;
    found.value = golden_value(1, cfg.value_bytes);
    t.artifacts.push_back(core::encode_query_response(found));

    core::QueryResponse empty;
    empty.request_id = 2;
    empty.epoch = 0xE0002;
    t.artifacts.push_back(core::encode_query_response(empty));

    core::QueryResponse degraded = found;
    degraded.request_id = 3;
    degraded.epoch = 0xE0003;
    degraded.flags = core::kResponseDegraded;
    degraded.stale_epochs = 2;
    t.artifacts.push_back(core::encode_query_response(degraded));
    traces.push_back(std::move(t));
  }

  // DTA translator primitives: region rows come from a golden-deployment
  // collector with primitives enabled (same deterministic rkey/vaddr
  // derivation the replay side reproduces).
  const auto prim = core::default_primitives(cfg.master_seed);
  {
    const auto enabled = collector.enable_primitives(prim);
    (void)enabled;  // default geometry is always valid
  }

  {
    Trace t;
    t.name = "append_reports";
    t.notes = {"DTA Append frames into the golden ring (1024 entries):",
               "seqs 1..4 with golden values, then seq 1025 — the first",
               "wrap-around, landing on slot 0 and overwriting seq 1."};
    const auto dst_ring = collector.remote_ring_info();
    std::uint32_t psn = 0;
    for (std::uint64_t seq = 1; seq <= 4; ++seq) {
      t.artifacts.push_back(
          crafter.craft_append(dst_ring, dep.reporter, prim.ring, seq,
                               golden_value(seq, prim.ring.value_bytes), psn++));
    }
    t.artifacts.push_back(crafter.craft_append(
        dst_ring, dep.reporter, prim.ring, 1025,
        golden_value(9, prim.ring.value_bytes), psn++));
    traces.push_back(std::move(t));
  }

  {
    Trace t;
    t.name = "key_increment_reports";
    t.notes = {"DTA Key-Increment frames: FETCH_ADD on the counter cell of",
               "sim_key(1..3), deltas 0x10101 * k."};
    const auto dst_ctr = collector.remote_counter_info();
    std::uint32_t psn = 0;
    for (std::uint64_t k = 1; k <= 3; ++k) {
      t.artifacts.push_back(crafter.craft_key_increment(
          dst_ctr, dep.reporter, prim.counters, core::sim_key(k),
          0x10101ull * k, psn++));
    }
    traces.push_back(std::move(t));
  }

  {
    Trace t;
    t.name = "postcard_reports";
    t.notes = {"DTA Postcarding frames: flows sim_key(1..2), hops 0..2 each",
               "(a partial group — golden max_hops is 8), golden values",
               "indexed flow*8+hop."};
    const auto dst_pc = collector.remote_postcard_info();
    std::uint32_t psn = 0;
    for (std::uint64_t flow = 1; flow <= 2; ++flow) {
      for (std::uint32_t hop = 0; hop < 3; ++hop) {
        t.artifacts.push_back(crafter.craft_postcard(
            dst_pc, dep.reporter, prim.postcards, core::sim_key(flow), hop,
            golden_value(flow * 8 + hop, prim.postcards.value_bytes), psn++));
      }
    }
    traces.push_back(std::move(t));
  }

  {
    Trace t;
    t.name = "primitive_query_wire";
    t.notes = {"primitive query protocol v1 payloads (no L2-L4 headers):",
               "drain/read-counter/read-postcard-group requests, then",
               "responses: a 2-entry drain with holes, a counter cell, a",
               "partial postcard group, and a primitives-unavailable error."};
    core::PrimitiveRequest drain;
    drain.op = core::PrimitiveOp::kDrainRing;
    drain.request_id = 1;
    drain.epoch = 0xE1001;
    drain.max_entries = 16;
    t.artifacts.push_back(core::encode_primitive_request(drain));

    core::PrimitiveRequest counter;
    counter.op = core::PrimitiveOp::kReadCounter;
    counter.request_id = 2;
    counter.epoch = 0xE1002;
    const auto ckey = core::sim_key(2);
    counter.key.assign(ckey.begin(), ckey.end());
    t.artifacts.push_back(core::encode_primitive_request(counter));

    core::PrimitiveRequest group;
    group.op = core::PrimitiveOp::kReadPostcardGroup;
    group.request_id = 3;
    group.epoch = 0xE1003;
    const auto gkey = core::sim_key(3);
    group.key.assign(gkey.begin(), gkey.end());
    t.artifacts.push_back(core::encode_primitive_request(group));

    core::PrimitiveResponse drained;
    drained.op = core::PrimitiveOp::kDrainRing;
    drained.request_id = 1;
    drained.epoch = 0xE1001;
    drained.missed = 3;
    drained.next_seq = 7;
    drained.entry_value_bytes =
        static_cast<std::uint16_t>(prim.ring.value_bytes);
    for (const std::uint64_t seq : {4ull, 6ull}) {
      drained.entries.push_back(core::RingEntryWire{
          seq, golden_value(seq, prim.ring.value_bytes)});
    }
    t.artifacts.push_back(core::encode_primitive_response(drained));

    core::PrimitiveResponse cell;
    cell.op = core::PrimitiveOp::kReadCounter;
    cell.request_id = 2;
    cell.epoch = 0xE1002;
    cell.cell_index = prim.counters.index_of(ckey);
    cell.counter_value = 0x20202;
    t.artifacts.push_back(core::encode_primitive_response(cell));

    core::PrimitiveResponse path;
    path.op = core::PrimitiveOp::kReadPostcardGroup;
    path.request_id = 3;
    path.epoch = 0xE1003;
    path.group_index = prim.postcards.group_of(gkey);
    path.max_hops = static_cast<std::uint8_t>(prim.postcards.max_hops);
    path.valid_mask = 0b101;  // hops 0 and 2 reported
    path.hop_value_bytes =
        static_cast<std::uint16_t>(prim.postcards.value_bytes);
    for (std::uint32_t h = 0; h < prim.postcards.max_hops; ++h) {
      path.hops.push_back((path.valid_mask >> h & 1) != 0
                              ? golden_value(24 + h, prim.postcards.value_bytes)
                              : std::vector<std::byte>(prim.postcards.value_bytes));
    }
    t.artifacts.push_back(core::encode_primitive_response(path));

    core::PrimitiveResponse unavailable;
    unavailable.op = core::PrimitiveOp::kDrainRing;
    unavailable.request_id = 4;
    unavailable.epoch = 0xE1004;
    unavailable.flags = core::kResponsePrimitiveUnavailable;
    t.artifacts.push_back(core::encode_primitive_response(unavailable));
    traces.push_back(std::move(t));
  }

  {
    Trace t;
    t.name = "cht_ring16";
    t.notes = {"consistent-hash collector ring, capacity 16, 64 buckets per",
               "member, seed = the golden master seed. Artifact 0: the full-",
               "membership owner table (one little-endian u32 per bucket);",
               "artifact 1: the table after remove_member(5) — minimal",
               "movement pins that ONLY buckets owned by 5 changed; artifact",
               "2: the table after re-admitting 5, byte-identical to",
               "artifact 0 (the failback-restores-exactly contract)."};
    core::CollectorRingConfig rc;
    rc.capacity = 16;
    rc.height_per_member = 64;
    rc.seed = cfg.master_seed;
    core::CollectorRing ring(rc);
    const auto table_bytes = [](const core::CollectorRing& r) {
      const auto table = r.owner_table();
      std::vector<std::byte> out(table.size() * 4);
      for (std::size_t b = 0; b < table.size(); ++b) {
        out[b * 4 + 0] = static_cast<std::byte>(table[b] & 0xFF);
        out[b * 4 + 1] = static_cast<std::byte>((table[b] >> 8) & 0xFF);
        out[b * 4 + 2] = static_cast<std::byte>((table[b] >> 16) & 0xFF);
        out[b * 4 + 3] = static_cast<std::byte>((table[b] >> 24) & 0xFF);
      }
      return out;
    };
    t.artifacts.push_back(table_bytes(ring));
    ring.remove_member(5);
    t.artifacts.push_back(table_bytes(ring));
    ring.add_member(5);
    t.artifacts.push_back(table_bytes(ring));
    traces.push_back(std::move(t));
  }

  return traces;
}

std::vector<Trace> canonical_corpus() {
  const auto dep = golden_deployment();
  const auto& cfg = dep.config;
  core::Collector collector(cfg, 0, dep.collector_endpoint);
  const auto dst = collector.remote_info();
  const core::ReportCrafter crafter(cfg);

  const auto key = core::sim_key(42);
  const auto value = golden_value(42, cfg.value_bytes);
  const auto pristine = crafter.craft_write(dst, dep.reporter, key, value, 0, 0);

  std::vector<Trace> corpus;
  const auto add = [&corpus](const char* name, const char* why,
                             std::vector<std::byte> frame) {
    Trace t;
    t.name = name;
    t.notes = {why};
    t.artifacts.push_back(std::move(frame));
    corpus.push_back(std::move(t));
  };

  {  // Frame truncated mid-RETH: UDP length no longer matches the bytes.
    auto f = pristine;
    f.resize(f.size() - 12);
    add("truncated_write",
        "WRITE frame truncated mid-payload; L3/L4 length checks must refuse "
        "it before any RoCE parsing",
        std::move(f));
  }
  {  // Valid frame, iCRC flipped — the corruption iCRC exists to catch.
    auto f = pristine;
    f.back() ^= std::byte{0xFF};
    add("bad_icrc_write",
        "last iCRC byte flipped; must be counted bad_icrc, memory untouched",
        std::move(f));
  }
  {  // Unknown BTH opcode under a VALID iCRC: the opcode check itself.
    auto f = pristine;
    f[net::kEthernetHeaderLen + net::kIpv4HeaderLen + net::kUdpHeaderLen] =
        std::byte{0x7F};  // reserved opcode, no transport class
    const bool ok = rdma::finalize_frame_icrc(f);
    (void)ok;  // frame shape is the crafter's own, finalize cannot fail
    add("bad_opcode",
        "BTH opcode rewritten to reserved 0x7f with the iCRC re-finalized; "
        "must be counted bad_opcode, not bad_icrc",
        std::move(f));
  }
  {  // Unknown destination QP.
    auto alt = dst;
    alt.qpn = 0x00BEEF;
    add("unknown_qp", "well-formed WRITE to a QPN the RNIC never created",
        crafter.craft_write(alt, dep.reporter, key, value, 0, 0));
  }
  {  // rkey no MR owns.
    auto alt = dst;
    alt.rkey ^= 0x5A5A'5A5A;
    add("bad_rkey", "WRITE under an rkey no memory region owns",
        crafter.craft_write(alt, dep.reporter, key, value, 0, 0));
  }
  {  // WRITE past the end of the registered region.
    auto alt = dst;
    alt.base_vaddr += cfg.memory_bytes();
    add("oob_write", "WRITE targeting one slot past the registered region",
        crafter.craft_write(alt, dep.reporter, key, value, 0, 0));
  }
  {  // Atomic on a non-8-aligned vaddr.
    add("unaligned_atomic",
        "FETCH_ADD at base+1: atomics must be naturally aligned",
        crafter.craft_fetch_add(dst, dep.reporter, dst.base_vaddr + 1, 1, 0));
  }
  {  // Multiwrite with a truncated DTA payload: trailer CRC cannot match.
    std::vector<std::uint64_t> vaddrs = {dst.base_vaddr, dst.base_vaddr + 24};
    auto dta = rdma::encode_multiwrite(dst.rkey, 0, vaddrs,
                                       std::span<const std::byte>(
                                           value.data(), value.size()));
    dta.resize(dta.size() - 6);  // chop into the vaddr list + CRC
    net::UdpFrameSpec spec;
    spec.src_mac = dep.reporter.mac;
    spec.dst_mac = dst.mac;
    spec.src_ip = dep.reporter.ip;
    spec.dst_ip = dst.ip;
    spec.src_port = dep.reporter.udp_src_port;
    spec.dst_port = rdma::kDtaUdpPort;
    add("truncated_multiwrite",
        "DTA multiwrite chopped mid-address-list (UDP lengths consistent); "
        "the trailer CRC check must refuse it",
        net::build_udp_frame(spec, dta));
  }
  {  // IPv4 header checksum damaged on an otherwise valid report.
    auto f = pristine;
    f[net::kEthernetHeaderLen + 10] ^= std::byte{0x40};  // checksum hi byte
    add("bad_ip_checksum",
        "IPv4 header checksum flipped; the frame dies at L3 (not_roce)",
        std::move(f));
  }

  return corpus;
}

}  // namespace dart::check
