// dartcheck property runner — seeded cases, integrated shrinking, one-line
// repro seeds, and automatic regression-corpus capture.
//
// A property is a function from an Rng to "pass" (std::nullopt) or a
// Failure. The runner executes `cases` independent cases, each from its own
// deterministically derived seed. On the first failure it shrinks the
// recorded choice tape (rng.hpp) to a minimal still-failing case and prints:
//
//   [dartcheck] property 'slot_write_diff' FAILED at case 83 (seed 0x1D6B...)
//   [dartcheck]   store byte 14 differs: real 0x00 reference 0x3A
//   [dartcheck]   shrunk 41 -> 6 draws in 12 accepted steps
//   [dartcheck]   repro: DART_SEED=0x1D6B... DART_CHECK_CASES=1 <this test>
//   [dartcheck]   corpus: tests/corpus/slot_write_diff-1d6b....hex
//
// The repro line is exact: case 0 of a run always uses DART_SEED verbatim,
// so `DART_SEED=<failing case seed> DART_CHECK_CASES=1` re-executes the
// failing case and nothing else. If the failure carried a wire artifact
// (a frame), the shrunk artifact is appended to the regression corpus
// directory ($DART_CORPUS_DIR, which ctest points at tests/corpus/) so the
// corpus-replay suite pins it forever.
//
// Environment knobs (all optional):
//   DART_SEED         base seed, decimal or 0x-hex (default: cfg.seed)
//   DART_CHECK_CASES  case count override
//   DART_CORPUS_DIR   where shrunk failing artifacts are appended
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/rng.hpp"

namespace dart::check {

// A failing case: human-readable diagnosis plus an optional wire artifact
// (the frame/payload that triggered the failure) for the regression corpus.
struct Failure {
  std::string message;
  std::vector<std::byte> artifact;
};

using Property = std::function<std::optional<Failure>(Rng&)>;

struct CheckConfig {
  std::uint64_t seed = 0xDA27'C4EC;  // overridden by DART_SEED
  std::uint64_t cases = 1000;        // overridden by DART_CHECK_CASES
  // Shrink budget: max property re-executions during minimization.
  std::size_t max_shrink_execs = 1500;
  // Where shrunk failing artifacts are appended; empty = $DART_CORPUS_DIR,
  // "-" = disabled (used by the mutation smoke-check, which fails on
  // purpose and must not pollute the real corpus).
  std::string corpus_dir;
  // Quiet mode for deliberate-failure self-tests.
  bool log_failures = true;
};

struct CheckReport {
  bool passed = true;
  std::string name;
  std::uint64_t cases_run = 0;

  // Populated on failure:
  std::uint64_t failing_case = 0;
  std::uint64_t failing_seed = 0;        // seed reproducing the case
  std::string message;                   // shrunk case's diagnosis
  std::string repro;                     // the one-line repro command
  std::vector<std::uint64_t> shrunk_tape;
  std::size_t original_draws = 0;
  std::size_t shrink_steps = 0;          // accepted shrink candidates
  std::vector<std::byte> artifact;       // shrunk case's artifact
  std::string corpus_path;               // where the artifact was appended
};

// Runs the property. Tests assert `report.passed` (and can inspect the
// shrink fields — the mutation smoke-check does).
CheckReport check(const std::string& name, const Property& property,
                  const CheckConfig& cfg = {});

// --- seed plumbing (shared with non-dartcheck tests, e.g. the fuzz suite) --

// Parses decimal or 0x-hex; nullopt when unset/unparsable.
[[nodiscard]] std::optional<std::uint64_t> env_u64(const char* name);

// DART_SEED override, else `fallback`. Logs one line to stderr either way so
// every CI failure comes with its seed attached.
[[nodiscard]] std::uint64_t seed_from_env(std::uint64_t fallback,
                                          const char* context = nullptr);

// Seed of case `index` for a given base seed. Case 0 IS the base seed —
// that identity is what makes the printed repro line exact.
[[nodiscard]] std::uint64_t case_seed(std::uint64_t base, std::uint64_t index);

// Appends `artifact` as a hex fixture named `<property>-<seed>.hex` under
// `dir`; returns the path, or "" on I/O failure.
std::string append_corpus_case(const std::string& dir,
                               const std::string& property,
                               std::uint64_t seed,
                               std::span<const std::byte> artifact,
                               const std::string& note);

}  // namespace dart::check
