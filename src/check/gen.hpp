// dartcheck generators for the DART domain.
//
// All generators draw exclusively through check::Rng so every generated
// value shrinks for free (rng.hpp). They are deliberately collision-hungry:
// keys come from a small universe so slots get overwritten, values from a
// small pool so distinct-value counting and plurality ties actually happen,
// and configs include tiny stores with 8-bit checksums so the §4 failure
// modes (return errors, empty returns) appear within a 1000-case run
// instead of once per billion.
#pragma once

#include <cstdint>
#include <vector>

#include "check/reference.hpp"
#include "check/rng.hpp"
#include "core/config.hpp"

namespace dart::check {

// Key id from a small universe (0-draw → id 0, the simplest key).
[[nodiscard]] std::uint64_t gen_key(Rng& rng, std::uint64_t universe = 32);

// Exact-width value. Draws an id from a small pool and expands it to a
// deterministic byte pattern, so independent ops frequently agree on the
// value — the precondition for consensus/plurality behaviour.
[[nodiscard]] std::vector<std::byte> gen_value(Rng& rng, std::uint32_t bytes,
                                               std::uint64_t pool = 4);

// Small, always-valid deployment config. The zero tape decodes to the
// smallest store with the narrowest checksum — maximally collision-prone,
// which is the interesting regime.
[[nodiscard]] core::DartConfig gen_small_config(Rng& rng);

// One logical telemetry op against `config`. `reference` (optional) lets
// compare-swaps peek the current word so roughly half of generated CAS ops
// actually succeed; without it every CAS against a busy word would miss.
[[nodiscard]] ReportOp gen_report_op(Rng& rng, const core::DartConfig& config,
                                     const ReferenceFabric* reference = nullptr,
                                     double drop_probability = 0.1);

// Tiny primitive geometry: rings a handful of entries deep so wrap-around
// overwrites happen within a short op stream, few counter cells so keys
// alias, and narrow postcard groups/checksums so partial groups and
// checksum collisions show up in a 1000-case run.
[[nodiscard]] core::DtaPrimitivesConfig gen_small_primitives(Rng& rng);

// One primitive op (kAppend / kKeyIncrement / kPostcard) against
// `primitives`. The zero tape decodes to the simplest op: an append of the
// zero-pool value, not dropped.
[[nodiscard]] ReportOp gen_primitive_op(Rng& rng,
                                        const core::DtaPrimitivesConfig& primitives,
                                        double drop_probability = 0.1);

}  // namespace dart::check
