#include "check/gen.hpp"

namespace dart::check {

std::uint64_t gen_key(Rng& rng, std::uint64_t universe) {
  return rng.below(universe);
}

std::vector<std::byte> gen_value(Rng& rng, std::uint32_t bytes,
                                 std::uint64_t pool) {
  const auto id = rng.below(pool);
  std::vector<std::byte> v(bytes);
  for (std::uint32_t j = 0; j < bytes; ++j) {
    v[j] = static_cast<std::byte>((id * 37 + j * 3 + 1) & 0xFF);
  }
  return v;
}

core::DartConfig gen_small_config(Rng& rng) {
  core::DartConfig cfg;
  cfg.n_slots = rng.pick<std::uint64_t>({16, 64, 256, 1024});
  cfg.n_addresses = static_cast<std::uint32_t>(rng.range(1, 4));
  cfg.checksum_bits = rng.pick<std::uint32_t>({8, 16, 24, 32});
  cfg.value_bytes = rng.pick<std::uint32_t>({4, 8, 20});
  cfg.master_seed = 0xDA27'0000'0100ull + rng.below(8);
  return cfg;
}

ReportOp gen_report_op(Rng& rng, const core::DartConfig& config,
                       const ReferenceFabric* reference,
                       double drop_probability) {
  ReportOp op;
  // Simplest-first, writes most likely: draw 0 → plain write.
  const auto kind = rng.below(8);
  if (kind < 4) {
    op.kind = ReportOp::Kind::kWrite;
  } else if (kind < 6) {
    op.kind = ReportOp::Kind::kMultiwrite;
  } else if (kind == 6) {
    op.kind = ReportOp::Kind::kFetchAdd;
  } else {
    op.kind = ReportOp::Kind::kCompareSwap;
  }

  op.key = gen_key(rng);
  op.value = gen_value(rng, config.value_bytes);
  op.copy = static_cast<std::uint32_t>(rng.below(config.n_addresses));

  if (op.kind == ReportOp::Kind::kFetchAdd ||
      op.kind == ReportOp::Kind::kCompareSwap) {
    const auto words = config.memory_bytes() / 8;
    op.word_index = rng.below(words);
    op.operand = rng.below(1u << 20);
    if (op.kind == ReportOp::Kind::kCompareSwap) {
      // Half the CAS ops peek the oracle so they hit; the rest draw a
      // (usually missing) compare, covering the cas_mismatch path.
      if (reference != nullptr && rng.chance(0.5)) {
        op.compare = reference->word(op.word_index);
      } else {
        op.compare = rng.below(1u << 20);
      }
    }
  }

  op.dropped = rng.chance(drop_probability);
  return op;
}

core::DtaPrimitivesConfig gen_small_primitives(Rng& rng) {
  core::DtaPrimitivesConfig cfg;
  cfg.ring.n_entries = rng.pick<std::uint64_t>({4, 8, 16, 64});
  cfg.ring.value_bytes = rng.pick<std::uint32_t>({4, 8, 16});
  cfg.counters.n_counters = rng.pick<std::uint64_t>({4, 16, 64});
  cfg.counters.seed = 0xDA27'00F1ull + rng.below(8);
  cfg.postcards.n_groups = rng.pick<std::uint64_t>({2, 4, 8});
  cfg.postcards.max_hops = rng.pick<std::uint32_t>({1, 3, 8});
  cfg.postcards.checksum_bits = rng.pick<std::uint32_t>({8, 16});
  cfg.postcards.value_bytes = rng.pick<std::uint32_t>({4, 8});
  cfg.postcards.seed = 0xDA27'00F2ull + rng.below(8);
  return cfg;
}

ReportOp gen_primitive_op(Rng& rng,
                          const core::DtaPrimitivesConfig& primitives,
                          double drop_probability) {
  ReportOp op;
  // Appends most likely (the ring is where order/wrap bugs live); draw 0 →
  // the simplest op, an append.
  const auto kind = rng.below(4);
  if (kind < 2) {
    op.kind = ReportOp::Kind::kAppend;
    op.value = gen_value(rng, primitives.ring.value_bytes);
  } else if (kind == 2) {
    op.kind = ReportOp::Kind::kKeyIncrement;
    op.key = gen_key(rng);
    op.operand = 1 + rng.below(1u << 16);
  } else {
    op.kind = ReportOp::Kind::kPostcard;
    op.key = gen_key(rng, /*universe=*/8);  // few flows → groups collide
    op.hop = static_cast<std::uint32_t>(rng.below(primitives.postcards.max_hops));
    op.value = gen_value(rng, primitives.postcards.value_bytes);
  }
  op.dropped = rng.chance(drop_probability);
  return op;
}

}  // namespace dart::check
