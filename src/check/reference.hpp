// The dartcheck reference oracle — a deliberately boring re-implementation
// of the fabric's end-to-end semantics for differential testing.
//
// The real pipeline a report takes is long: ReportCrafter serializes a
// RoCEv2/DTA frame, SimulatedRnic re-parses and validates it, and a DMA (or
// atomic execute) mutates registered store memory. ReferenceFabric skips all
// of it: the same logical operation is applied *directly* to a private
// DartStore in one thread, no wire, no parsing, no RNIC. If the two
// disagree on a single byte of store memory — or on a query answer — one of
// the layers has a bug, and the property runner shrinks the op sequence
// that exposes it.
//
// reference_resolve() is the same idea for the query plane: an independent
// implementation of the §4 return policies, diffed against QueryEngine on
// identical slot contents.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <memory>

#include "core/collector.hpp"
#include "core/config.hpp"
#include "core/primitives.hpp"
#include "core/query.hpp"
#include "core/report_crafter.hpp"
#include "core/store.hpp"

namespace dart::check {

// One logical telemetry operation, the unit the differential properties
// generate. Keys are simulation ids (core::sim_key encoding).
struct ReportOp {
  enum class Kind : std::uint8_t {
    kWrite,        // RDMA WRITE of copy `copy` of (key, value)
    kMultiwrite,   // §7 DTA multiwrite: all N copies in one frame
    kFetchAdd,     // atomic add of `operand` to store word `word_index`
    kCompareSwap,  // atomic CAS: word `word_index`, compare -> operand
    // DTA translator primitives (primitives.hpp); the fabric must have
    // primitives enabled before submitting these.
    kAppend,        // ring append; the seq comes from the fabric's own tail
    kKeyIncrement,  // FETCH_ADD of `operand` on the counter cell of `key`
    kPostcard,      // hop `hop` of flow `key`'s slot group
  };

  Kind kind = Kind::kWrite;
  std::uint64_t key = 0;
  std::vector<std::byte> value;
  std::uint32_t copy = 0;        // kWrite: which of the N slots
  std::uint64_t word_index = 0;  // atomics: 8-byte word within the store
  std::uint64_t operand = 0;     // addend (kFetchAdd/kKeyIncrement) / swap
  std::uint64_t compare = 0;     // kCompareSwap only
  std::uint32_t hop = 0;         // kPostcard only
  bool dropped = false;          // lost in the network: a PSN-sequence gap
};

// Independent return-policy implementation (the spec of query.hpp, written
// from scratch): filter `slots` by `want` checksum in copy order, then apply
// `policy`. Diffed against QueryEngine::resolve on the same store state.
[[nodiscard]] core::QueryResult reference_resolve(
    std::span<const core::SlotView> slots, std::uint32_t want,
    core::ReturnPolicy policy);

// Single-threaded ground truth: applies ReportOps straight to a DartStore.
class ReferenceFabric {
 public:
  explicit ReferenceFabric(const core::DartConfig& config)
      : store_(config) {}

  // Brings up the reference twins of the collector's primitive regions.
  // Mirror of Collector::enable_primitives; call before applying primitive
  // ops.
  void enable_primitives(const core::DtaPrimitivesConfig& config);
  [[nodiscard]] bool primitives_enabled() const noexcept {
    return ring_ != nullptr;
  }

  void apply(const ReportOp& op);

  // Resolves via reference_resolve (NOT QueryEngine) so the query plane is
  // diffed too, not shared.
  [[nodiscard]] core::QueryResult resolve(std::span<const std::byte> key,
                                          core::ReturnPolicy policy) const;

  [[nodiscard]] const core::DartStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] std::span<const std::byte> memory() const noexcept {
    return store_.memory();
  }
  // Host-endian store word, for CAS-compare peeking by generators.
  [[nodiscard]] std::uint64_t word(std::uint64_t index) const noexcept;

  [[nodiscard]] std::uint64_t applied() const noexcept { return applied_; }
  [[nodiscard]] std::uint64_t cas_mismatches() const noexcept {
    return cas_mismatches_;
  }

  // Primitive twins (enable_primitives first). Like the switch register,
  // append_tail() counts every kAppend op — dropped frames consume a
  // sequence number without landing, which is exactly the hole the ring
  // reader's `missed` accounting must absorb.
  [[nodiscard]] core::AppendRing& ring() noexcept { return *ring_; }
  [[nodiscard]] core::CounterCellArray& counters() noexcept {
    return *counters_;
  }
  [[nodiscard]] core::PostcardStore& postcards() noexcept {
    return *postcards_;
  }
  [[nodiscard]] std::uint64_t append_tail() const noexcept {
    return append_tail_;
  }

 private:
  core::DartStore store_;
  std::uint64_t applied_ = 0;
  std::uint64_t cas_mismatches_ = 0;
  std::unique_ptr<core::AppendRing> ring_;
  std::unique_ptr<core::CounterCellArray> counters_;
  std::unique_ptr<core::PostcardStore> postcards_;
  std::uint64_t append_tail_ = 0;
};

// The real thing, driven op-by-op: a live Collector (RNIC + registered
// store memory) fed frames produced by ReportCrafter. Ops alternate between
// the allocating craft_* path and the FrameTemplate fast path (by PSN
// parity) so the differential properties cover both serializers. Dropped
// ops consume a PSN without delivering the frame — exactly the sequence gap
// a lost report leaves, which kTolerateLoss windows must absorb.
class WireDriver {
 public:
  explicit WireDriver(const core::DartConfig& config);

  // Enables the collector's primitive regions and precomputes the primitive
  // frame templates. Like ReferenceFabric, the driver then plays the switch
  // role for Append: it owns the tail register, and a dropped append still
  // consumes a sequence number.
  void enable_primitives(const core::DtaPrimitivesConfig& config);

  // Crafts the frame for `op`; delivers it to the RNIC unless op.dropped.
  // Returns the crafted frame so failing properties can attach it as a
  // corpus artifact.
  std::vector<std::byte> submit(const ReportOp& op);

  [[nodiscard]] core::QueryResult query(std::span<const std::byte> key,
                                        core::ReturnPolicy policy) const {
    return collector_.query(key, policy);
  }

  [[nodiscard]] core::Collector& collector() noexcept { return collector_; }
  [[nodiscard]] const core::Collector& collector() const noexcept {
    return collector_;
  }
  [[nodiscard]] std::span<const std::byte> memory() const noexcept {
    return collector_.store().memory();
  }
  [[nodiscard]] const core::ReportCrafter& crafter() const noexcept {
    return crafter_;
  }
  [[nodiscard]] std::uint32_t next_psn() const noexcept { return psn_; }
  [[nodiscard]] std::uint64_t append_tail() const noexcept {
    return append_tail_;
  }

 private:
  core::Collector collector_;
  core::ReportCrafter crafter_;
  core::ReporterEndpoint src_;
  core::RemoteStoreInfo dst_;
  core::FrameTemplate write_tpl_;
  core::FrameTemplate fetch_add_tpl_;
  core::FrameTemplate compare_swap_tpl_;
  core::FrameTemplate multiwrite_tpl_;
  // Primitive state (enable_primitives): region rows, templates, and the
  // switch-side append tail register.
  core::DtaPrimitivesConfig primitives_{};
  core::RemoteStoreInfo ring_dst_{};
  core::RemoteStoreInfo counter_dst_{};
  core::RemoteStoreInfo postcard_dst_{};
  core::FrameTemplate append_tpl_;
  core::FrameTemplate key_increment_tpl_;
  core::FrameTemplate postcard_tpl_;
  std::uint64_t append_tail_ = 0;
  std::uint32_t psn_ = 0;
};

}  // namespace dart::check
