#include "check/reference.hpp"

#include <cstring>

#include "core/oracle.hpp"
#include "rdma/roce.hpp"

namespace dart::check {

// ---------------------------------------------------------------------------
// reference_resolve — policy spec, re-derived from scratch
// ---------------------------------------------------------------------------

namespace {

struct Tally {
  std::span<const std::byte> value;
  std::uint32_t count = 0;
};

bool same_bytes(std::span<const std::byte> a, std::span<const std::byte> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

}  // namespace

core::QueryResult reference_resolve(std::span<const core::SlotView> slots,
                                    std::uint32_t want,
                                    core::ReturnPolicy policy) {
  core::QueryResult out;

  // Survivors of the checksum filter, tallied in first-seen order.
  std::vector<Tally> tallies;
  for (const auto& slot : slots) {
    if (slot.checksum != want) continue;
    ++out.checksum_matches;
    auto it = tallies.begin();
    while (it != tallies.end() && !same_bytes(it->value, slot.value)) ++it;
    if (it == tallies.end()) {
      tallies.push_back(Tally{slot.value, 1});
    } else {
      ++it->count;
    }
  }
  out.distinct_values = static_cast<std::uint32_t>(tallies.size());
  if (tallies.empty()) return out;

  // Winner by count; `unique` = no other tally ties the winner.
  std::size_t best = 0;
  for (std::size_t i = 1; i < tallies.size(); ++i) {
    if (tallies[i].count > tallies[best].count) best = i;
  }
  std::uint32_t at_top = 0;
  for (const auto& t : tallies) at_top += t.count == tallies[best].count;
  const bool unique = at_top == 1;

  bool commit = false;
  switch (policy) {
    case core::ReturnPolicy::kFirstMatch:
      best = 0;  // first surviving slot's value, regardless of counts
      commit = true;
      break;
    case core::ReturnPolicy::kSingleDistinct:
      commit = tallies.size() == 1;
      best = 0;
      break;
    case core::ReturnPolicy::kPlurality:
      commit = unique;
      break;
    case core::ReturnPolicy::kConsensusTwo:
      commit = unique && tallies[best].count >= 2;
      break;
  }
  if (commit) {
    out.outcome = core::QueryOutcome::kFound;
    out.value.assign(tallies[best].value.begin(), tallies[best].value.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// ReferenceFabric
// ---------------------------------------------------------------------------

void ReferenceFabric::enable_primitives(
    const core::DtaPrimitivesConfig& config) {
  ring_ = std::make_unique<core::AppendRing>(config.ring);
  counters_ = std::make_unique<core::CounterCellArray>(config.counters);
  postcards_ = std::make_unique<core::PostcardStore>(config.postcards);
}

void ReferenceFabric::apply(const ReportOp& op) {
  // The append tail is a switch register: it advances when the frame is
  // EMITTED, so a report the network then loses leaves a sequence hole.
  if (op.kind == ReportOp::Kind::kAppend) ++append_tail_;
  if (op.dropped) return;  // a lost report has no other effect anywhere
  const auto key = core::sim_key(op.key);
  switch (op.kind) {
    case ReportOp::Kind::kWrite:
      store_.write_one(key, op.value, op.copy);
      break;
    case ReportOp::Kind::kMultiwrite:
      store_.write(key, op.value);
      break;
    case ReportOp::Kind::kFetchAdd: {
      auto mem = store_.memory();
      std::uint64_t prior;
      std::memcpy(&prior, mem.data() + op.word_index * 8, 8);
      const std::uint64_t next = prior + op.operand;
      std::memcpy(mem.data() + op.word_index * 8, &next, 8);
      break;
    }
    case ReportOp::Kind::kCompareSwap: {
      auto mem = store_.memory();
      std::uint64_t prior;
      std::memcpy(&prior, mem.data() + op.word_index * 8, 8);
      if (prior == op.compare) {
        std::memcpy(mem.data() + op.word_index * 8, &op.operand, 8);
      } else {
        ++cas_mismatches_;
      }
      break;
    }
    case ReportOp::Kind::kAppend:
      ring_->write_entry(append_tail_, op.value);
      break;
    case ReportOp::Kind::kKeyIncrement:
      (void)counters_->fetch_add(key, op.operand);
      break;
    case ReportOp::Kind::kPostcard:
      postcards_->write_hop(key, op.hop, op.value);
      break;
  }
  ++applied_;
}

core::QueryResult ReferenceFabric::resolve(std::span<const std::byte> key,
                                           core::ReturnPolicy policy) const {
  const auto slots = store_.read_slots(key);
  return reference_resolve(slots, store_.key_checksum(key), policy);
}

std::uint64_t ReferenceFabric::word(std::uint64_t index) const noexcept {
  std::uint64_t v = 0;
  const auto mem = store_.memory();
  if ((index + 1) * 8 <= mem.size()) {
    std::memcpy(&v, mem.data() + index * 8, 8);
  }
  return v;
}

// ---------------------------------------------------------------------------
// WireDriver
// ---------------------------------------------------------------------------

namespace {

core::CollectorEndpoint driver_endpoint() {
  core::CollectorEndpoint ep;
  ep.mac = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  ep.ip = net::Ipv4Addr::from_octets(10, 0, 100, 1);
  return ep;
}

core::ReporterEndpoint driver_reporter() {
  core::ReporterEndpoint src;
  src.mac = {0xAA, 0xBB, 0xCC, 0x00, 0x00, 0x01};
  src.ip = net::Ipv4Addr::from_octets(10, 255, 0, 1);
  return src;
}

}  // namespace

WireDriver::WireDriver(const core::DartConfig& config)
    : collector_(config, /*collector_id=*/0, driver_endpoint()),
      crafter_(config),
      src_(driver_reporter()),
      dst_(collector_.remote_info()) {
  collector_.rnic().set_dta_multiwrite(true);
  write_tpl_ = crafter_.make_write_template(dst_, src_);
  fetch_add_tpl_ =
      crafter_.make_atomic_template(dst_, src_, rdma::Opcode::kRcFetchAdd);
  compare_swap_tpl_ =
      crafter_.make_atomic_template(dst_, src_, rdma::Opcode::kRcCompareSwap);
  multiwrite_tpl_ = crafter_.make_multiwrite_template(dst_, src_);
}

void WireDriver::enable_primitives(const core::DtaPrimitivesConfig& config) {
  const auto status = collector_.enable_primitives(config);
  (void)status;  // valid configs only; gen_small_primitives guarantees it
  primitives_ = config;
  ring_dst_ = collector_.remote_ring_info();
  counter_dst_ = collector_.remote_counter_info();
  postcard_dst_ = collector_.remote_postcard_info();
  append_tpl_ = crafter_.make_append_template(ring_dst_, src_, config.ring);
  key_increment_tpl_ =
      crafter_.make_atomic_template(counter_dst_, src_, rdma::Opcode::kRcFetchAdd);
  postcard_tpl_ =
      crafter_.make_postcard_template(postcard_dst_, src_, config.postcards);
}

std::vector<std::byte> WireDriver::submit(const ReportOp& op) {
  const std::uint32_t psn = psn_++;
  const auto key = core::sim_key(op.key);
  // Even PSNs exercise the zero-allocation template path, odd PSNs the
  // allocating reference crafters — the two must be byte-identical, so the
  // differential store check covers both for free.
  const bool use_template = (psn & 1) == 0;

  std::vector<std::byte> frame;
  const auto from_template = [&](const core::FrameTemplate& tpl, auto craft) {
    frame.resize(tpl.frame_size());
    const auto n = craft(tpl);
    frame.resize(n);  // 0 on misuse; submit() never misuses
  };

  switch (op.kind) {
    case ReportOp::Kind::kWrite:
      if (use_template) {
        from_template(write_tpl_, [&](const core::FrameTemplate& tpl) {
          return crafter_.craft_write_into(tpl, key, op.value, op.copy, psn,
                                           frame);
        });
      } else {
        frame = crafter_.craft_write(dst_, src_, key, op.value, op.copy, psn);
      }
      break;
    case ReportOp::Kind::kMultiwrite:
      if (use_template) {
        from_template(multiwrite_tpl_, [&](const core::FrameTemplate& tpl) {
          return crafter_.craft_multiwrite_into(tpl, key, op.value, psn,
                                                frame);
        });
      } else {
        frame = crafter_.craft_multiwrite(dst_, src_, key, op.value, psn);
      }
      break;
    case ReportOp::Kind::kFetchAdd: {
      const auto vaddr = dst_.base_vaddr + op.word_index * 8;
      if (use_template) {
        from_template(fetch_add_tpl_, [&](const core::FrameTemplate& tpl) {
          return crafter_.craft_fetch_add_into(tpl, vaddr, op.operand, psn,
                                               frame);
        });
      } else {
        frame = crafter_.craft_fetch_add(dst_, src_, vaddr, op.operand, psn);
      }
      break;
    }
    case ReportOp::Kind::kCompareSwap: {
      const auto vaddr = dst_.base_vaddr + op.word_index * 8;
      if (use_template) {
        from_template(compare_swap_tpl_, [&](const core::FrameTemplate& tpl) {
          return crafter_.craft_compare_swap_into(tpl, vaddr, op.compare,
                                                  op.operand, psn, frame);
        });
      } else {
        frame = crafter_.craft_compare_swap(dst_, src_, vaddr, op.compare,
                                            op.operand, psn);
      }
      break;
    }
    case ReportOp::Kind::kAppend: {
      const std::uint64_t seq = ++append_tail_;  // consumed even if dropped
      if (use_template) {
        from_template(append_tpl_, [&](const core::FrameTemplate& tpl) {
          return crafter_.craft_append_into(tpl, primitives_.ring, seq,
                                            op.value, psn, frame);
        });
      } else {
        frame = crafter_.craft_append(ring_dst_, src_, primitives_.ring, seq,
                                      op.value, psn);
      }
      break;
    }
    case ReportOp::Kind::kKeyIncrement:
      if (use_template) {
        from_template(key_increment_tpl_, [&](const core::FrameTemplate& tpl) {
          return crafter_.craft_key_increment_into(
              tpl, primitives_.counters, key, op.operand, psn, frame);
        });
      } else {
        frame = crafter_.craft_key_increment(counter_dst_, src_,
                                             primitives_.counters, key,
                                             op.operand, psn);
      }
      break;
    case ReportOp::Kind::kPostcard:
      if (use_template) {
        from_template(postcard_tpl_, [&](const core::FrameTemplate& tpl) {
          return crafter_.craft_postcard_into(tpl, primitives_.postcards, key,
                                              op.hop, op.value, psn, frame);
        });
      } else {
        frame = crafter_.craft_postcard(postcard_dst_, src_,
                                        primitives_.postcards, key, op.hop,
                                        op.value, psn);
      }
      break;
  }

  if (!op.dropped) {
    collector_.rnic().process_frame(frame);
  }
  return frame;
}

}  // namespace dart::check
