#include "check/property.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "check/golden.hpp"
#include "common/random.hpp"

namespace dart::check {

namespace {

// One replay of `property` against a candidate tape. Returns the failure (if
// any) plus the canonical form of the tape the run actually consumed:
// replay pads with zeros, so trailing zeros are redundant and trimmed.
struct Replay {
  bool failed = false;
  Failure failure;
  std::vector<std::uint64_t> used;
};

Replay replay_tape(const Property& property,
                   std::span<const std::uint64_t> tape) {
  Rng rng(tape);
  Replay r;
  auto outcome = property(rng);
  r.used = rng.used();
  while (!r.used.empty() && r.used.back() == 0) r.used.pop_back();
  if (outcome.has_value()) {
    r.failed = true;
    r.failure = std::move(*outcome);
  }
  return r;
}

// Tape-level minimization: truncate, zero spans, shrink entries. Accepts any
// candidate that still fails (the classic rule — the shrunk counterexample
// may expose a different symptom of the same property violation).
struct ShrinkResult {
  std::vector<std::uint64_t> tape;
  Failure failure;
  std::size_t accepted = 0;
};

ShrinkResult shrink(const Property& property,
                    std::vector<std::uint64_t> tape, Failure failure,
                    std::size_t max_execs) {
  ShrinkResult best{std::move(tape), std::move(failure), 0};
  std::size_t execs = 0;

  auto attempt = [&](std::span<const std::uint64_t> candidate) -> bool {
    if (execs >= max_execs) return false;
    ++execs;
    auto r = replay_tape(property, candidate);
    if (!r.failed) return false;
    best.tape = std::move(r.used);
    best.failure = std::move(r.failure);
    ++best.accepted;
    return true;
  };

  bool improved = true;
  while (improved && execs < max_execs) {
    improved = false;
    auto& t = best.tape;

    // 1. Truncation — fewer decisions is the strongest simplification.
    for (const std::size_t keep :
         {t.size() / 2, t.size() - (t.empty() ? 0 : 1)}) {
      if (keep >= t.size()) continue;
      std::vector<std::uint64_t> cand(t.begin(),
                                      t.begin() + static_cast<long>(keep));
      if (attempt(cand)) {
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // 2. Delete spans, coarse to fine — removes whole generated
    // substructures so a failing element can migrate to the front of a
    // list (zeroing alone cannot shorten the decoded structure).
    for (std::size_t window : {std::size_t{8}, std::size_t{4}, std::size_t{2},
                               std::size_t{1}}) {
      if (window >= t.size()) continue;
      for (std::size_t i = 0; i + window <= t.size() && !improved;
           i += window) {
        std::vector<std::uint64_t> cand;
        cand.reserve(t.size() - window);
        cand.insert(cand.end(), t.begin(), t.begin() + static_cast<long>(i));
        cand.insert(cand.end(), t.begin() + static_cast<long>(i + window),
                    t.end());
        if (attempt(cand)) improved = true;
      }
      if (improved) break;
    }
    if (improved) continue;

    // 3. Zero spans, coarse to fine — wipes whole generated substructures.
    for (std::size_t window : {std::size_t{8}, std::size_t{4}, std::size_t{2},
                               std::size_t{1}}) {
      for (std::size_t i = 0; i + 1 <= t.size() && !improved; i += window) {
        const std::size_t end = std::min(i + window, t.size());
        bool any = false;
        for (std::size_t j = i; j < end; ++j) any |= t[j] != 0;
        if (!any) continue;
        auto cand = t;
        for (std::size_t j = i; j < end; ++j) cand[j] = 0;
        if (attempt(cand)) improved = true;
      }
      if (improved) break;
    }
    if (improved) continue;

    // 4. Shrink individual entries toward zero.
    for (std::size_t i = 0; i < t.size() && !improved; ++i) {
      if (t[i] == 0) continue;
      for (const std::uint64_t v : {t[i] / 2, t[i] - 1}) {
        auto cand = t;
        cand[i] = v;
        if (attempt(cand)) {
          improved = true;
          break;
        }
      }
    }
  }
  return best;
}

}  // namespace

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return std::nullopt;
  char* end = nullptr;
  const auto v = std::strtoull(s, &end, 0);  // base 0: decimal or 0x-hex
  if (end == s || *end != '\0') return std::nullopt;
  return v;
}

std::uint64_t seed_from_env(std::uint64_t fallback, const char* context) {
  const auto env = env_u64("DART_SEED");
  const auto seed = env.value_or(fallback);
  std::fprintf(stderr,
               "[dartcheck] %s seed=0x%llx%s (override with DART_SEED)\n",
               context != nullptr ? context : "run",
               static_cast<unsigned long long>(seed),
               env.has_value() ? " [from DART_SEED]" : "");
  return seed;
}

std::uint64_t case_seed(std::uint64_t base, std::uint64_t index) {
  if (index == 0) return base;  // repro contract: case 0 == DART_SEED
  SplitMix64 sm(base ^ (index * 0x9E37'79B9'7F4A'7C15ull));
  return sm.next();
}

std::string append_corpus_case(const std::string& dir,
                               const std::string& property,
                               std::uint64_t seed,
                               std::span<const std::byte> artifact,
                               const std::string& note) {
  if (dir.empty() || artifact.empty()) return {};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  char seed_hex[32];
  std::snprintf(seed_hex, sizeof(seed_hex), "%llx",
                static_cast<unsigned long long>(seed));
  const auto path = dir + "/" + property + "-" + seed_hex + ".hex";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return {};
  out << "# dartcheck shrunk failing case\n";
  out << "# property: " << property << "\n";
  out << "# seed: 0x" << seed_hex << "\n";
  if (!note.empty()) out << "# " << note << "\n";
  out << to_hex(artifact) << "\n";
  return out ? path : std::string{};
}

CheckReport check(const std::string& name, const Property& property,
                  const CheckConfig& cfg) {
  CheckReport report;
  report.name = name;

  const std::uint64_t base = env_u64("DART_SEED").value_or(cfg.seed);
  const std::uint64_t cases = env_u64("DART_CHECK_CASES").value_or(cfg.cases);

  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = case_seed(base, i);
    Rng rng(seed);
    auto outcome = property(rng);
    ++report.cases_run;
    if (!outcome.has_value()) continue;

    // First failure: minimize and report.
    report.passed = false;
    report.failing_case = i;
    report.failing_seed = seed;
    report.original_draws = rng.draws();

    auto shrunk = shrink(property, rng.used(), std::move(*outcome),
                         cfg.max_shrink_execs);
    report.shrunk_tape = shrunk.tape;
    report.shrink_steps = shrunk.accepted;
    report.message = shrunk.failure.message;
    report.artifact = shrunk.failure.artifact;

    char seed_hex[32];
    std::snprintf(seed_hex, sizeof(seed_hex), "0x%llx",
                  static_cast<unsigned long long>(seed));
    report.repro = std::string("DART_SEED=") + seed_hex +
                   " DART_CHECK_CASES=1 (property '" + name + "')";

    std::string corpus_dir = cfg.corpus_dir;
    if (corpus_dir.empty()) {
      const char* env = std::getenv("DART_CORPUS_DIR");
      corpus_dir = env != nullptr ? env : "";
    } else if (corpus_dir == "-") {
      corpus_dir.clear();
    }
    report.corpus_path = append_corpus_case(
        corpus_dir, name, seed, report.artifact, report.message);

    if (cfg.log_failures) {
      std::fprintf(stderr,
                   "[dartcheck] property '%s' FAILED at case %llu (seed %s)\n",
                   name.c_str(), static_cast<unsigned long long>(i), seed_hex);
      std::fprintf(stderr, "[dartcheck]   %s\n", report.message.c_str());
      std::fprintf(
          stderr, "[dartcheck]   shrunk %zu -> %zu draws in %zu steps\n",
          report.original_draws, report.shrunk_tape.size(),
          report.shrink_steps);
      std::fprintf(stderr, "[dartcheck]   repro: %s\n", report.repro.c_str());
      if (!report.corpus_path.empty()) {
        std::fprintf(stderr, "[dartcheck]   corpus: %s\n",
                     report.corpus_path.c_str());
      }
    }
    return report;
  }
  return report;
}

}  // namespace dart::check
