#include "obs/metric.hpp"

#include <algorithm>
#include <stdexcept>

namespace dart::obs {

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

double HistogramSnapshot::quantile(double q) const noexcept {
  if (total == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto c = static_cast<double>(counts[i]);
    if (cum + c >= target) {
      const double hi = upper_bounds[i];
      const double lo = i == 0 ? hi - (upper_bounds.size() > 1
                                           ? upper_bounds[1] - upper_bounds[0]
                                           : 0.0)
                               : upper_bounds[i - 1];
      const double frac = c > 0 ? (target - cum) / c : 0.0;
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return upper_bounds.back();
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : shape_(lo, hi, buckets), counts_(shape_.buckets()) {}

void Histogram::record(double x, std::uint64_t weight) noexcept {
  counts_[shape_.bucket_index(x)] += weight;
  total_ += weight;
  // No atomic<double>::fetch_add pre-C++20 on all targets; a relaxed CAS
  // loop is fine at sampled-recording rates.
  double cur = sum_.load(std::memory_order_relaxed);
  const double contribution = x * static_cast<double>(weight);
  while (!sum_.compare_exchange_weak(cur, cur + contribution,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds.reserve(counts_.size());
  snap.counts.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    snap.upper_bounds.push_back(shape_.bucket_hi(i));
    snap.counts.push_back(counts_[i].load());
  }
  snap.total = total_.load();
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

const MetricValue* Snapshot::find(std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricValue& m, std::string_view n) { return m.name < n; });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

double Snapshot::value_of(std::string_view name) const noexcept {
  const MetricValue* m = find(name);
  return m != nullptr ? m->value : 0.0;
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

bool MetricRegistry::valid_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

MetricRegistry::Entry& MetricRegistry::emplace(const std::string& name,
                                               MetricKind kind,
                                               std::string help) {
  if (!valid_name(name)) {
    throw std::invalid_argument("invalid metric name: " + name);
  }
  for (const auto& e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw std::logic_error("metric '" + name + "' re-registered as " +
                               to_string(kind) + " (was " +
                               to_string(e->kind) + ")");
      }
      return *e;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  entry->help = std::move(help);
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricRegistry::counter(const std::string& name, std::string help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = emplace(name, MetricKind::kCounter, std::move(help));
  if (e.counter_sampler) {
    throw std::logic_error("metric '" + name +
                           "' already registered as a counter adapter");
  }
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Histogram& MetricRegistry::histogram(const std::string& name, double lo,
                                     double hi, std::size_t buckets,
                                     std::string help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = emplace(name, MetricKind::kHistogram, std::move(help));
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(lo, hi, buckets);
  }
  return *e.histogram;
}

void MetricRegistry::counter_fn(const std::string& name,
                                std::function<std::uint64_t()> fn,
                                std::string help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = emplace(name, MetricKind::kCounter, std::move(help));
  if (e.counter) {
    throw std::logic_error("metric '" + name +
                           "' already registered as an owned counter");
  }
  e.counter_sampler = std::move(fn);
}

void MetricRegistry::gauge_fn(const std::string& name,
                              std::function<double()> fn, std::string help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = emplace(name, MetricKind::kGauge, std::move(help));
  e.gauge_sampler = std::move(fn);
}

Snapshot MetricRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.metrics.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricValue v;
    v.name = e->name;
    v.kind = e->kind;
    v.help = e->help;
    switch (e->kind) {
      case MetricKind::kCounter:
        v.value = e->counter
                      ? static_cast<double>(e->counter->value())
                      : static_cast<double>(e->counter_sampler
                                                ? e->counter_sampler()
                                                : 0);
        break;
      case MetricKind::kGauge:
        v.value = e->gauge_sampler ? e->gauge_sampler() : 0.0;
        break;
      case MetricKind::kHistogram:
        v.hist = e->histogram->snapshot();
        v.value = static_cast<double>(v.hist->total);
        break;
    }
    snap.metrics.push_back(std::move(v));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

std::size_t MetricRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace dart::obs
