// Exposition formats for obs::Snapshot.
//
// Two exporters, one snapshot:
//
//  - JSON, in the exact BenchJson schema bench/bench_util.hpp emits
//    ({"name": ..., "config": {...}, "results": {...}} with flat numeric
//    results), so BENCH_*.json perf baselines and metrics snapshots share
//    one format and one validator (tools/check_bench.sh). Histograms are
//    flattened to <name>_count / <name>_sum / <name>_p50/_p90/_p99.
//
//  - Prometheus text exposition (version 0.0.4): counters and gauges as
//    single samples, histograms as cumulative <name>_bucket{le="..."}
//    series plus <name>_sum / <name>_count.
//
// Plus snapshot arithmetic (diff) and a minimal reader for the flat JSON we
// ourselves emit, so `dart_metrics diff a.json b.json` needs no external
// JSON dependency.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metric.hpp"

namespace dart::obs {

// Flat numeric results exactly as the JSON exporter writes them: histograms
// expanded to _count/_sum/_p50/_p90/_p99, counters/gauges verbatim.
[[nodiscard]] std::vector<std::pair<std::string, double>> flatten(
    const Snapshot& snapshot);

// BenchJson-schema JSON document. `config` entries land in the "config"
// object (workload parameters, so a snapshot is self-describing).
[[nodiscard]] std::string to_bench_json(
    const Snapshot& snapshot, const std::string& name,
    const std::vector<std::pair<std::string, double>>& config = {});

// Writes to_bench_json() to `path`; returns false on I/O failure.
bool write_bench_json(const Snapshot& snapshot, const std::string& name,
                      const std::string& path,
                      const std::vector<std::pair<std::string, double>>& config = {});

// Prometheus text exposition of the whole snapshot.
[[nodiscard]] std::string to_prometheus(const Snapshot& snapshot);

// Text-format 0.0.4 escaping, applied by to_prometheus and exposed for any
// caller emitting its own series: HELP text escapes backslash and newline;
// label values (label_value = true) additionally escape the double quote.
[[nodiscard]] std::string prom_escape(std::string_view s, bool label_value);

// after - before: counters and histogram bucket counts subtract (clamped at
// zero so a restarted component cannot produce negative rates), gauges take
// `after`'s value. Metrics present on only one side keep that side's value.
[[nodiscard]] Snapshot diff(const Snapshot& before, const Snapshot& after);

// Reads the flat "results" object back out of a JSON file written by
// write_bench_json (or any BenchJson emission). Understands exactly that
// schema — flat string→number maps — not general JSON. nullopt on I/O or
// parse failure.
[[nodiscard]] std::optional<std::vector<std::pair<std::string, double>>>
read_results_json(const std::string& path);

}  // namespace dart::obs
