// Observability subsystem: one MetricRegistry per process (or per harness)
// with named counters, gauges, and fixed-bucket latency histograms, plus
// snapshot/export machinery (export.hpp) shared by every component.
//
// DART's collector moves its CPU budget from ingest to querying and
// monitoring (§3.2, Fig. 2), so the monitoring surface must be as
// disciplined as the datapath:
//
//  - Owned counters and histogram cells are RelaxedCounter — the same
//    relaxed-atomic discipline as QpCounters — so shard workers and feeders
//    can bump them concurrently with no ordering cost.
//  - Existing per-component counter structs (SwitchCounters, RnicCounters,
//    QpCounters, LinkStats, IngestPipeline tallies, query-service counters)
//    are registered as PULL adapters: a callback reads the live struct at
//    snapshot() time, so the hot path pays nothing for being observable.
//  - Histograms reuse dart::Histogram (common/stats) for bucket geometry —
//    clamped-width, edge-bin semantics — with RelaxedCounter cells so
//    recording is thread-safe.
//
// Naming follows the Prometheus convention, flattened (no labels):
//   dart_<component>[<instance>]_<metric>[_total]
// e.g. dart_collector0_rnic_frames_total, dart_ingest_shard1_applied_total.
// docs/METRICS.md documents the scheme; export.hpp renders snapshots as
// BenchJson-compatible JSON and Prometheus text exposition.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/atomic_counter.hpp"
#include "common/stats.hpp"

namespace dart::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind kind) noexcept;

// Owned monotonic counter; cheap enough for the hot path (one relaxed
// fetch_add, exactly what the existing counter structs already pay).
class Counter {
 public:
  void inc() noexcept { ++v_; }
  void add(std::uint64_t delta) noexcept { v_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return v_.load(); }

 private:
  RelaxedCounter v_;
};

// Point-in-time view of one histogram: per-bucket (non-cumulative) counts
// with their upper bounds, total observation count and sum.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;   // bucket i covers (bounds[i-1], bounds[i]]
  std::vector<std::uint64_t> counts;  // same length as upper_bounds
  std::uint64_t total = 0;
  double sum = 0.0;

  // Value below which `q` (0..1) of the mass falls (linear within bucket).
  [[nodiscard]] double quantile(double q) const noexcept;
};

// Thread-safe fixed-bucket linear histogram. Bucket geometry is delegated to
// dart::Histogram (which clamps degenerate widths), cells are RelaxedCounter.
// Intended for SAMPLED latency recording: callers time one in every K
// operations, so even the rdtsc() around the timed section amortizes to
// nothing on the hot path.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void record(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_.load(); }
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  dart::Histogram shape_;  // geometry only; its own cells stay empty
  std::vector<RelaxedCounter> counts_;
  RelaxedCounter total_;
  std::atomic<double> sum_{0.0};
};

// One metric's value at snapshot time.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::string help;
  double value = 0.0;  // counters and gauges
  std::optional<HistogramSnapshot> hist;
};

// A consistent-enough view of every registered metric (counters are read
// with relaxed loads; exactness across concurrently-advancing counters is
// not promised, monotonicity per counter is).
struct Snapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  [[nodiscard]] const MetricValue* find(std::string_view name) const noexcept;
  // Counter/gauge value by name; 0.0 when absent (missing metrics read as
  // never-incremented counters, which is what conservation checks want).
  [[nodiscard]] double value_of(std::string_view name) const noexcept;
};

// The registry. Registration is control-plane (mutex-guarded, may allocate);
// recording through the returned Counter&/Histogram& is wait-free and never
// touches the registry again. Callback metrics are invoked only by
// snapshot().
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Owned metrics. Re-registering the same name with the same kind returns
  // the existing instance (idempotent bind_metrics); a kind mismatch throws.
  Counter& counter(const std::string& name, std::string help = "");
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t buckets, std::string help = "");

  // Pull adapters over existing counter structs: `fn` is called at
  // snapshot() time. The callee must outlive the registry (or the registry
  // must stop snapshotting first) — same contract as every stats() accessor.
  void counter_fn(const std::string& name, std::function<std::uint64_t()> fn,
                  std::string help = "");
  void gauge_fn(const std::string& name, std::function<double()> fn,
                std::string help = "");

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] std::size_t size() const;

  // Prometheus-compatible metric name: [a-zA-Z_:][a-zA-Z0-9_:]*.
  [[nodiscard]] static bool valid_name(std::string_view name) noexcept;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;                // kCounter (owned)
    std::unique_ptr<Histogram> histogram;            // kHistogram
    std::function<std::uint64_t()> counter_sampler;  // kCounter (adapter)
    std::function<double()> gauge_sampler;           // kGauge
  };

  Entry& emplace(const std::string& name, MetricKind kind, std::string help);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace dart::obs
