#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

namespace dart::obs {

namespace {

// %.17g round-trips doubles exactly; integral values print without noise.
std::string num(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

std::string prom_escape(std::string_view s, bool label_value) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '"':
        if (label_value) {
          out += "\\\"";
        } else {
          out += ch;
        }
        break;
      default: out += ch;
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> flatten(const Snapshot& snapshot) {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(snapshot.metrics.size());
  for (const MetricValue& m : snapshot.metrics) {
    if (!m.hist) {
      out.emplace_back(m.name, m.value);
      continue;
    }
    const HistogramSnapshot& h = *m.hist;
    out.emplace_back(m.name + "_count", static_cast<double>(h.total));
    out.emplace_back(m.name + "_sum", h.sum);
    out.emplace_back(m.name + "_p50", h.quantile(0.50));
    out.emplace_back(m.name + "_p90", h.quantile(0.90));
    out.emplace_back(m.name + "_p99", h.quantile(0.99));
  }
  return out;
}

std::string to_bench_json(
    const Snapshot& snapshot, const std::string& name,
    const std::vector<std::pair<std::string, double>>& config) {
  std::string out;
  out += "{\n  \"name\": \"" + name + "\",\n  \"config\": {";
  bool first = true;
  for (const auto& [k, v] : config) {
    out += first ? "\n" : ",\n";
    out += "    \"" + k + "\": " + num(v);
    first = false;
  }
  out += "\n  },\n  \"results\": {";
  first = true;
  for (const auto& [k, v] : flatten(snapshot)) {
    out += first ? "\n" : ",\n";
    out += "    \"" + k + "\": " + num(v);
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

bool write_bench_json(
    const Snapshot& snapshot, const std::string& name, const std::string& path,
    const std::vector<std::pair<std::string, double>>& config) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_bench_json(snapshot, name, config);
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return (std::fclose(f) == 0) && wrote;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const MetricValue& m : snapshot.metrics) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " " + prom_escape(m.help, false) + "\n";
    }
    out += "# TYPE " + m.name + " " + to_string(m.kind) + "\n";
    if (!m.hist) {
      out += m.name + " " + num(m.value) + "\n";
      continue;
    }
    const HistogramSnapshot& h = *m.hist;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cum += h.counts[i];
      out += m.name + "_bucket{le=\"" + prom_escape(num(h.upper_bounds[i]), true) + "\"} " +
             num(static_cast<double>(cum)) + "\n";
    }
    out += m.name + "_bucket{le=\"+Inf\"} " +
           num(static_cast<double>(h.total)) + "\n";
    out += m.name + "_sum " + num(h.sum) + "\n";
    out += m.name + "_count " + num(static_cast<double>(h.total)) + "\n";
  }
  return out;
}

Snapshot diff(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  out.metrics.reserve(after.metrics.size());
  for (const MetricValue& b : after.metrics) {
    const MetricValue* a = before.find(b.name);
    MetricValue d = b;
    if (a != nullptr && b.kind == MetricKind::kCounter) {
      d.value = b.value >= a->value ? b.value - a->value : b.value;
    } else if (a != nullptr && b.kind == MetricKind::kHistogram && a->hist &&
               d.hist && a->hist->counts.size() == d.hist->counts.size()) {
      for (std::size_t i = 0; i < d.hist->counts.size(); ++i) {
        const std::uint64_t prev = a->hist->counts[i];
        d.hist->counts[i] -= std::min(prev, d.hist->counts[i]);
      }
      d.hist->total -= std::min(a->hist->total, d.hist->total);
      d.hist->sum -= std::min(a->hist->sum, d.hist->sum);
      d.value = static_cast<double>(d.hist->total);
    }
    out.metrics.push_back(std::move(d));
  }
  // Metrics that disappeared keep their before-value (flagged by presence).
  for (const MetricValue& a : before.metrics) {
    if (after.find(a.name) == nullptr) out.metrics.push_back(a);
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricValue& x, const MetricValue& y) {
              return x.name < y.name;
            });
  return out;
}

std::optional<std::vector<std::pair<std::string, double>>> read_results_json(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  // Scan for the "results" object, then read "key": number pairs. This is a
  // reader for our own flat emissions, not a general JSON parser.
  const std::size_t results = text.find("\"results\"");
  if (results == std::string::npos) return std::nullopt;
  std::size_t pos = text.find('{', results);
  if (pos == std::string::npos) return std::nullopt;
  ++pos;

  std::vector<std::pair<std::string, double>> out;
  while (pos < text.size()) {
    // Next key or closing brace.
    while (pos < text.size() && (std::isspace(static_cast<unsigned char>(
                                     text[pos])) != 0 ||
                                 text[pos] == ',')) {
      ++pos;
    }
    if (pos >= text.size() || text[pos] == '}') break;
    if (text[pos] != '"') return std::nullopt;
    const std::size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) return std::nullopt;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    pos = text.find(':', key_end);
    if (pos == std::string::npos) return std::nullopt;
    ++pos;
    char* end = nullptr;
    const double value = std::strtod(text.c_str() + pos, &end);
    if (end == text.c_str() + pos) return std::nullopt;
    pos = static_cast<std::size_t>(end - text.c_str());
    out.emplace_back(key, value);
  }
  return out;
}

}  // namespace dart::obs
