// Pull adapters from the existing per-component counter structs into a
// MetricRegistry.
//
// Each register_* call installs counter_fn callbacks that read the live
// struct at snapshot() time — zero hot-path cost, no ownership transfer. The
// struct (and whatever owns it) must outlive the last snapshot(), the same
// lifetime contract as the counters() / stats() accessors being wrapped.
//
// Header-only on purpose: obs itself depends only on dart_common, so the
// lower layers (core, rdma, net) can link dart_obs for owned metrics; this
// header is for the top of the stack (telemetry, tools, tests, benches),
// which already links everything it names.
//
// Naming: `prefix` is the instance-qualified component name, e.g.
// "dart_collector0"; adapters append "_<struct>_<field>_total".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/netsim.hpp"
#include "obs/metric.hpp"
#include "rdma/qp.hpp"
#include "rdma/rnic.hpp"
#include "switchsim/dart_switch.hpp"

namespace dart::obs {

// switchsim/dart_switch: the egress pipeline's event/report accounting.
inline void register_switch_counters(MetricRegistry& reg,
                                     const std::string& prefix,
                                     const switchsim::SwitchCounters& c) {
  reg.counter_fn(prefix + "_telemetry_events_total",
                 [&c] { return c.telemetry_events; },
                 "on_telemetry() invocations");
  reg.counter_fn(prefix + "_reports_emitted_total",
                 [&c] { return c.reports_emitted; },
                 "RoCEv2 report frames deparsed");
  reg.counter_fn(prefix + "_table_misses_total",
                 [&c] { return c.table_misses; },
                 "hashed collector id not loaded");
  reg.counter_fn(prefix + "_sketch_increments_emitted_total",
                 [&c] { return c.sketch_increments_emitted; },
                 "FETCH_ADD frames fanned out to sketch-backed rows");
  reg.counter_fn(prefix + "_retargets_total", [&c] { return c.retargets; },
                 "rows re-pointed at a backup collector");
  reg.counter_fn(prefix + "_restores_total", [&c] { return c.restores; },
                 "rows restored to the original owner");
}

// rdma/rnic: every verdict of the request-validation pipeline.
inline void register_rnic_counters(MetricRegistry& reg,
                                   const std::string& prefix,
                                   const rdma::RnicCounters& c) {
  const auto add = [&](const char* name, const RelaxedCounter& field,
                       const char* help) {
    reg.counter_fn(prefix + "_rnic_" + name + "_total",
                   [&field] { return field.load(); }, help);
  };
  add("frames", c.frames, "frames seen");
  add("executed", c.executed, "operations applied to memory");
  add("writes", c.writes, "DMA writes executed");
  add("multiwrite_frames", c.multiwrite_frames, "DTA multiwrite frames");
  add("fetch_adds", c.fetch_adds, "fetch-add atomics executed");
  add("compare_swaps", c.compare_swaps, "compare-swap atomics executed");
  add("cas_mismatches", c.cas_mismatches, "CAS compare failures");
  add("not_roce", c.not_roce, "not UDP/4791 or unparsable");
  add("bad_icrc", c.bad_icrc, "iCRC validation failures");
  add("bad_opcode", c.bad_opcode, "unsupported or mismatched opcode");
  add("unknown_qp", c.unknown_qp, "no such queue pair");
  add("psn_rejected", c.psn_rejected, "PSN window rejections");
  add("bad_rkey", c.bad_rkey, "no memory region for rkey");
  add("pd_mismatch", c.pd_mismatch, "QP/MR protection domain mismatch");
  add("access_denied", c.access_denied, "MR access flags deny the op");
  add("out_of_bounds", c.out_of_bounds, "target outside the MR");
  add("unaligned_atomic", c.unaligned_atomic, "atomic at unaligned vaddr");
  add("stalled", c.stalled, "dropped during an injected RNIC stall");
  add("qp_error", c.qp_error, "refused: target QP in the Error state");
}

// rdma/qp: PSN-window accounting, aggregated over every QP of a registry
// (summed at snapshot time — QPs may be created after registration).
inline void register_qp_counters(MetricRegistry& reg, const std::string& prefix,
                                 const rdma::QpRegistry& qps) {
  reg.counter_fn(prefix + "_qp_accepted_total",
                 [&qps] {
                   std::uint64_t sum = 0;
                   qps.for_each([&](const rdma::QueuePair& qp) {
                     sum += qp.counters().accepted;
                   });
                   return sum;
                 },
                 "PSNs accepted across all QPs");
  reg.counter_fn(prefix + "_qp_psn_stale_total",
                 [&qps] {
                   std::uint64_t sum = 0;
                   qps.for_each([&](const rdma::QueuePair& qp) {
                     sum += qp.counters().psn_stale;
                   });
                   return sum;
                 },
                 "duplicate / out-of-window PSNs");
  reg.counter_fn(prefix + "_qp_psn_gaps_total",
                 [&qps] {
                   std::uint64_t sum = 0;
                   qps.for_each([&](const rdma::QueuePair& qp) {
                     sum += qp.counters().psn_gaps;
                   });
                   return sum;
                 },
                 "PSNs skipped by gaps (lost reports)");
  reg.counter_fn(prefix + "_qp_error_drops_total",
                 [&qps] {
                   std::uint64_t sum = 0;
                   qps.for_each([&](const rdma::QueuePair& qp) {
                     sum += qp.counters().error_drops;
                   });
                   return sum;
                 },
                 "packets refused while a QP was in the Error state");
  reg.counter_fn(prefix + "_qp_reconnects_total",
                 [&qps] {
                   std::uint64_t sum = 0;
                   qps.for_each([&](const rdma::QueuePair& qp) {
                     sum += qp.counters().reconnects;
                   });
                   return sum;
                 },
                 "error → ready drain-and-reconnect transitions");
}

// net/netsim: fabric-wide delivery/drop totals plus per-link-set drops via
// register_link_set (callers pass the link ids they care about, e.g. the
// monitoring underlay).
inline void register_simulator(MetricRegistry& reg, const std::string& prefix,
                               const net::Simulator& sim) {
  reg.counter_fn(prefix + "_net_delivered_total",
                 [&sim] { return sim.total_delivered(); },
                 "packets delivered across all links");
  reg.counter_fn(prefix + "_net_dropped_total",
                 [&sim] { return sim.total_dropped(); },
                 "loss-model drops across all links");
  reg.counter_fn(prefix + "_net_queue_drops_total",
                 [&sim] { return sim.total_queue_drops(); },
                 "tail drops at full egress queues");
  reg.counter_fn(prefix + "_net_partitioned_total",
                 [&sim] { return sim.total_partitioned(); },
                 "packets eaten by partitioned (down) links");
  reg.counter_fn(prefix + "_net_corrupted_total",
                 [&sim] { return sim.total_corrupted(); },
                 "packets delivered with injected byte damage");
}

inline void register_link_set(MetricRegistry& reg, const std::string& prefix,
                              const net::Simulator& sim,
                              std::vector<net::LinkId> links) {
  reg.counter_fn(prefix + "_delivered_total",
                 [&sim, links] {
                   std::uint64_t sum = 0;
                   for (const auto id : links) sum += sim.link_stats(id).delivered;
                   return sum;
                 },
                 "packets delivered on this link set");
  reg.counter_fn(prefix + "_dropped_total",
                 [&sim, links] {
                   std::uint64_t sum = 0;
                   for (const auto id : links) {
                     sum += sim.link_stats(id).dropped +
                            sim.link_stats(id).queue_drops;
                   }
                   return sum;
                 },
                 "loss-model + queue drops on this link set");
  reg.counter_fn(prefix + "_partitioned_total",
                 [&sim, links] {
                   std::uint64_t sum = 0;
                   for (const auto id : links) {
                     sum += sim.link_stats(id).partitioned;
                   }
                   return sum;
                 },
                 "packets eaten while links in this set were down");
  reg.counter_fn(prefix + "_corrupted_total",
                 [&sim, links] {
                   std::uint64_t sum = 0;
                   for (const auto id : links) {
                     sum += sim.link_stats(id).corrupted;
                   }
                   return sum;
                 },
                 "packets delivered with injected damage on this link set");
}

}  // namespace dart::obs
